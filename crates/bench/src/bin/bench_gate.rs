//! `bench_gate`: the nightly perf-regression gate for `checks_micro`.
//!
//! Compares the JSON-lines output of the latest `cargo bench -p bench
//! --bench checks_micro` run (`target/sva-bench/checks_micro.json`)
//! against the checked-in baseline (`crates/bench/baselines/
//! checks_micro.json`) and exits nonzero if any *gated* benchmark's median
//! regressed by more than the threshold (default 15%).
//!
//! Only the repeat-hit latencies are gated — they are the steady-state
//! cost of a run-time check (the number Table 7's overheads are built
//! from) and they are measured with enough iterations to be stable on a
//! shared CI runner. Every other id found in both files is reported for
//! context but cannot fail the gate.
//!
//! A second, *paired* gate compares ids within the current run alone:
//! the flight recorder's repeat-hit site must price within 5% of the
//! NullTracer site measured seconds earlier on the same machine, so the
//! machine-speed variable cancels and the threshold can be tight.
//!
//! A third gate covers the SMP scaling curve (DESIGN.md §4.9): when
//! `target/sva-bench/scaling.json` (written by `table7_syscalls
//! --vcpus ...`) is present it is compared against
//! `crates/bench/baselines/scaling.json`. The deterministic merged
//! cycles-per-syscall may not regress past the threshold at any common
//! vCPU count, and the measured speedup at ≥4 vCPUs may not fall below
//! the 2.5× acceptance floor. Without a current scaling run the gate is
//! skipped unless `--require-scaling` is given (the nightly passes it).
//!
//! Usage: `cargo run --release -p bench --bin bench_gate --
//!     [--baseline PATH] [--current PATH] [--threshold PCT]
//!     [--scaling-baseline PATH] [--scaling-current PATH] [--require-scaling]`
//!
//! The criterion shim *appends* to its JSON file, so when an id appears
//! more than once the last line (the most recent run) wins.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Benchmark ids allowed to fail the gate: the repeat-hit medians.
const GATED: [&str; 3] = [
    "rt/fastpath/repeat_fast",
    "rt/singleton/repeat_singleton",
    "rt/singleton/repeat_mru",
];

/// Same-run paired gates: `(id, reference, max % over reference)`. The
/// always-on flight recorder (DESIGN.md §4.7) may cost at most 5% over
/// the NullTracer on the identical repeat-hit check site.
const PAIRED: [(&str, &str, f64); 1] = [("rt/flight/repeat_flight", "rt/flight/repeat_null", 5.0)];

/// Pulls `"key":value` (a bare JSON number or string) out of a flat JSON
/// object line. Hand-rolled on purpose: the workspace has no JSON
/// dependency and the shim's output is machine-generated and flat.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.strip_prefix('"').unwrap_or(rest);
    let end = rest.find(['"', ',', '}'])?;
    Some(&rest[..end])
}

/// Parses a shim JSON-lines file into `id → ns_median`, last line wins.
fn parse_medians(path: &PathBuf) -> Result<HashMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = HashMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let id = field(line, "id").ok_or_else(|| format!("no id in line: {line}"))?;
        let median: f64 = field(line, "ns_median")
            .ok_or_else(|| format!("no ns_median in line: {line}"))?
            .parse()
            .map_err(|e| format!("bad ns_median in line: {line}: {e}"))?;
        out.insert(id.to_string(), median);
    }
    Ok(out)
}

fn workspace_root() -> PathBuf {
    let mut cur = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if cur.join("Cargo.lock").exists() {
            return cur;
        }
        if !cur.pop() {
            return PathBuf::from(".");
        }
    }
}

struct Options {
    baseline: PathBuf,
    current: PathBuf,
    threshold: f64,
    scaling_baseline: PathBuf,
    scaling_current: PathBuf,
    require_scaling: bool,
}

fn parse_args() -> Result<Options, String> {
    let root = workspace_root();
    let mut opts = Options {
        baseline: root.join("crates/bench/baselines/checks_micro.json"),
        current: root.join("target/sva-bench/checks_micro.json"),
        threshold: 15.0,
        scaling_baseline: root.join("crates/bench/baselines/scaling.json"),
        scaling_current: root.join("target/sva-bench/scaling.json"),
        require_scaling: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--baseline" => opts.baseline = PathBuf::from(val("--baseline")?),
            "--current" => opts.current = PathBuf::from(val("--current")?),
            "--threshold" => {
                opts.threshold = val("--threshold")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
            }
            "--scaling-baseline" => {
                opts.scaling_baseline = PathBuf::from(val("--scaling-baseline")?)
            }
            "--scaling-current" => opts.scaling_current = PathBuf::from(val("--scaling-current")?),
            "--require-scaling" => opts.require_scaling = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// One parsed line of a `scaling.json` artifact.
struct ScalingLine {
    vcpus: u32,
    cycles_per_syscall: f64,
    speedup_vs_1: f64,
}

/// Parses the line-oriented `scaling.json` array into its points.
fn parse_scaling(path: &PathBuf) -> Result<Vec<ScalingLine>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = Vec::new();
    for line in text.lines().filter(|l| l.contains("\"vcpus\":")) {
        let num = |key: &str| -> Result<f64, String> {
            field(line, key)
                .ok_or_else(|| format!("no {key} in line: {line}"))?
                .parse()
                .map_err(|e| format!("bad {key} in line: {line}: {e}"))
        };
        out.push(ScalingLine {
            vcpus: num("vcpus")? as u32,
            cycles_per_syscall: num("cycles_per_syscall")?,
            speedup_vs_1: num("speedup_vs_1")?,
        });
    }
    if out.is_empty() {
        return Err(format!("{}: no scaling points", path.display()));
    }
    Ok(out)
}

/// Minimum speedup the ≥4-vCPU point must clear (the PR's acceptance
/// floor for the SMP machine).
const SCALING_SPEEDUP_FLOOR: f64 = 2.5;

/// Gates the scaling curve. Returns whether anything failed.
fn gate_scaling(opts: &Options) -> bool {
    if !opts.scaling_current.exists() {
        if opts.require_scaling {
            eprintln!(
                "bench_gate: --require-scaling but no current run at {} (run table7_syscalls --vcpus ...)",
                opts.scaling_current.display()
            );
            return true;
        }
        println!("scaling: no current run, skipped");
        return false;
    }
    let (base, cur) = match (
        parse_scaling(&opts.scaling_baseline),
        parse_scaling(&opts.scaling_current),
    ) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: scaling: {e}");
            return true;
        }
    };
    let mut failed = false;
    println!(
        "{:<34} {:>12} {:>12} {:>9}  gate",
        "scaling (cycles/syscall)", "base", "now", "delta"
    );
    for c in &cur {
        let Some(b) = base.iter().find(|b| b.vcpus == c.vcpus) else {
            println!("scaling/{}vcpu: no baseline point, info only", c.vcpus);
            continue;
        };
        let delta = if b.cycles_per_syscall == 0.0 {
            0.0
        } else {
            100.0 * (c.cycles_per_syscall - b.cycles_per_syscall) / b.cycles_per_syscall
        };
        let verdict = if delta > opts.threshold {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        let id = format!("scaling/{}vcpu", c.vcpus);
        println!(
            "{id:<34} {:>12.1} {:>12.1} {delta:>+8.1}%  {verdict}",
            b.cycles_per_syscall, c.cycles_per_syscall
        );
    }
    match cur.iter().find(|c| c.vcpus >= 4) {
        Some(c) if c.speedup_vs_1 < SCALING_SPEEDUP_FLOOR => {
            failed = true;
            println!(
                "scaling/{}vcpu speedup {:.2}x < {SCALING_SPEEDUP_FLOOR:.1}x floor  FAIL",
                c.vcpus, c.speedup_vs_1
            );
        }
        Some(c) => println!(
            "scaling/{}vcpu speedup {:.2}x (floor {SCALING_SPEEDUP_FLOOR:.1}x)  ok",
            c.vcpus, c.speedup_vs_1
        ),
        None => println!("scaling: no >=4-vCPU point in current run, speedup floor not checked"),
    }
    failed
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (base, cur) = match (parse_medians(&opts.baseline), parse_medians(&opts.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ids: Vec<&String> = base.keys().filter(|id| cur.contains_key(*id)).collect();
    ids.sort();
    if ids.is_empty() {
        eprintln!("bench_gate: no benchmark ids in common between baseline and current");
        return ExitCode::FAILURE;
    }

    println!(
        "{:<34} {:>12} {:>12} {:>9}  gate",
        "benchmark", "base (ns)", "now (ns)", "delta"
    );
    let mut failed = false;
    for id in ids {
        let (b, c) = (base[id], cur[id]);
        let delta = if b == 0.0 { 0.0 } else { 100.0 * (c - b) / b };
        let gated = GATED.contains(&id.as_str());
        let verdict = if !gated {
            "info"
        } else if delta > opts.threshold {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!("{id:<34} {b:>12.1} {c:>12.1} {delta:>+8.1}%  {verdict}");
    }
    for id in GATED {
        if !base.contains_key(id) || !cur.contains_key(id) {
            eprintln!("bench_gate: gated id {id:?} missing from baseline or current run");
            failed = true;
        }
    }
    for (id, reference, pct) in PAIRED {
        match (cur.get(id), cur.get(reference)) {
            (Some(&c), Some(&r)) if r > 0.0 => {
                let delta = 100.0 * (c - r) / r;
                let verdict = if delta > pct {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "{id:<34} {r:>12.1} {c:>12.1} {delta:>+8.1}%  {verdict} (paired, limit +{pct:.0}%)"
                );
            }
            _ => {
                eprintln!("bench_gate: paired ids {id:?} / {reference:?} missing from current run");
                failed = true;
            }
        }
    }
    if gate_scaling(&opts) {
        failed = true;
    }
    if failed {
        eprintln!(
            "bench_gate: a gated metric regressed more than {:.0}% (or a gated id vanished)",
            opts.threshold
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: all gated medians within {:.0}% of baseline",
        opts.threshold
    );
    ExitCode::SUCCESS
}
