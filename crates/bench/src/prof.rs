//! Offline `svaprof` machinery: JSONL event-stream replay through the
//! ring/profile/exporter layer, prefix shrinking, and Prometheus text
//! diffing.
//!
//! Replay exists to reproduce exporter bugs without booting a kernel: a
//! recorded `*.jsonl` stream (the `svaprof` dump format) is parsed back
//! into [`TimedEvent`]s and fed through a fresh [`RingTracer`], then every
//! exporter runs against the result under a panic guard plus structural
//! validators. When the stream fails, [`shrink_failing_prefix`] bisects to
//! the shortest prefix that still fails, which is usually a one-event
//! reproducer once the passing prefix is stripped.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sva_trace::{
    to_chrome_trace, to_jsonl, to_prometheus, RingConfig, RingTracer, TimedEvent, Tracer,
};

// ---------------------------------------------------------------------------
// JSONL replay.
// ---------------------------------------------------------------------------

/// A parsed replay stream.
pub struct ReplayStream {
    /// Events in file order.
    pub events: Vec<TimedEvent>,
    /// `(1-based line number, line)` pairs that did not parse.
    pub bad_lines: Vec<(usize, String)>,
}

/// Parses a JSONL dump (one event per line, blank lines ignored).
pub fn parse_jsonl(text: &str) -> ReplayStream {
    let mut events = Vec::new();
    let mut bad_lines = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match TimedEvent::from_json(line) {
            Some(ev) => events.push(ev),
            None => bad_lines.push((i + 1, line.to_string())),
        }
    }
    ReplayStream { events, bad_lines }
}

/// Feeds `events` through a fresh ring/profile/metrics pipeline, exactly
/// as a live VM would have recorded them.
pub fn replay(events: &[TimedEvent], capacity: usize) -> RingTracer {
    let mut t = RingTracer::new(RingConfig {
        capacity,
        ..Default::default()
    });
    for e in events {
        t.record(e.ts, e.event.clone());
    }
    t
}

/// Runs one exporter under a panic guard and hands its output to a
/// validator.
fn check_export(
    name: &str,
    tracer: &RingTracer,
    export: impl Fn(&RingTracer) -> String,
    validate: impl Fn(&str) -> Result<(), String>,
) -> Result<(), String> {
    let out = catch_unwind(AssertUnwindSafe(|| export(tracer)))
        .map_err(|_| format!("{name}: exporter panicked"))?;
    validate(&out).map_err(|e| format!("{name}: {e}"))
}

/// Replays a stream and verifies the exporter layer: every exporter must
/// run without panicking, the JSONL serialization must round-trip through
/// the codec, the Chrome trace must balance its `B`/`E` spans, and every
/// Prometheus histogram must be cumulative with its `+Inf` bucket equal to
/// `_count`. Returns the first failure, or `None` if the stream is clean.
pub fn replay_failure(events: &[TimedEvent], capacity: usize) -> Option<String> {
    let tracer = match catch_unwind(AssertUnwindSafe(|| replay(events, capacity))) {
        Ok(t) => t,
        Err(_) => return Some("replay: tracer panicked while recording".to_string()),
    };
    let r = check_export("jsonl", &tracer, to_jsonl, |out| {
        for (i, line) in out.lines().enumerate() {
            if TimedEvent::from_json(line).is_none() {
                return Err(format!("line {} does not round-trip: {line}", i + 1));
            }
        }
        Ok(())
    })
    .and_then(|()| {
        check_export("chrome", &tracer, to_chrome_trace, |out| {
            // Spans left open at the end are normal (a halt mid-syscall
            // truncates the stream there); a span *closed before it was
            // opened* — the ring dropped the B, the E survived — renders
            // wrong in the trace viewer and is the bug to flag.
            let mut open = 0i64;
            for (i, line) in out.lines().enumerate() {
                if line.contains("\"ph\":\"B\"") {
                    open += 1;
                } else if line.contains("\"ph\":\"E\"") {
                    open -= 1;
                    if open < 0 {
                        return Err(format!("stray span end at event line {}", i + 1));
                    }
                }
            }
            Ok(())
        })
    })
    .and_then(|()| {
        check_export("prometheus", &tracer, to_prometheus, |out| {
            let snap = parse_prom(out)?;
            for (name, h) in &snap.histograms {
                let mut prev = 0.0f64;
                for (le, v) in &h.buckets {
                    if *v < prev {
                        return Err(format!("{name}: bucket le={le} not cumulative"));
                    }
                    prev = *v;
                }
                if let Some((_, last)) = h.buckets.last() {
                    if *last != h.count {
                        return Err(format!("{name}: +Inf bucket {last} != count {}", h.count));
                    }
                }
            }
            Ok(())
        })
    });
    r.err()
}

/// Bisects to the minimal failing prefix: the smallest `n` such that
/// `events[..n]` fails while `events[..n-1]` passes. Assumes the failure
/// is prefix-monotone (adding events never fixes it), which holds for the
/// exporter-layer failures [`replay_failure`] detects; a non-monotone
/// failure still yields *a* pass/fail boundary, just not a global minimum.
/// Returns `None` when the full stream already passes.
pub fn shrink_failing_prefix(events: &[TimedEvent], capacity: usize) -> Option<usize> {
    replay_failure(events, capacity)?;
    // Invariant: prefix of length `hi` fails, prefix of length `lo` passes.
    let (mut lo, mut hi) = (0usize, events.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if replay_failure(&events[..mid], capacity).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

// ---------------------------------------------------------------------------
// Prometheus text parsing and diffing.
// ---------------------------------------------------------------------------

/// A parsed histogram: cumulative buckets in file order (`le` label,
/// cumulative count), plus `_sum` and `_count`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromHistogram {
    /// `(le, cumulative count)` in exposition order, `+Inf` last.
    pub buckets: Vec<(String, f64)>,
    /// The `_sum` series.
    pub sum: f64,
    /// The `_count` series.
    pub count: f64,
}

/// A parsed Prometheus text exposition.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PromSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, f64>,
    /// Histogram name → buckets/sum/count.
    pub histograms: BTreeMap<String, PromHistogram>,
}

/// Parses the subset of the Prometheus text exposition format that
/// `sva_trace::to_prometheus` emits: `# TYPE` comments, bare counter
/// samples, and histogram `_bucket{le="..."}`/`_sum`/`_count` series.
pub fn parse_prom(text: &str) -> Result<PromSnapshot, String> {
    let mut snap = PromSnapshot::default();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: &str| format!("prom line {}: {msg}: {raw}", i + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("TYPE") {
                let (name, kind) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
                match kind {
                    "counter" => {
                        snap.counters.insert(name.to_string(), 0.0);
                    }
                    "histogram" => {
                        snap.histograms
                            .insert(name.to_string(), PromHistogram::default());
                    }
                    _ => return Err(err("unsupported metric type")),
                }
            }
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(char::is_whitespace)
            .ok_or_else(|| err("no value"))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| err("value is not a number"))?;
        if let Some((base, labels)) = name_part.split_once('{') {
            let base = base
                .strip_suffix("_bucket")
                .ok_or_else(|| err("labeled series is not a _bucket"))?;
            let h = snap
                .histograms
                .get_mut(base)
                .ok_or_else(|| err("bucket without a histogram TYPE"))?;
            let le = labels
                .trim_end_matches('}')
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err("bucket without an le label"))?;
            h.buckets.push((le.to_string(), value));
        } else if let Some(base) = name_part.strip_suffix("_sum") {
            snap.histograms
                .get_mut(base)
                .ok_or_else(|| err("_sum without a histogram TYPE"))?
                .sum = value;
        } else if let Some(base) = name_part
            .strip_suffix("_count")
            .filter(|b| snap.histograms.contains_key(*b))
        {
            snap.histograms.get_mut(base).unwrap().count = value;
        } else if let Some(v) = snap.counters.get_mut(name_part) {
            *v = value;
        } else {
            return Err(err("sample without a TYPE comment"));
        }
    }
    Ok(snap)
}

/// The rendered diff between two snapshots plus a change tally, so
/// callers can distinguish "ran, nothing moved" from "ran, N shifts".
pub struct PromDiff {
    /// Human-readable report, one line per changed series.
    pub report: String,
    /// Changed counters + changed histograms + added/removed metrics.
    pub changes: usize,
}

fn fmt_delta(d: f64) -> String {
    if d >= 0.0 {
        format!("+{d}")
    } else {
        format!("{d}")
    }
}

/// Per-bucket (non-cumulative) increments of a histogram, keyed by `le`.
fn increments(h: &PromHistogram) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut prev = 0.0;
    for (le, cum) in &h.buckets {
        out.insert(le.clone(), cum - prev);
        prev = *cum;
    }
    out
}

/// Diffs two parsed expositions: counter deltas, histogram-bucket shifts
/// (per-bucket increments, not the cumulative series, so a latency shift
/// shows up in exactly the buckets it moved between), and added/removed
/// metrics. Unchanged series are omitted from the report.
pub fn diff_prom(old: &PromSnapshot, new: &PromSnapshot) -> PromDiff {
    let mut report = String::new();
    let mut changes = 0usize;

    let counter_names: std::collections::BTreeSet<&String> =
        old.counters.keys().chain(new.counters.keys()).collect();
    for name in counter_names {
        match (old.counters.get(name), new.counters.get(name)) {
            (Some(a), Some(b)) if a != b => {
                changes += 1;
                let _ = writeln!(report, "counter {name}: {a} -> {b} ({})", fmt_delta(b - a));
            }
            (Some(a), None) => {
                changes += 1;
                let _ = writeln!(report, "counter {name}: removed (was {a})");
            }
            (None, Some(b)) => {
                changes += 1;
                let _ = writeln!(report, "counter {name}: added ({b})");
            }
            _ => {}
        }
    }

    let histo_names: std::collections::BTreeSet<&String> =
        old.histograms.keys().chain(new.histograms.keys()).collect();
    for name in histo_names {
        match (old.histograms.get(name), new.histograms.get(name)) {
            (Some(a), Some(b)) => {
                if a == b {
                    continue;
                }
                changes += 1;
                let _ = writeln!(
                    report,
                    "histogram {name}: count {} -> {} ({}), sum {} -> {} ({})",
                    a.count,
                    b.count,
                    fmt_delta(b.count - a.count),
                    a.sum,
                    b.sum,
                    fmt_delta(b.sum - a.sum),
                );
                let (ia, ib) = (increments(a), increments(b));
                let les: std::collections::BTreeSet<&String> = ia.keys().chain(ib.keys()).collect();
                let mut rows: Vec<(&String, f64, f64)> = les
                    .into_iter()
                    .map(|le| {
                        (
                            le,
                            ia.get(le).copied().unwrap_or(0.0),
                            ib.get(le).copied().unwrap_or(0.0),
                        )
                    })
                    .filter(|(_, a, b)| a != b)
                    .collect();
                // Numeric le order where possible (+Inf sorts last).
                rows.sort_by(|x, y| {
                    let key = |le: &str| le.parse::<f64>().unwrap_or(f64::INFINITY);
                    key(x.0)
                        .partial_cmp(&key(y.0))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for (le, a, b) in rows {
                    let _ = writeln!(
                        report,
                        "  bucket le={le}: {a} -> {b} ({})",
                        fmt_delta(b - a)
                    );
                }
            }
            (Some(_), None) => {
                changes += 1;
                let _ = writeln!(report, "histogram {name}: removed");
            }
            (None, Some(_)) => {
                changes += 1;
                let _ = writeln!(report, "histogram {name}: added");
            }
            (None, None) => unreachable!(),
        }
    }

    PromDiff { report, changes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_trace::TraceEvent;

    fn inst(ts: u64) -> TimedEvent {
        TimedEvent {
            ts,
            event: TraceEvent::Inst {
                func: 0,
                opcode: "load",
                cost: 1,
            },
        }
    }

    #[test]
    fn jsonl_parse_keeps_order_and_reports_bad_lines() {
        let good = inst(3).to_json();
        let text = format!("{good}\n\nnot json\n{good}\n");
        let s = parse_jsonl(&text);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].ts, 3);
        assert_eq!(s.bad_lines, vec![(3, "not json".to_string())]);
    }

    #[test]
    fn clean_stream_replays_without_failure() {
        let events: Vec<TimedEvent> = (1..=64).map(inst).collect();
        assert_eq!(replay_failure(&events, 1024), None);
        assert!(shrink_failing_prefix(&events, 1024).is_none());
    }

    #[test]
    fn shrink_finds_the_pass_fail_boundary() {
        // A span closed before it was opened — the head-truncated-stream
        // exporter bug (the ring dropped the B, the E survived). The
        // minimal failing prefix ends exactly at the stray OsExit.
        let mut events: Vec<TimedEvent> = (1..=20).map(inst).collect();
        events.push(TimedEvent {
            ts: 21,
            event: TraceEvent::OsExit {
                op: "sva.syscall",
                cost: 3,
            },
        });
        events.extend((22..=40).map(inst));
        let full = replay_failure(&events, 1024);
        assert!(full.as_deref().unwrap_or("").contains("chrome"), "{full:?}");
        assert_eq!(shrink_failing_prefix(&events, 1024), Some(21));
        assert!(replay_failure(&events[..20], 1024).is_none());
    }

    #[test]
    fn spans_open_at_stream_end_are_not_failures() {
        // A halt mid-syscall legitimately truncates the stream inside a
        // span; the validator must accept it.
        let mut events: Vec<TimedEvent> = (1..=8).map(inst).collect();
        events.push(TimedEvent {
            ts: 9,
            event: TraceEvent::SyscallEnter { num: 1 },
        });
        assert_eq!(replay_failure(&events, 1024), None);
    }

    #[test]
    fn prom_round_trip_and_diff_reports_shifts() {
        let old = "\
# TYPE sva_traps counter
sva_traps 10
# TYPE sva_lat histogram
sva_lat_bucket{le=\"8\"} 3
sva_lat_bucket{le=\"16\"} 5
sva_lat_bucket{le=\"+Inf\"} 6
sva_lat_sum 70
sva_lat_count 6
";
        let new = "\
# TYPE sva_traps counter
sva_traps 14
# TYPE sva_fresh counter
sva_fresh 1
# TYPE sva_lat histogram
sva_lat_bucket{le=\"8\"} 3
sva_lat_bucket{le=\"16\"} 7
sva_lat_bucket{le=\"+Inf\"} 8
sva_lat_sum 100
sva_lat_count 8
";
        let a = parse_prom(old).unwrap();
        let b = parse_prom(new).unwrap();
        assert_eq!(a.counters["sva_traps"], 10.0);
        assert_eq!(a.histograms["sva_lat"].buckets.len(), 3);
        let d = diff_prom(&a, &b);
        assert_eq!(d.changes, 3, "{}", d.report);
        assert!(d.report.contains("counter sva_traps: 10 -> 14 (+4)"));
        assert!(d.report.contains("counter sva_fresh: added (1)"));
        assert!(d.report.contains("histogram sva_lat: count 6 -> 8 (+2)"));
        // The shift lands in the le=16 increment, not le=8.
        assert!(
            d.report.contains("bucket le=16: 2 -> 4 (+2)"),
            "{}",
            d.report
        );
        assert!(!d.report.contains("le=8:"), "{}", d.report);
        // Identical snapshots: no changes.
        assert_eq!(diff_prom(&a, &a).changes, 0);
    }

    #[test]
    fn parse_prom_rejects_untyped_samples() {
        assert!(parse_prom("sva_orphan 3\n").is_err());
        assert!(parse_prom("# TYPE sva_x gauge\nsva_x 1\n").is_err());
    }

    #[test]
    fn real_exporter_output_parses_back() {
        let mut t = RingTracer::default();
        t.record(5, TraceEvent::SyscallEnter { num: 4 });
        t.record(40, TraceEvent::SyscallExit { num: 4, cost: 35 });
        let snap = parse_prom(&to_prometheus(&t)).unwrap();
        assert!(
            !snap.counters.is_empty() || !snap.histograms.is_empty(),
            "exporter emitted nothing"
        );
    }
}
