//! Shared measurement harness for the paper-table benchmarks.
//!
//! Every table compares the four kernel configurations of §7.1:
//! `native`, `sva-gcc`, `sva-llvm`, `sva-safe`. A measurement boots a
//! cached kernel image with a chosen user workload and records wall time,
//! virtual cycles and executed instructions. Overheads are reported the
//! way the paper reports them: `100 × (T_other − T_native) / T_native`.

use std::time::{Duration, Instant};

use sva_kernel::harness::{boot_user, make_vm_cfg, make_vm_traced, pack_arg};
use sva_trace::{RingConfig, RingTracer};
use sva_vm::{KernelKind, VmConfig, VmExit, VmStats};

pub use sva_kernel::harness::pack_arg as pack;

pub mod prof;

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Wall-clock duration of the booted workload.
    pub wall: Duration,
    /// Virtual cycles consumed.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Exit code.
    pub exit: u64,
    /// Metapool lookups served by the MRU cache (sva-safe only).
    pub cache_hits: u64,
    /// Metapool lookups served by the page index (sva-safe only).
    pub page_hits: u64,
    /// Metapool lookups that walked the splay tree (sva-safe only).
    pub tree_walks: u64,
    /// Metapool lookups answered by the singleton two-compare test
    /// (sva-safe only).
    pub singleton_hits: u64,
    /// Superinstructions dispatched by the optimizing tier (opt runs only).
    pub fused_execs: u64,
}

/// Boots `prog(arg)` on a `kind` kernel and measures it.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly — benchmarks must not
/// trip safety checks.
pub fn run_workload(kind: KernelKind, prog: &str, arg: u64) -> Sample {
    run_workload_cfg(
        VmConfig {
            kind,
            ..Default::default()
        },
        prog,
        arg,
    )
}

/// Like [`run_workload`] with a full [`VmConfig`] — the opt-level /
/// singleton ablation entry point.
///
/// # Panics
///
/// Panics like [`run_workload`] if the workload does not halt cleanly.
pub fn run_workload_cfg(cfg: VmConfig, prog: &str, arg: u64) -> Sample {
    let kind = cfg.kind;
    let mut vm = make_vm_cfg(cfg);
    let start = Instant::now();
    let exit = boot_user(&mut vm, prog, arg)
        .unwrap_or_else(|e| panic!("{kind:?} {prog}: {e}\nbacktrace: {:?}", vm.backtrace()));
    let wall = start.elapsed();
    let code = match exit {
        VmExit::Halted(c) | VmExit::Returned(c) => c,
    };
    assert_eq!(code, 0, "{kind:?} {prog}: nonzero exit {code}");
    let VmStats {
        instructions,
        cycles,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
        ..
    } = vm.stats();
    Sample {
        wall,
        cycles,
        instructions,
        exit: code,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
    }
}

/// Like [`run_workload`] but with a [`RingTracer`] attached, returning the
/// tracer alongside the sample. The VM's cumulative check counters are
/// folded into the tracer's metrics registry before it is handed back, so
/// exporters see both the event-derived profile and the authoritative
/// `CheckStats` totals.
///
/// # Panics
///
/// Panics like [`run_workload`] if the workload does not halt cleanly.
pub fn run_workload_traced(
    kind: KernelKind,
    prog: &str,
    arg: u64,
    cfg: RingConfig,
) -> (Sample, RingTracer) {
    let mut vm = make_vm_traced(kind, RingTracer::new(cfg));
    let start = Instant::now();
    let exit = boot_user(&mut vm, prog, arg)
        .unwrap_or_else(|e| panic!("{kind:?} {prog}: {e}\nbacktrace: {:?}", vm.backtrace()));
    let wall = start.elapsed();
    let code = match exit {
        VmExit::Halted(c) | VmExit::Returned(c) => c,
    };
    assert_eq!(code, 0, "{kind:?} {prog}: nonzero exit {code}");
    let VmStats {
        instructions,
        cycles,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
        ..
    } = vm.stats();
    let pool_stats = vm.pools.total_stats();
    pool_stats.fold_into(vm.tracer_mut().metrics_mut());
    // The self-healing counters (DESIGN.md §4.8) ride the same registry so
    // the nightly `svaprof --prom-diff` tracks repair/probation drift.
    let s = vm.stats();
    let m = vm.tracer_mut().metrics_mut();
    m.set_counter("recovery.repairs", s.repairs);
    m.set_counter("recovery.pools_repaired", s.pools_repaired);
    m.set_counter("recovery.probation_passed", s.probation_passed);
    m.set_counter("recovery.probation_failed", s.probation_failed);
    m.set_counter("recovery.subsys_retired", s.subsys_retired);
    let sample = Sample {
        wall,
        cycles,
        instructions,
        exit: code,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
    };
    (sample, vm.into_tracer())
}

/// Runs a workload on all four configurations.
pub fn run_all(prog: &str, arg: u64) -> [(KernelKind, Sample); 4] {
    KernelKind::ALL.map(|k| (k, run_workload(k, prog, arg)))
}

/// Percentage overhead relative to a baseline (paper's reporting unit).
pub fn pct_over(native: f64, other: f64) -> f64 {
    if native == 0.0 {
        0.0
    } else {
        100.0 * (other - native) / native
    }
}

/// A row of a latency table: label + per-iteration baseline + overheads.
pub struct LatencyRow {
    /// Row label (e.g. `"getpid"`).
    pub label: String,
    /// Native per-iteration latency in microseconds of wall time.
    pub native_us: f64,
    /// Overheads (%) for sva-gcc, sva-llvm, sva-safe.
    pub over: [f64; 3],
    /// Cycle-count overheads (%) — the deterministic view.
    pub cyc_over: [f64; 3],
}

/// Wall-clock repetitions per configuration (minimum is reported, cutting
/// scheduler noise; virtual cycles are deterministic and need one run).
pub const WALL_REPS: usize = 3;

/// Runs a workload several times, keeping the fastest wall time (cycles
/// and instructions are identical across runs).
pub fn run_workload_min(kind: KernelKind, prog: &str, arg: u64) -> Sample {
    let mut best = run_workload(kind, prog, arg);
    for _ in 1..WALL_REPS {
        let s = run_workload(kind, prog, arg);
        if s.wall < best.wall {
            best.wall = s.wall;
        }
    }
    best
}

/// Measures one workload row across configurations.
///
/// `iters` is how many operations the workload performs; per-op latency is
/// total/iters. A warmup run (the kernel image build) happens on first use
/// via the harness cache.
pub fn latency_row(label: &str, prog: &str, arg: u64, iters: u64) -> LatencyRow {
    let samples = KernelKind::ALL.map(|k| (k, run_workload_min(k, prog, arg)));
    let native = &samples[0].1;
    let nus = native.wall.as_secs_f64() * 1e6 / iters as f64;
    let mut over = [0.0; 3];
    let mut cyc_over = [0.0; 3];
    for (i, (_, s)) in samples.iter().skip(1).enumerate() {
        over[i] = pct_over(native.wall.as_secs_f64(), s.wall.as_secs_f64());
        cyc_over[i] = pct_over(native.cycles as f64, s.cycles as f64);
    }
    LatencyRow {
        label: label.to_string(),
        native_us: nus,
        over,
        cyc_over,
    }
}

/// Prints a latency table in the paper's Table 5/7 format.
pub fn print_latency_table(title: &str, rows: &[LatencyRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10}   {:>24}",
        "Test", "Native (us)", "gcc (%)", "llvm (%)", "Safe (%)", "[cycle-count overheads]"
    );
    for r in rows {
        println!(
            "{:<22} {:>12.3} {:>10.1} {:>10.1} {:>10.1}   {:>6.1} {:>6.1} {:>6.1}",
            r.label,
            r.native_us,
            r.over[0],
            r.over[1],
            r.over[2],
            r.cyc_over[0],
            r.cyc_over[1],
            r.cyc_over[2]
        );
    }
}

/// A bandwidth row: MB/s baseline + percentage *reductions*.
pub struct BandwidthRow {
    /// Row label.
    pub label: String,
    /// Native bandwidth in MB/s.
    pub native_mbs: f64,
    /// Reductions (%) for sva-gcc, sva-llvm, sva-safe.
    pub reduction: [f64; 3],
}

/// Measures a bandwidth workload that moves `bytes` bytes in total.
///
/// Reductions are computed on *virtual cycles* (deterministic, calibrated);
/// the native MB/s column uses wall time.
pub fn bandwidth_row(label: &str, prog: &str, arg: u64, bytes: u64) -> BandwidthRow {
    let samples = KernelKind::ALL.map(|k| (k, run_workload_min(k, prog, arg)));
    let native_mbs = (bytes as f64 / 1e6) / samples[0].1.wall.as_secs_f64();
    let ncyc = samples[0].1.cycles as f64;
    let mut reduction = [0.0; 3];
    for (i, (_, s)) in samples.iter().skip(1).enumerate() {
        // Bandwidth ∝ 1/time: reduction = 1 − native_cycles/other_cycles.
        reduction[i] = 100.0 * (1.0 - ncyc / s.cycles as f64);
    }
    BandwidthRow {
        label: label.to_string(),
        native_mbs,
        reduction,
    }
}

/// Prints a bandwidth table in the paper's Table 6/8 format.
pub fn print_bandwidth_table(title: &str, rows: &[BandwidthRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>14} {:>10} {:>10} {:>10}",
        "Test", "Native (MB/s)", "gcc (%)", "llvm (%)", "Safe (%)"
    );
    for r in rows {
        println!(
            "{:<22} {:>14.2} {:>10.1} {:>10.1} {:>10.1}",
            r.label, r.native_mbs, r.reduction[0], r.reduction[1], r.reduction[2]
        );
    }
}

/// Convenience: packed workload argument.
pub fn arg(iters: u64, size: u64, mode: u64) -> u64 {
    pack_arg(iters, size, mode)
}

/// Prints, for each workload, where the sva-safe configuration's metapool
/// lookups resolved: MRU cache, page index, or splay tree. Each row is one
/// `(label, prog, arg)` workload booted once under [`KernelKind::SvaSafe`].
pub fn print_check_breakdown(title: &str, rows: &[(&str, &str, u64)]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "Test", "singleton", "cache hits", "page hits", "tree walks", "tree %"
    );
    for (label, prog, a) in rows {
        let s = run_workload(KernelKind::SvaSafe, prog, *a);
        let total = s.singleton_hits + s.cache_hits + s.page_hits + s.tree_walks;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * s.tree_walks as f64 / total as f64
        };
        println!(
            "{:<22} {:>10} {:>12} {:>12} {:>12} {:>7.1}%",
            label, s.singleton_hits, s.cache_hits, s.page_hits, s.tree_walks, pct
        );
    }
}
