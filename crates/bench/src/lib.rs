//! Shared measurement harness for the paper-table benchmarks.
//!
//! Every table compares the four kernel configurations of §7.1:
//! `native`, `sva-gcc`, `sva-llvm`, `sva-safe`. A measurement boots a
//! cached kernel image with a chosen user workload and records wall time,
//! virtual cycles and executed instructions. Overheads are reported the
//! way the paper reports them: `100 × (T_other − T_native) / T_native`.

use std::time::{Duration, Instant};

use sva_kernel::harness::{boot_user, make_vm_cfg, make_vm_traced, pack_arg};
use sva_trace::{RingConfig, RingTracer};
use sva_vm::{KernelKind, SmpJob, SmpMachine, VmConfig, VmExit, VmStats};

pub use sva_kernel::harness::pack_arg as pack;

pub mod prof;

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Wall-clock duration of the booted workload.
    pub wall: Duration,
    /// Virtual cycles consumed.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Exit code.
    pub exit: u64,
    /// Metapool lookups served by the MRU cache (sva-safe only).
    pub cache_hits: u64,
    /// Metapool lookups served by the page index (sva-safe only).
    pub page_hits: u64,
    /// Metapool lookups that walked the splay tree (sva-safe only).
    pub tree_walks: u64,
    /// Metapool lookups answered by the singleton two-compare test
    /// (sva-safe only).
    pub singleton_hits: u64,
    /// Superinstructions dispatched by the optimizing tier (opt runs only).
    pub fused_execs: u64,
}

/// Boots `prog(arg)` on a `kind` kernel and measures it.
///
/// # Panics
///
/// Panics if the workload does not halt cleanly — benchmarks must not
/// trip safety checks.
pub fn run_workload(kind: KernelKind, prog: &str, arg: u64) -> Sample {
    run_workload_cfg(
        VmConfig {
            kind,
            ..Default::default()
        },
        prog,
        arg,
    )
}

/// Like [`run_workload`] with a full [`VmConfig`] — the opt-level /
/// singleton ablation entry point.
///
/// # Panics
///
/// Panics like [`run_workload`] if the workload does not halt cleanly.
pub fn run_workload_cfg(cfg: VmConfig, prog: &str, arg: u64) -> Sample {
    let kind = cfg.kind;
    let mut vm = make_vm_cfg(cfg);
    let start = Instant::now();
    let exit = boot_user(&mut vm, prog, arg)
        .unwrap_or_else(|e| panic!("{kind:?} {prog}: {e}\nbacktrace: {:?}", vm.backtrace()));
    let wall = start.elapsed();
    let code = match exit {
        VmExit::Halted(c) | VmExit::Returned(c) => c,
    };
    assert_eq!(code, 0, "{kind:?} {prog}: nonzero exit {code}");
    let VmStats {
        instructions,
        cycles,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
        ..
    } = vm.stats();
    Sample {
        wall,
        cycles,
        instructions,
        exit: code,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
    }
}

/// Like [`run_workload`] but with a [`RingTracer`] attached, returning the
/// tracer alongside the sample. The VM's cumulative check counters are
/// folded into the tracer's metrics registry before it is handed back, so
/// exporters see both the event-derived profile and the authoritative
/// `CheckStats` totals.
///
/// # Panics
///
/// Panics like [`run_workload`] if the workload does not halt cleanly.
pub fn run_workload_traced(
    kind: KernelKind,
    prog: &str,
    arg: u64,
    cfg: RingConfig,
) -> (Sample, RingTracer) {
    let mut vm = make_vm_traced(kind, RingTracer::new(cfg));
    let start = Instant::now();
    let exit = boot_user(&mut vm, prog, arg)
        .unwrap_or_else(|e| panic!("{kind:?} {prog}: {e}\nbacktrace: {:?}", vm.backtrace()));
    let wall = start.elapsed();
    let code = match exit {
        VmExit::Halted(c) | VmExit::Returned(c) => c,
    };
    assert_eq!(code, 0, "{kind:?} {prog}: nonzero exit {code}");
    let VmStats {
        instructions,
        cycles,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
        ..
    } = vm.stats();
    let pool_stats = vm.pools.total_stats();
    pool_stats.fold_into(vm.tracer_mut().metrics_mut());
    // The self-healing counters (DESIGN.md §4.8) ride the same registry so
    // the nightly `svaprof --prom-diff` tracks repair/probation drift.
    let s = vm.stats();
    let m = vm.tracer_mut().metrics_mut();
    m.set_counter("recovery.repairs", s.repairs);
    m.set_counter("recovery.pools_repaired", s.pools_repaired);
    m.set_counter("recovery.probation_passed", s.probation_passed);
    m.set_counter("recovery.probation_failed", s.probation_failed);
    m.set_counter("recovery.subsys_retired", s.subsys_retired);
    let sample = Sample {
        wall,
        cycles,
        instructions,
        exit: code,
        cache_hits,
        page_hits,
        tree_walks,
        singleton_hits,
        fused_execs,
    };
    (sample, vm.into_tracer())
}

/// Runs a workload on all four configurations.
pub fn run_all(prog: &str, arg: u64) -> [(KernelKind, Sample); 4] {
    KernelKind::ALL.map(|k| (k, run_workload(k, prog, arg)))
}

/// Percentage overhead relative to a baseline (paper's reporting unit).
pub fn pct_over(native: f64, other: f64) -> f64 {
    if native == 0.0 {
        0.0
    } else {
        100.0 * (other - native) / native
    }
}

/// A row of a latency table: label + per-iteration baseline + overheads.
pub struct LatencyRow {
    /// Row label (e.g. `"getpid"`).
    pub label: String,
    /// Native per-iteration latency in microseconds of wall time.
    pub native_us: f64,
    /// Overheads (%) for sva-gcc, sva-llvm, sva-safe.
    pub over: [f64; 3],
    /// Cycle-count overheads (%) — the deterministic view.
    pub cyc_over: [f64; 3],
}

/// Wall-clock repetitions per configuration (minimum is reported, cutting
/// scheduler noise; virtual cycles are deterministic and need one run).
pub const WALL_REPS: usize = 3;

/// Runs a workload several times, keeping the fastest wall time (cycles
/// and instructions are identical across runs).
pub fn run_workload_min(kind: KernelKind, prog: &str, arg: u64) -> Sample {
    let mut best = run_workload(kind, prog, arg);
    for _ in 1..WALL_REPS {
        let s = run_workload(kind, prog, arg);
        if s.wall < best.wall {
            best.wall = s.wall;
        }
    }
    best
}

/// Measures one workload row across configurations.
///
/// `iters` is how many operations the workload performs; per-op latency is
/// total/iters. A warmup run (the kernel image build) happens on first use
/// via the harness cache.
pub fn latency_row(label: &str, prog: &str, arg: u64, iters: u64) -> LatencyRow {
    let samples = KernelKind::ALL.map(|k| (k, run_workload_min(k, prog, arg)));
    let native = &samples[0].1;
    let nus = native.wall.as_secs_f64() * 1e6 / iters as f64;
    let mut over = [0.0; 3];
    let mut cyc_over = [0.0; 3];
    for (i, (_, s)) in samples.iter().skip(1).enumerate() {
        over[i] = pct_over(native.wall.as_secs_f64(), s.wall.as_secs_f64());
        cyc_over[i] = pct_over(native.cycles as f64, s.cycles as f64);
    }
    LatencyRow {
        label: label.to_string(),
        native_us: nus,
        over,
        cyc_over,
    }
}

/// Prints a latency table in the paper's Table 5/7 format.
pub fn print_latency_table(title: &str, rows: &[LatencyRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>12} {:>10} {:>10} {:>10}   {:>24}",
        "Test", "Native (us)", "gcc (%)", "llvm (%)", "Safe (%)", "[cycle-count overheads]"
    );
    for r in rows {
        println!(
            "{:<22} {:>12.3} {:>10.1} {:>10.1} {:>10.1}   {:>6.1} {:>6.1} {:>6.1}",
            r.label,
            r.native_us,
            r.over[0],
            r.over[1],
            r.over[2],
            r.cyc_over[0],
            r.cyc_over[1],
            r.cyc_over[2]
        );
    }
}

/// A bandwidth row: MB/s baseline + percentage *reductions*.
pub struct BandwidthRow {
    /// Row label.
    pub label: String,
    /// Native bandwidth in MB/s.
    pub native_mbs: f64,
    /// Reductions (%) for sva-gcc, sva-llvm, sva-safe.
    pub reduction: [f64; 3],
}

/// Measures a bandwidth workload that moves `bytes` bytes in total.
///
/// Reductions are computed on *virtual cycles* (deterministic, calibrated);
/// the native MB/s column uses wall time.
pub fn bandwidth_row(label: &str, prog: &str, arg: u64, bytes: u64) -> BandwidthRow {
    let samples = KernelKind::ALL.map(|k| (k, run_workload_min(k, prog, arg)));
    let native_mbs = (bytes as f64 / 1e6) / samples[0].1.wall.as_secs_f64();
    let ncyc = samples[0].1.cycles as f64;
    let mut reduction = [0.0; 3];
    for (i, (_, s)) in samples.iter().skip(1).enumerate() {
        // Bandwidth ∝ 1/time: reduction = 1 − native_cycles/other_cycles.
        reduction[i] = 100.0 * (1.0 - ncyc / s.cycles as f64);
    }
    BandwidthRow {
        label: label.to_string(),
        native_mbs,
        reduction,
    }
}

/// Prints a bandwidth table in the paper's Table 6/8 format.
pub fn print_bandwidth_table(title: &str, rows: &[BandwidthRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>14} {:>10} {:>10} {:>10}",
        "Test", "Native (MB/s)", "gcc (%)", "llvm (%)", "Safe (%)"
    );
    for r in rows {
        println!(
            "{:<22} {:>14.2} {:>10.1} {:>10.1} {:>10.1}",
            r.label, r.native_mbs, r.reduction[0], r.reduction[1], r.reduction[2]
        );
    }
}

/// Convenience: packed workload argument.
pub fn arg(iters: u64, size: u64, mode: u64) -> u64 {
    pack_arg(iters, size, mode)
}

// ---- SMP scaling curve (DESIGN.md §4.9) ------------------------------------

/// The scaling workload: three syscall-heavy programs, one full set per
/// vCPU, so per-CPU work stays constant as N grows and the curve
/// isolates what sharing the check path costs. Arguments are pre-packed
/// `pack_arg(iters, size, mode)` words.
pub const SCALING_CORPUS: [(&str, u64); 3] = [
    ("user_getpid_loop", 200),
    ("user_write_loop", 80 | (64 << 24)),
    ("user_openclose_loop", 60),
];

/// One point on the syscalls/sec-vs-vCPUs scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    /// vCPU count of the machine.
    pub vcpus: u32,
    /// Jobs submitted (one corpus set per vCPU).
    pub jobs: u32,
    /// Syscalls executed across all vCPUs (deterministic).
    pub total_syscalls: u64,
    /// Virtual cycles of the busiest vCPU — the machine's virtual
    /// makespan (schedule-dependent within one job's worth of skew).
    pub max_cpu_cycles: u64,
    /// Merged virtual cycles across all vCPUs (deterministic).
    pub total_cycles: u64,
    /// Throughput: syscalls per million virtual cycles of makespan.
    pub syscalls_per_mcycle: f64,
    /// Wall time of the run (host-scheduling noise; never gated).
    pub wall: Duration,
}

impl ScalingPoint {
    /// Merged cycles per syscall — the deterministic per-check-path cost
    /// the nightly gate compares (makespan-based throughput wobbles by
    /// up to one job's worth of steal skew; this does not).
    pub fn cycles_per_syscall(&self) -> f64 {
        if self.total_syscalls == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.total_syscalls as f64
        }
    }
}

/// Measures one point of the scaling curve on the sva-safe kernel at
/// opt 2 (the configuration the paper's overhead story is about).
///
/// # Panics
///
/// Panics if any job fails — the scaling corpus must run clean at every
/// vCPU count.
pub fn scaling_point(vcpus: u32) -> ScalingPoint {
    let template = make_vm_cfg(VmConfig {
        kind: KernelKind::SvaSafe,
        opt_level: 2,
        vcpus,
        ..Default::default()
    });
    let mut jobs = Vec::new();
    for _ in 0..vcpus {
        for (prog, a) in SCALING_CORPUS {
            let addr = template
                .func_address(prog)
                .expect("scaling corpus program exists");
            jobs.push(SmpJob::boot_user(prog, addr, a));
        }
    }
    let njobs = jobs.len() as u32;
    let mut smp = SmpMachine::new(template);
    let r = smp.run(jobs);
    let failures: Vec<String> = r
        .failures()
        .iter()
        .map(|j| format!("{} on cpu {}: {:?}", j.label, j.cpu, j.exit))
        .collect();
    assert!(failures.is_empty(), "scaling jobs failed: {failures:?}");
    ScalingPoint {
        vcpus,
        jobs: njobs,
        total_syscalls: r.total_syscalls,
        max_cpu_cycles: r.max_cpu_cycles,
        total_cycles: r.merged.cycles,
        syscalls_per_mcycle: r.syscalls_per_mcycle(),
        wall: r.wall,
    }
}

/// Measures the curve at each requested vCPU count.
pub fn scaling_curve(vcpus: &[u32]) -> Vec<ScalingPoint> {
    vcpus.iter().map(|&n| scaling_point(n)).collect()
}

/// Speedup of each point's throughput over the curve's 1-vCPU point
/// (0.0 when the curve has no such point).
pub fn scaling_speedup(points: &[ScalingPoint], p: &ScalingPoint) -> f64 {
    points
        .iter()
        .find(|q| q.vcpus == 1)
        .filter(|q| q.syscalls_per_mcycle > 0.0)
        .map(|q| p.syscalls_per_mcycle / q.syscalls_per_mcycle)
        .unwrap_or(0.0)
}

/// Renders the curve as the `scaling.json` artifact: a JSON array, one
/// flat object per line (the same line-oriented shape `bench_gate`
/// parses for `checks_micro`).
pub fn scaling_json(points: &[ScalingPoint]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"vcpus\":{},\"jobs\":{},\"total_syscalls\":{},\"max_cpu_cycles\":{},\
             \"total_cycles\":{},\"syscalls_per_mcycle\":{:.4},\"cycles_per_syscall\":{:.4},\
             \"speedup_vs_1\":{:.4},\"wall_ms\":{:.1}}}{}\n",
            p.vcpus,
            p.jobs,
            p.total_syscalls,
            p.max_cpu_cycles,
            p.total_cycles,
            p.syscalls_per_mcycle,
            p.cycles_per_syscall(),
            scaling_speedup(points, p),
            p.wall.as_secs_f64() * 1e3,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Prints the scaling curve as a table.
pub fn print_scaling_table(points: &[ScalingPoint]) {
    println!("\n== sva-safe SMP scaling: syscalls per Mcycle of virtual makespan ==");
    println!(
        "{:>6} {:>6} {:>10} {:>14} {:>12} {:>10} {:>10}",
        "vcpus", "jobs", "syscalls", "max cycles", "sys/Mcyc", "speedup", "wall (ms)"
    );
    for p in points {
        println!(
            "{:>6} {:>6} {:>10} {:>14} {:>12.2} {:>9.2}x {:>10.1}",
            p.vcpus,
            p.jobs,
            p.total_syscalls,
            p.max_cpu_cycles,
            p.syscalls_per_mcycle,
            scaling_speedup(points, p),
            p.wall.as_secs_f64() * 1e3
        );
    }
}

/// Runs the scaling corpus on an `vcpus`-wide [`SmpMachine`] and folds
/// every vCPU's counters into one registry via
/// [`MetricsRegistry::fold_cpu`]: each check/recovery/scheduler counter
/// appears both under `cpu<id>.<name>` and summed into the unprefixed
/// machine total. `svaprof --vcpus N --prom` serializes the result so the
/// nightly `--prom-diff` tracks per-vCPU `recovery.*` and `check.*` drift
/// night over night (DESIGN.md §4.9).
///
/// # Panics
///
/// Panics if any corpus job fails — same contract as [`scaling_point`].
pub fn smp_metrics(vcpus: u32) -> sva_trace::MetricsRegistry {
    use sva_trace::MetricsRegistry;
    let template = make_vm_cfg(VmConfig {
        kind: KernelKind::SvaSafe,
        opt_level: 2,
        vcpus,
        ..Default::default()
    });
    let mut jobs = Vec::new();
    for _ in 0..vcpus {
        for (prog, a) in SCALING_CORPUS {
            let addr = template
                .func_address(prog)
                .expect("scaling corpus program exists");
            jobs.push(SmpJob::boot_user(prog, addr, a));
        }
    }
    let mut smp = SmpMachine::new(template);
    let r = smp.run(jobs);
    let failures: Vec<String> = r
        .failures()
        .iter()
        .map(|j| format!("{} on cpu {}: {:?}", j.label, j.cpu, j.exit))
        .collect();
    assert!(failures.is_empty(), "smp metrics jobs failed: {failures:?}");
    let mut m = MetricsRegistry::new();
    for c in &r.cpus {
        let mut per_cpu = MetricsRegistry::new();
        c.checks.fold_into(&mut per_cpu);
        per_cpu.set_counter("recovery.repairs", c.stats.repairs);
        per_cpu.set_counter("recovery.pools_repaired", c.stats.pools_repaired);
        per_cpu.set_counter("recovery.probation_passed", c.stats.probation_passed);
        per_cpu.set_counter("recovery.probation_failed", c.stats.probation_failed);
        per_cpu.set_counter("recovery.subsys_retired", c.stats.subsys_retired);
        per_cpu.set_counter("sched.jobs", c.jobs as u64);
        per_cpu.set_counter("sched.steals", c.steals);
        per_cpu.set_counter("sched.parks", c.parks);
        per_cpu.set_counter("sched.irqs_routed", c.irqs_routed);
        m.fold_cpu(c.cpu, &per_cpu);
    }
    m
}

/// Prints, for each workload, where the sva-safe configuration's metapool
/// lookups resolved: MRU cache, page index, or splay tree. Each row is one
/// `(label, prog, arg)` workload booted once under [`KernelKind::SvaSafe`].
pub fn print_check_breakdown(title: &str, rows: &[(&str, &str, u64)]) {
    println!("\n== {title} ==");
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "Test", "singleton", "cache hits", "page hits", "tree walks", "tree %"
    );
    for (label, prog, a) in rows {
        let s = run_workload(KernelKind::SvaSafe, prog, *a);
        let total = s.singleton_hits + s.cache_hits + s.page_hits + s.tree_walks;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * s.tree_walks as f64 / total as f64
        };
        println!(
            "{:<22} {:>10} {:>12} {:>12} {:>12} {:>7.1}%",
            label, s.singleton_hits, s.cache_hits, s.page_hits, s.tree_walks, pct
        );
    }
}
