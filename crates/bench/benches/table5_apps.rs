//! Criterion wall-clock benches for the Table 5 application workloads.
//!
//! One group per application; within each group, one benchmark per kernel
//! configuration — the Criterion report shows the four-way comparison the
//! paper's Table 5 makes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::{arg, run_workload};
use sva_vm::KernelKind;

fn apps(c: &mut Criterion) {
    let cases: [(&str, &str, u64); 4] = [
        ("bzip2", "user_bzip2", arg(6, 0, 0)),
        ("lame", "user_lame", arg(6, 0, 0)),
        ("ldd", "user_ldd", arg(80, 0, 0)),
        ("thttpd_311B", "user_thttpd", arg(60, 311, 0)),
    ];
    for (name, prog, a) in cases {
        let mut g = c.benchmark_group(format!("table5/{name}"));
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(3));
        for kind in KernelKind::ALL {
            g.bench_function(kind.label(), |b| {
                b.iter(|| run_workload(kind, prog, a));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, apps);
criterion_main!(benches);
