//! Microbenchmarks of the safety substrate itself: splay-tree lookups
//! (the cost unit behind every bounds check) and metapool operations.
//! This is the ablation behind the paper's §7.1.3 "fat pointers instead of
//! splay lookups" optimization discussion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sva_kernel::harness::{boot_user, make_vm_cfg, USER_HEAP_BASE};
use sva_rt::{MetaPool, SplayTree};
use sva_trace::{
    EventClass, FlightRecorder, LookupLayer, NullTracer, RingTracer, TraceEvent, Tracer,
};
use sva_vm::{KernelKind, VmConfig};

fn splay(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/splay");
    // Hot lookup: repeated hits on the same object (the common pattern the
    // splay tree optimizes for).
    g.bench_function("lookup_hot", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        b.iter(|| t.lookup(512 * 64 + 8));
    });
    // Cold lookups: uniformly spread accesses.
    g.bench_function("lookup_spread", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.lookup((x % 1024) * 64 + 8)
        });
    });
    g.bench_function("insert_remove", |b| {
        b.iter_batched(
            SplayTree::new,
            |mut t| {
                for i in 0..256u64 {
                    t.insert(i * 32, 32);
                }
                for i in 0..256u64 {
                    t.remove(i * 32);
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("rt/metapool");
    g.bench_function("bounds_check_hit", |b| {
        let mut p = MetaPool::new("bench", true, true, Some(64));
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.bounds_check(0x1800, 0x1801));
    });
    g.bench_function("ls_check_hit", |b| {
        let mut p = MetaPool::new("bench", false, true, None);
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.ls_check(0x1800));
    });
    g.finish();
}

/// Builds a pool with `n` registered 64-byte objects, 256 bytes apart.
fn pool_with_objects(n: u64, fast_path: bool) -> MetaPool {
    let mut p = MetaPool::new("bench", false, true, None);
    p.set_fast_path(fast_path);
    for i in 0..n {
        p.reg_obj(0x1_0000 + i * 0x100, 64).unwrap();
    }
    p
}

/// The fast path vs. the splay-only baseline (set_fast_path(false)) on the
/// two workload shapes that matter: repeated access to the same few hot
/// objects (the paper's locality argument — served by the MRU cache) and a
/// pseudo-random spread over many objects (served by the page index).
fn fastpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/fastpath");
    for (label, fast) in [("repeat_fast", true), ("repeat_baseline", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1024, fast);
            let mut i = 0u64;
            b.iter(|| {
                // Two hot objects, alternating: fits the 2-entry MRU.
                i = i.wrapping_add(1);
                let addr = 0x1_0000 + (i & 1) * 0x100 + 8;
                p.ls_check(addr)
            });
        });
    }
    for (label, fast) in [("spread_fast", true), ("spread_baseline", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1024, fast);
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = 0x1_0000 + (x % 1024) * 0x100 + 8;
                p.ls_check(addr)
            });
        });
    }
    g.finish();

    // One-shot layer breakdown on a mixed workload, so the bench output
    // documents where lookups resolve (cache / page index / tree).
    let mut p = pool_with_objects(1024, true);
    let mut x = 0u64;
    for i in 0..100_000u64 {
        // 75% hot-pair traffic, 25% spread.
        let addr = if i % 4 != 0 {
            0x1_0000 + (i & 1) * 0x100 + 8
        } else {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            0x1_0000 + (x % 1024) * 0x100 + 8
        };
        let _ = p.ls_check(addr);
    }
    let s = *p.stats();
    println!(
        "rt/fastpath breakdown (100k mixed lookups): cache_hits {} ({:.1}%), \
         page_hits {} ({:.1}%), tree_walks {} ({:.1}%)",
        s.cache_hits,
        100.0 * s.cache_hits as f64 / s.lookups() as f64,
        s.page_hits,
        100.0 * s.page_hits as f64 / s.lookups() as f64,
        s.tree_walks,
        100.0 * s.tree_walks as f64 / s.lookups() as f64,
    );
}

/// The singleton-pool elision (DESIGN.md §4.4): a pool holding exactly one
/// live object answers every lookup with a two-compare bounds test, ahead
/// of the MRU cache. `repeat_singleton` vs `repeat_mru` isolates what the
/// elision saves over the PR 1 fast path on the same one-object pool; the
/// nightly gate watches both repeat-hit medians.
fn singleton(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/singleton");
    for (label, on) in [("repeat_singleton", true), ("repeat_mru", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1, true);
            p.set_singleton_path(on);
            let mut i = 0u64;
            b.iter(|| {
                // Walk offsets inside the lone 64-byte object.
                i = i.wrapping_add(1);
                p.ls_check(0x1_0000 + (i & 0x38))
            });
        });
    }
    g.finish();
}

/// One iteration of a traced repeat-hit check site, mirroring the VM's
/// `pchk.lscheck` dispatch: the check itself and a recording block behind
/// `T::wants(EventClass::Check)`. The `wants` test is a constant per
/// monomorphization, so the compiler deletes the whole block for tracers
/// whose `WANTED` mask excludes the `Check` class.
#[inline(always)]
fn traced_check_step<T: Tracer>(p: &mut MetaPool, tracer: &mut T, i: &mut u64) -> bool {
    *i = i.wrapping_add(1);
    let addr = 0x1_0000 + (*i & 1) * 0x100 + 8;
    let r = p.ls_check(addr);
    if T::wants(EventClass::Check) {
        tracer.record(
            *i * 16,
            TraceEvent::Check {
                check: "pchk.lscheck",
                pool: 0,
                layer: LookupLayer::Cache,
                passed: r.is_ok(),
                cost: 16,
            },
        );
    }
    r.is_ok()
}

/// Times one slice of the traced site; returns ns per iteration.
fn flight_slice<T: Tracer>(p: &mut MetaPool, tracer: &mut T, i: &mut u64, iters: u64) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..iters {
        criterion::black_box(traced_check_step(p, tracer, i));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Appends a result line in the criterion shim's JSON format, so
/// `bench_gate` can read hand-measured ids alongside shim-measured ones.
fn emit_result(id: &str, ns: &mut [f64], iters: u64) {
    ns.sort_by(|a, b| a.total_cmp(b));
    let (lo, median, hi) = (ns[0], ns[ns.len() / 2], ns[ns.len() - 1]);
    println!("{id:<44} time: [{lo:.2} ns {median:.2} ns {hi:.2} ns]");
    let dir = std::env::var("SVA_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            let mut cur = std::env::var("CARGO_MANIFEST_DIR")
                .map(std::path::PathBuf::from)
                .or_else(|_| std::env::current_dir())
                .unwrap_or_else(|_| std::path::PathBuf::from("."));
            loop {
                if cur.join("Cargo.lock").exists() {
                    break cur.join("target").join("sva-bench");
                }
                if !cur.pop() {
                    break std::path::PathBuf::from("target/sva-bench");
                }
            }
        });
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("checks_micro.json"))
    {
        let _ = writeln!(
            f,
            "{{\"bench\":\"checks_micro\",\"id\":\"{id}\",\"ns_low\":{lo:.1},\"ns_median\":{median:.1},\
             \"ns_high\":{hi:.1},\"iters_per_sample\":{iters},\"samples\":{}}}",
            ns.len()
        );
    }
}

/// The always-on flight recorder's tax on the repeat-hit check path
/// (DESIGN.md §4.7). `FlightRecorder` excludes the `Check` class from its
/// `WANTED` mask, so `repeat_flight` must price the same as `repeat_null`
/// — `bench_gate` pairs the two at ≤5%. A 5% bar on a ~7 ns site is far
/// below this runner's noise floor if the two sides differ in *anything*
/// but the tracer: separately allocated pools can land on unlucky
/// cache-aliasing addresses and one side then pays ~2x for the whole
/// process. So both sides drive the *same* pool and counter in
/// alternating slices within one harness — layout luck and machine-speed
/// drift apply to both equally and cancel. `repeat_ring` (the
/// full-firehose tracer on the identical site) stays on the shim as an
/// ungated contrast number.
fn flight(c: &mut Criterion) {
    const SLICE_ITERS: u64 = 200_000;
    const SAMPLES: usize = 61;
    let mut pool = pool_with_objects(1024, true);
    let mut null_tracer = NullTracer;
    let mut flight_tracer = FlightRecorder::default();
    let mut i = 0u64;
    // Warmup, alternating like the measurement will.
    for _ in 0..3 {
        flight_slice(&mut pool, &mut null_tracer, &mut i, SLICE_ITERS);
        flight_slice(&mut pool, &mut flight_tracer, &mut i, SLICE_ITERS);
    }
    let mut null_ns = Vec::with_capacity(SAMPLES);
    let mut flight_ns = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        null_ns.push(flight_slice(
            &mut pool,
            &mut null_tracer,
            &mut i,
            SLICE_ITERS,
        ));
        flight_ns.push(flight_slice(
            &mut pool,
            &mut flight_tracer,
            &mut i,
            SLICE_ITERS,
        ));
    }
    emit_result("rt/flight/repeat_null", &mut null_ns, SLICE_ITERS);
    emit_result("rt/flight/repeat_flight", &mut flight_ns, SLICE_ITERS);

    let mut g = c.benchmark_group("rt/flight");
    g.bench_function("repeat_ring", |b| {
        let mut p = pool_with_objects(1024, true);
        let mut t = RingTracer::default();
        let mut i = 0u64;
        b.iter(|| traced_check_step(&mut p, &mut t, &mut i));
    });
    g.finish();
}

/// The fused checked-load path on the real kernel (DESIGN.md §4.4): the
/// same pool-checked syscall (`sys_getrusage` dereferences user memory
/// through a metapool check) on the sva-safe kernel with the optimizing
/// tier off vs on. At opt 2 the hot checked loads dispatch as
/// `FusedGepChkLoad` triples; the delta is the dispatch overhead fusion
/// deletes. Reported for context — the cycle-exact accounting is gated
/// by `opt_equiv` and the nightly `--opt-compare` artifact.
fn fused_checked_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm/fusion");
    for (label, opt) in [("getrusage_unfused", 0u8), ("getrusage_fused", 2)] {
        g.bench_function(label, |b| {
            let mut vm = make_vm_cfg(VmConfig {
                kind: KernelKind::SvaSafe,
                opt_level: opt,
                ..Default::default()
            });
            boot_user(&mut vm, "user_hello", 0).unwrap();
            assert_eq!(vm.fused_chk_sites() > 0, opt == 2);
            b.iter(|| vm.call("sys_getrusage", &[USER_HEAP_BASE]));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    splay,
    fastpath,
    singleton,
    flight,
    fused_checked_load
);
criterion_main!(benches);
