//! Microbenchmarks of the safety substrate itself: splay-tree lookups
//! (the cost unit behind every bounds check) and metapool operations.
//! This is the ablation behind the paper's §7.1.3 "fat pointers instead of
//! splay lookups" optimization discussion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sva_rt::{MetaPool, SplayTree};

fn splay(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/splay");
    // Hot lookup: repeated hits on the same object (the common pattern the
    // splay tree optimizes for).
    g.bench_function("lookup_hot", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        b.iter(|| t.lookup(512 * 64 + 8));
    });
    // Cold lookups: uniformly spread accesses.
    g.bench_function("lookup_spread", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.lookup((x % 1024) * 64 + 8)
        });
    });
    g.bench_function("insert_remove", |b| {
        b.iter_batched(
            SplayTree::new,
            |mut t| {
                for i in 0..256u64 {
                    t.insert(i * 32, 32);
                }
                for i in 0..256u64 {
                    t.remove(i * 32);
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("rt/metapool");
    g.bench_function("bounds_check_hit", |b| {
        let mut p = MetaPool::new("bench", true, true, Some(64));
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.bounds_check(0x1800, 0x1801));
    });
    g.bench_function("ls_check_hit", |b| {
        let mut p = MetaPool::new("bench", false, true, None);
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.ls_check(0x1800));
    });
    g.finish();
}

/// Builds a pool with `n` registered 64-byte objects, 256 bytes apart.
fn pool_with_objects(n: u64, fast_path: bool) -> MetaPool {
    let mut p = MetaPool::new("bench", false, true, None);
    p.set_fast_path(fast_path);
    for i in 0..n {
        p.reg_obj(0x1_0000 + i * 0x100, 64).unwrap();
    }
    p
}

/// The fast path vs. the splay-only baseline (set_fast_path(false)) on the
/// two workload shapes that matter: repeated access to the same few hot
/// objects (the paper's locality argument — served by the MRU cache) and a
/// pseudo-random spread over many objects (served by the page index).
fn fastpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/fastpath");
    for (label, fast) in [("repeat_fast", true), ("repeat_baseline", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1024, fast);
            let mut i = 0u64;
            b.iter(|| {
                // Two hot objects, alternating: fits the 2-entry MRU.
                i = i.wrapping_add(1);
                let addr = 0x1_0000 + (i & 1) * 0x100 + 8;
                p.ls_check(addr)
            });
        });
    }
    for (label, fast) in [("spread_fast", true), ("spread_baseline", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1024, fast);
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = 0x1_0000 + (x % 1024) * 0x100 + 8;
                p.ls_check(addr)
            });
        });
    }
    g.finish();

    // One-shot layer breakdown on a mixed workload, so the bench output
    // documents where lookups resolve (cache / page index / tree).
    let mut p = pool_with_objects(1024, true);
    let mut x = 0u64;
    for i in 0..100_000u64 {
        // 75% hot-pair traffic, 25% spread.
        let addr = if i % 4 != 0 {
            0x1_0000 + (i & 1) * 0x100 + 8
        } else {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            0x1_0000 + (x % 1024) * 0x100 + 8
        };
        let _ = p.ls_check(addr);
    }
    let s = *p.stats();
    println!(
        "rt/fastpath breakdown (100k mixed lookups): cache_hits {} ({:.1}%), \
         page_hits {} ({:.1}%), tree_walks {} ({:.1}%)",
        s.cache_hits,
        100.0 * s.cache_hits as f64 / s.lookups() as f64,
        s.page_hits,
        100.0 * s.page_hits as f64 / s.lookups() as f64,
        s.tree_walks,
        100.0 * s.tree_walks as f64 / s.lookups() as f64,
    );
}

/// The singleton-pool elision (DESIGN.md §4.4): a pool holding exactly one
/// live object answers every lookup with a two-compare bounds test, ahead
/// of the MRU cache. `repeat_singleton` vs `repeat_mru` isolates what the
/// elision saves over the PR 1 fast path on the same one-object pool; the
/// nightly gate watches both repeat-hit medians.
fn singleton(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/singleton");
    for (label, on) in [("repeat_singleton", true), ("repeat_mru", false)] {
        g.bench_function(label, |b| {
            let mut p = pool_with_objects(1, true);
            p.set_singleton_path(on);
            let mut i = 0u64;
            b.iter(|| {
                // Walk offsets inside the lone 64-byte object.
                i = i.wrapping_add(1);
                p.ls_check(0x1_0000 + (i & 0x38))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, splay, fastpath, singleton);
criterion_main!(benches);
