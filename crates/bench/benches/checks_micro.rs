//! Microbenchmarks of the safety substrate itself: splay-tree lookups
//! (the cost unit behind every bounds check) and metapool operations.
//! This is the ablation behind the paper's §7.1.3 "fat pointers instead of
//! splay lookups" optimization discussion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sva_rt::{MetaPool, SplayTree};

fn splay(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt/splay");
    // Hot lookup: repeated hits on the same object (the common pattern the
    // splay tree optimizes for).
    g.bench_function("lookup_hot", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        b.iter(|| t.lookup(512 * 64 + 8));
    });
    // Cold lookups: uniformly spread accesses.
    g.bench_function("lookup_spread", |b| {
        let mut t = SplayTree::new();
        for i in 0..1024u64 {
            t.insert(i * 64, 64);
        }
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.lookup((x % 1024) * 64 + 8)
        });
    });
    g.bench_function("insert_remove", |b| {
        b.iter_batched(
            SplayTree::new,
            |mut t| {
                for i in 0..256u64 {
                    t.insert(i * 32, 32);
                }
                for i in 0..256u64 {
                    t.remove(i * 32);
                }
                t
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();

    let mut g = c.benchmark_group("rt/metapool");
    g.bench_function("bounds_check_hit", |b| {
        let mut p = MetaPool::new("bench", true, true, Some(64));
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.bounds_check(0x1800, 0x1801));
    });
    g.bench_function("ls_check_hit", |b| {
        let mut p = MetaPool::new("bench", false, true, None);
        p.reg_obj(0x1000, 4096).unwrap();
        b.iter(|| p.ls_check(0x1800));
    });
    g.finish();
}

criterion_group!(benches, splay);
criterion_main!(benches);
