//! Criterion wall-clock benches for the Table 8 bandwidth workloads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

use bench::{arg, run_workload};
use sva_vm::KernelKind;

fn bandwidth(c: &mut Criterion) {
    for (name, prog, size, iters) in [
        ("fileread_32k", "user_fileread_bw", 32 * 1024u64, 32u64),
        ("fileread_128k", "user_fileread_bw", 128 * 1024, 8),
        ("pipe_32k", "user_pipe_bw", 32 * 1024, 8),
        ("pipe_128k", "user_pipe_bw", 128 * 1024, 2),
    ] {
        let mut g = c.benchmark_group(format!("table8/{name}"));
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(3));
        g.throughput(Throughput::Bytes(size * iters));
        for kind in KernelKind::ALL {
            g.bench_function(kind.label(), |b| {
                b.iter(|| run_workload(kind, prog, arg(iters, size, 0)));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bandwidth);
criterion_main!(benches);
