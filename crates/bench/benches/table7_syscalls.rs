//! Criterion wall-clock benches for the Table 7 kernel-operation latencies.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use bench::{arg, run_workload};
use sva_vm::KernelKind;

fn syscalls(c: &mut Criterion) {
    let cases: [(&str, &str, u64); 5] = [
        ("getpid", "user_getpid_loop", arg(500, 0, 0)),
        ("open_close", "user_openclose_loop", arg(100, 0, 0)),
        ("pipe", "user_pipe_loop", arg(60, 0, 0)),
        ("fork", "user_fork_loop", arg(12, 0, 0)),
        ("fork_exec", "user_forkexec_loop", arg(12, 0, 0)),
    ];
    for (name, prog, a) in cases {
        let mut g = c.benchmark_group(format!("table7/{name}"));
        g.sample_size(10);
        g.measurement_time(Duration::from_secs(3));
        for kind in KernelKind::ALL {
            g.bench_function(kind.label(), |b| {
                b.iter(|| run_workload(kind, prog, a));
            });
        }
        g.finish();
    }
}

criterion_group!(benches, syscalls);
criterion_main!(benches);
