//! # SVA run-time: metapools and run-time safety checks
//!
//! This crate is the run-time half of the SVA safety strategy (paper
//! §4.3–§4.5 and Table 3). Each *metapool* — the run-time representation of
//! one points-to-graph partition — maintains a **splay tree** recording the
//! ranges of all registered objects. The checks the Secure Virtual Machine
//! performs against those trees are:
//!
//! * **bounds check** (`boundscheck`): an indexing result must stay inside
//!   the object containing the source pointer;
//! * **load-store check** (`lscheck`): a pointer loaded from or cast within
//!   a non-type-homogeneous pool must point into *some* registered object of
//!   the correct metapool;
//! * **indirect call check** (`funccheck`): the callee must be in the call
//!   graph's target set for the call site.
//!
//! Incomplete partitions get "reduced checks" (paper §4.5): load-store
//! checks are disabled and bounds checks only apply when the source object
//! is actually registered — the sole source of false negatives.
//!
//! The crate also implements the pool-allocator constraints of §4.4 via
//! [`pool::PagePolicy`]: a kernel pool may reuse memory internally but must
//! not release its pages to other metapools until the metapool dies.

pub mod check;
pub mod metapool;
pub mod pool;
pub mod shared;
pub mod splay;

pub use check::{CheckError, CheckKind, CheckStats};
pub use metapool::{MetaPool, MetaPoolId, MetaPoolTable, PoolImage, PoolSummary};
pub use shared::{PlaneLayer, PlaneReader, PlaneSnapshot, SharedMetaPlane};
pub use splay::SplayTree;
