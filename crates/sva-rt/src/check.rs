//! Check outcomes, violations and counters.

use std::fmt;

/// Which run-time check detected a violation (paper §4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// `boundscheck` — an indexing result escaped its source object.
    Bounds,
    /// `lscheck` — a load/store pointer did not hit a registered object.
    LoadStore,
    /// `funccheck` — an indirect call left the computed call graph.
    IndirectCall,
    /// `pchk.drop.obj` on a non-live object (double/illegal free, T5).
    IllegalFree,
    /// A registration conflicted with a live object.
    BadRegistration,
    /// Any check against a quarantined metapool: after a violation the
    /// pool is fenced off and further accesses fail fast until the
    /// kernel's recovery handler releases it (or the pool is poisoned).
    Quarantined,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Bounds => "bounds check",
            CheckKind::LoadStore => "load-store check",
            CheckKind::IndirectCall => "indirect call check",
            CheckKind::IllegalFree => "illegal free",
            CheckKind::BadRegistration => "bad registration",
            CheckKind::Quarantined => "quarantined pool",
        };
        f.write_str(s)
    }
}

/// A detected memory-safety violation.
///
/// This is what the SVM raises instead of letting the kernel corrupt
/// memory; kernel recovery policy is out of scope (paper §2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckError {
    /// The failing check.
    pub kind: CheckKind,
    /// The metapool involved.
    pub pool: String,
    /// The offending address.
    pub addr: u64,
    /// Additional context (source object bounds, target set id, ...).
    pub detail: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SVA {} violation in metapool {}: addr {:#x} ({})",
            self.kind, self.pool, self.addr, self.detail
        )
    }
}

impl std::error::Error for CheckError {}

/// Counters for the run-time checks, used by the benchmark harnesses to
/// report check volume alongside latency.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct CheckStats {
    /// `boundscheck` executions.
    pub bounds_checks: u64,
    /// `lscheck` executions.
    pub ls_checks: u64,
    /// `getbounds` executions.
    pub get_bounds: u64,
    /// Indirect call checks.
    pub func_checks: u64,
    /// Object registrations.
    pub registrations: u64,
    /// Object deregistrations.
    pub drops: u64,
    /// Checks skipped because the partition is incomplete ("reduced
    /// checks", the source of false negatives).
    pub reduced_skips: u64,
    /// Object lookups answered by the singleton fast path: the pool held
    /// exactly one live object, so two compares gave the full splay answer
    /// (hit or definitive miss) without touching any other layer.
    pub singleton_hits: u64,
    /// Object lookups answered by the per-pool MRU last-hit cache
    /// (fast-path layer 1).
    pub cache_hits: u64,
    /// Object lookups resolved by the page-granular interval index,
    /// including definitive misses it can prove (fast-path layer 2).
    pub page_hits: u64,
    /// Object lookups that fell through to the splay tree (layer 3, the
    /// only layer that existed before the fast path).
    pub tree_walks: u64,
    /// Checks rejected immediately because the pool was quarantined
    /// after a violation (no lookup is performed for these).
    pub quarantine_rejects: u64,
}

impl CheckStats {
    /// Total number of check executions.
    pub fn total_checks(&self) -> u64 {
        self.bounds_checks + self.ls_checks + self.get_bounds + self.func_checks
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &CheckStats) {
        self.bounds_checks += other.bounds_checks;
        self.ls_checks += other.ls_checks;
        self.get_bounds += other.get_bounds;
        self.func_checks += other.func_checks;
        self.registrations += other.registrations;
        self.drops += other.drops;
        self.reduced_skips += other.reduced_skips;
        self.singleton_hits += other.singleton_hits;
        self.cache_hits += other.cache_hits;
        self.page_hits += other.page_hits;
        self.tree_walks += other.tree_walks;
        self.quarantine_rejects += other.quarantine_rejects;
    }

    /// Object lookups performed by any layer (the denominator for the
    /// per-layer hit rates).
    pub fn lookups(&self) -> u64 {
        self.singleton_hits + self.cache_hits + self.page_hits + self.tree_walks
    }

    /// Folds every counter into a metrics registry under `check.`-prefixed
    /// names. Uses `set_counter` semantics: the stats block is already a
    /// running total, adding would double-count across snapshots.
    pub fn fold_into(&self, metrics: &mut sva_trace::MetricsRegistry) {
        metrics.set_counter("check.bounds_checks", self.bounds_checks);
        metrics.set_counter("check.ls_checks", self.ls_checks);
        metrics.set_counter("check.get_bounds", self.get_bounds);
        metrics.set_counter("check.func_checks", self.func_checks);
        metrics.set_counter("check.registrations", self.registrations);
        metrics.set_counter("check.drops", self.drops);
        metrics.set_counter("check.reduced_skips", self.reduced_skips);
        metrics.set_counter("check.lookup.singleton_hits", self.singleton_hits);
        metrics.set_counter("check.lookup.cache_hits", self.cache_hits);
        metrics.set_counter("check.lookup.page_hits", self.page_hits);
        metrics.set_counter("check.lookup.tree_walks", self.tree_walks);
        metrics.set_counter("check.quarantine_rejects", self.quarantine_rejects);
    }

    /// Number of counters in the block — the width of [`CheckStats::to_words`].
    pub const WORDS: usize = 12;

    /// The counters as a fixed word array, in declaration order (binary
    /// serialization for snapshot images).
    pub fn to_words(&self) -> [u64; Self::WORDS] {
        [
            self.bounds_checks,
            self.ls_checks,
            self.get_bounds,
            self.func_checks,
            self.registrations,
            self.drops,
            self.reduced_skips,
            self.singleton_hits,
            self.cache_hits,
            self.page_hits,
            self.tree_walks,
            self.quarantine_rejects,
        ]
    }

    /// Rebuilds a stats block from [`CheckStats::to_words`] output.
    pub fn from_words(w: [u64; Self::WORDS]) -> CheckStats {
        CheckStats {
            bounds_checks: w[0],
            ls_checks: w[1],
            get_bounds: w[2],
            func_checks: w[3],
            registrations: w[4],
            drops: w[5],
            reduced_skips: w[6],
            singleton_hits: w[7],
            cache_hits: w[8],
            page_hits: w[9],
            tree_walks: w[10],
            quarantine_rejects: w[11],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CheckError {
            kind: CheckKind::Bounds,
            pool: "MP3".into(),
            addr: 0x1000,
            detail: "object [0xf00, 0xfff]".into(),
        };
        let s = e.to_string();
        assert!(s.contains("bounds check"));
        assert!(s.contains("MP3"));
        assert!(s.contains("0x1000"));
    }

    #[test]
    fn stats_merge_and_total() {
        let mut a = CheckStats {
            bounds_checks: 1,
            ls_checks: 2,
            ..Default::default()
        };
        let b = CheckStats {
            bounds_checks: 10,
            func_checks: 5,
            reduced_skips: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.bounds_checks, 11);
        assert_eq!(a.total_checks(), 11 + 2 + 5);
        assert_eq!(a.reduced_skips, 7);
    }
}
