//! Metapools: the run-time representation of points-to partitions.
//!
//! A metapool (paper §4.3) is "a set of data objects that map to the same
//! points-to node and so must be treated as one logical pool by the safety
//! checking algorithm". At run time it owns a splay tree of registered
//! object ranges and implements the checks of §4.5, honouring the
//! completeness-based "reduced checks" rule.

use std::collections::HashMap;
use std::sync::Arc;

use sva_trace::LookupLayer;

use crate::check::{CheckError, CheckKind, CheckStats};
use crate::shared::{PlaneLayer, PlaneReader, SharedMetaPlane};
use crate::splay::SplayTree;

/// Identifier of a metapool within a [`MetaPoolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MetaPoolId(pub u32);

/// Page granularity of the interval index (4 KiB, matching the VM).
const PAGE_SHIFT: u64 = 12;

/// Ranges spanning more than this many pages stay out of the page index
/// (a huge object would otherwise fill thousands of buckets); they are
/// tracked in an `unindexed` count instead, which disables the index's
/// ability to prove definitive misses while any such object is live.
const MAX_INDEXED_PAGES: u64 = 64;

/// After this many consecutive lookups with no intervening registration
/// or drop, the pool is considered read-mostly and splay lookups stop
/// restructuring the tree (they use [`SplayTree::find`] instead).
const READ_MOSTLY_THRESHOLD: u32 = 32;

/// One metapool with its object registry.
#[derive(Clone, Debug)]
pub struct MetaPool {
    /// Symbolic name (matches the bytecode annotation, e.g. `"MP4"`).
    pub name: String,
    /// Whether the partition is type-homogeneous.
    pub type_homogeneous: bool,
    /// Whether the partition is complete. Incomplete pools run reduced
    /// checks (paper §4.5).
    pub complete: bool,
    /// Element size for TH pools (alignment constraint, paper §4.4).
    pub elem_size: Option<u64>,
    objects: SplayTree,
    stats: CheckStats,
    /// Fast-path toggle (ablation). When off, every lookup is a splay walk
    /// — the pre-cache baseline.
    fast_path: bool,
    /// Layer 0: when the registry holds exactly one live object, its range.
    /// Two compares then answer any lookup — hit *and* definitive miss —
    /// because no other range exists. Maintained on every mutation
    /// (registration, drop, clear, injected corruption) regardless of the
    /// toggles, so flipping `singleton_path` never needs a rebuild.
    singleton: Option<(u64, u64)>,
    /// Singleton fast-path toggle (ablation), independent of `fast_path`.
    singleton_path: bool,
    /// Layer 1: MRU last-hit cache, most recent first. Entries are live
    /// `(start, end)` ranges and must be invalidated on drop/clear.
    mru: [Option<(u64, u64)>; 2],
    /// Layer 2: page number (`addr >> 12`) → live ranges touching that
    /// page. Only ranges spanning ≤ [`MAX_INDEXED_PAGES`] pages appear.
    page_index: HashMap<u64, Vec<(u64, u64)>>,
    /// Live ranges too large for the page index. While nonzero, a page
    /// miss is not a definitive miss and must fall through to the tree.
    unindexed: usize,
    /// Consecutive lookups since the last mutation (read-mostly detector).
    quiet_lookups: u32,
    /// Which layer answered the most recent lookup. A single byte store on
    /// the lookup path; read by tracing instrumentation, never by checks.
    last_layer: LookupLayer,
    /// Violation containment: while quarantined, every check fails fast
    /// with [`CheckKind::Quarantined`] (no lookup is performed). The
    /// registry itself keeps working so registrations/drops stay coherent
    /// across the quarantine window.
    quarantined: bool,
    /// Permanent quarantine: set once the violation count reaches the
    /// budget. A poisoned pool can never be released.
    poisoned: bool,
    /// Safety violations attributed to this pool so far.
    violations: u32,
    /// Violations attributed within the current recovery-domain scope
    /// (DESIGN.md §4.5). The budget is enforced against this counter;
    /// [`MetaPool::end_scope`] resets it when the owning domain pops, so a
    /// pool only poisons when one domain instance exhausts the budget.
    /// Flat (boot-only) recovery never ends a scope, so the counter equals
    /// `violations` there and the pre-nesting semantics are unchanged.
    scope_violations: u32,
    /// Fault injection: the next N registrations fail as if the
    /// allocator ran out of memory.
    forced_reg_failures: u32,
    /// Recovery-domain subsystem id the poisoning violation was
    /// attributed to (0 = none / unattributed). Set by the VM when the
    /// pool crosses its budget inside a domain; `sva.recover.repair`
    /// selects pools by this id (DESIGN.md §4.8).
    poisoned_by: u64,
    /// Times this pool has been repaired (un-poisoned and reinitialized)
    /// by `sva.recover.repair` — the pool's repair history, surfaced in
    /// crash bundles.
    repairs: u32,
    /// SMP: attachment to a shared, epoch-published metadata plane
    /// (DESIGN.md §4.9). When set, the object registry lives in the plane
    /// and `objects`/`page_index`/`singleton` stay empty: registrations
    /// and drops publish plane epochs, lookups answer from the plane
    /// snapshot through the epoch-tagged MRU below. Check semantics,
    /// counters and quarantine state remain per-vCPU.
    shared: Option<SharedBinding>,
}

/// One vCPU's attachment of a pool to a [`SharedMetaPlane`].
#[derive(Clone, Debug)]
pub struct SharedBinding {
    /// Cached-snapshot read handle (steady state: one `Acquire` load).
    reader: PlaneReader,
    /// This pool's slot in the plane.
    idx: u32,
    /// Epoch-tagged MRU, most recent first: `(publish_epoch, start, end)`.
    /// An entry is live only while the plane epoch still equals its tag,
    /// so a concurrent drop (which publishes a new epoch) kills every
    /// cached line on all vCPUs at once — no cross-CPU invalidation
    /// traffic, no stale use-after-free window.
    mru: [Option<(u64, u64, u64)>; 2],
}

impl MetaPool {
    /// Creates an empty metapool.
    pub fn new(name: &str, type_homogeneous: bool, complete: bool, elem_size: Option<u64>) -> Self {
        MetaPool {
            name: name.to_string(),
            type_homogeneous,
            complete,
            elem_size,
            objects: SplayTree::new(),
            stats: CheckStats::default(),
            fast_path: true,
            singleton: None,
            singleton_path: true,
            mru: [None; 2],
            page_index: HashMap::new(),
            unindexed: 0,
            quiet_lookups: 0,
            last_layer: LookupLayer::None,
            quarantined: false,
            poisoned: false,
            violations: 0,
            scope_violations: 0,
            forced_reg_failures: 0,
            poisoned_by: 0,
            repairs: 0,
            shared: None,
        }
    }

    /// Attaches this pool to slot `idx` of a shared metadata plane
    /// (SMP machines; DESIGN.md §4.9). The plane slot must already hold
    /// this pool's live ranges (see [`MetaPoolTable::publish_to_plane`]);
    /// the private registry and its caches are dropped — every
    /// registration, drop and lookup now goes through the plane.
    pub fn bind_shared(&mut self, plane: Arc<SharedMetaPlane>, idx: u32) {
        self.objects.clear();
        self.singleton = None;
        self.mru = [None; 2];
        self.page_index.clear();
        self.unindexed = 0;
        self.quiet_lookups = 0;
        self.shared = Some(SharedBinding {
            reader: PlaneReader::new(plane),
            idx,
            mru: [None; 2],
        });
    }

    /// Whether this pool is bound to a shared metadata plane.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The shared-plane lookup: epoch-tagged MRU, then the published
    /// snapshot (page index or interval walk). Counter discipline matches
    /// the private path — exactly one of `cache_hits` / `page_hits` /
    /// `tree_walks` per call; the singleton layer does not exist here
    /// (a shared pool's membership can change under any vCPU's feet).
    fn shared_lookup(&mut self, addr: u64) -> Option<(u64, u64)> {
        let MetaPool {
            shared,
            stats,
            last_layer,
            ..
        } = self;
        let b = shared.as_mut().expect("shared_lookup on unbound pool");
        // One Acquire load validates the MRU: a tag from any older epoch
        // is dead because some register/drop published since it was
        // filled — exactly the window where a cached range could be stale.
        let cur = b.reader.plane().epoch();
        for i in 0..b.mru.len() {
            if let Some((epoch, start, end)) = b.mru[i] {
                if epoch == cur && start <= addr && addr < end {
                    stats.cache_hits += 1;
                    *last_layer = LookupLayer::Cache;
                    if i != 0 {
                        b.mru.swap(0, 1);
                    }
                    return Some((start, end));
                }
            }
        }
        let (hit, layer) = b.reader.lookup(b.idx, addr);
        match layer {
            PlaneLayer::Page => {
                stats.page_hits += 1;
                *last_layer = LookupLayer::Page;
            }
            PlaneLayer::Walk => {
                stats.tree_walks += 1;
                *last_layer = LookupLayer::Tree;
            }
        }
        if let Some((start, end)) = hit {
            let tagged = (b.reader.pinned_epoch(), start, end);
            if b.mru[0] != Some(tagged) {
                b.mru[1] = b.mru[0];
                b.mru[0] = Some(tagged);
            }
        }
        hit
    }

    /// Whether the layered fast path is active.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables the lookup fast path (the benchmark ablation
    /// flag). Disabling drops the caches so every lookup becomes a splay
    /// walk; re-enabling rebuilds the page index from the live tree.
    pub fn set_fast_path(&mut self, enabled: bool) {
        if self.fast_path == enabled {
            return;
        }
        self.fast_path = enabled;
        self.mru = [None; 2];
        self.page_index.clear();
        self.unindexed = 0;
        self.quiet_lookups = 0;
        if enabled {
            for (start, end) in self.objects.iter_ranges() {
                self.index_insert(start, end);
            }
        }
    }

    /// Whether the singleton fast path is active.
    pub fn singleton_path(&self) -> bool {
        self.singleton_path
    }

    /// Enables or disables the singleton fast path (ablation flag). The
    /// cached range is maintained either way, so this is a pure toggle.
    pub fn set_singleton_path(&mut self, enabled: bool) {
        self.singleton_path = enabled;
    }

    /// Re-derives the singleton range from the registry. Called after every
    /// mutation; `only_range` is O(1) so this never walks the tree.
    fn update_singleton(&mut self) {
        self.singleton = self.objects.only_range();
    }

    fn span_pages(start: u64, end: u64) -> u64 {
        ((end - 1) >> PAGE_SHIFT) - (start >> PAGE_SHIFT) + 1
    }

    fn index_insert(&mut self, start: u64, end: u64) {
        if Self::span_pages(start, end) > MAX_INDEXED_PAGES {
            self.unindexed += 1;
            return;
        }
        for page in (start >> PAGE_SHIFT)..=((end - 1) >> PAGE_SHIFT) {
            self.page_index.entry(page).or_default().push((start, end));
        }
    }

    fn index_remove(&mut self, start: u64, end: u64) {
        if Self::span_pages(start, end) > MAX_INDEXED_PAGES {
            self.unindexed -= 1;
            return;
        }
        for page in (start >> PAGE_SHIFT)..=((end - 1) >> PAGE_SHIFT) {
            if let Some(v) = self.page_index.get_mut(&page) {
                v.retain(|&r| r != (start, end));
                if v.is_empty() {
                    self.page_index.remove(&page);
                }
            }
        }
    }

    /// Records a mutation: invalidates read-mostly mode and, when `hit` is
    /// a dropped range, purges it from the MRU cache.
    fn note_mutation(&mut self, dropped: Option<(u64, u64)>) {
        self.quiet_lookups = 0;
        if let Some(range) = dropped {
            for slot in &mut self.mru {
                if *slot == Some(range) {
                    *slot = None;
                }
            }
        }
    }

    /// Remembers `range` as the most recent hit (layer-1 cache fill).
    fn remember(&mut self, range: (u64, u64)) {
        if self.mru[0] != Some(range) {
            self.mru[1] = self.mru[0];
            self.mru[0] = Some(range);
        }
    }

    /// The layered object lookup behind every check: MRU cache, then page
    /// index, then splay tree. Exactly one of `cache_hits` / `page_hits` /
    /// `tree_walks` is incremented per call.
    fn lookup_obj(&mut self, addr: u64) -> Option<(u64, u64)> {
        if self.shared.is_some() {
            return self.shared_lookup(addr);
        }
        // Layer 0: singleton pool. With exactly one live range, two
        // compares answer both outcomes — containment is a hit, and a miss
        // is *definitive* because no other object can contain `addr`.
        if self.singleton_path {
            if let Some((start, end)) = self.singleton {
                self.stats.singleton_hits += 1;
                self.last_layer = LookupLayer::Singleton;
                self.quiet_lookups = self.quiet_lookups.saturating_add(1);
                return if start <= addr && addr < end {
                    Some((start, end))
                } else {
                    None
                };
            }
        }
        if !self.fast_path {
            self.stats.tree_walks += 1;
            self.last_layer = LookupLayer::Tree;
            return self.objects.lookup(addr);
        }
        // Layer 1: MRU last-hit cache.
        for i in 0..self.mru.len() {
            if let Some((start, end)) = self.mru[i] {
                if start <= addr && addr < end {
                    self.stats.cache_hits += 1;
                    self.last_layer = LookupLayer::Cache;
                    if i != 0 {
                        self.mru.swap(0, 1);
                    }
                    self.quiet_lookups = self.quiet_lookups.saturating_add(1);
                    return Some((start, end));
                }
            }
        }
        // Layer 2: page-granular interval index.
        let page = addr >> PAGE_SHIFT;
        let mut hit = None;
        if let Some(candidates) = self.page_index.get(&page) {
            hit = candidates
                .iter()
                .copied()
                .find(|&(start, end)| start <= addr && addr < end);
        }
        let definitive = hit.is_some() || self.unindexed == 0;
        if definitive {
            // Either the index produced the object, or every live range is
            // indexed and none on this page contains `addr` — a definitive
            // miss, also answered without touching the tree.
            self.stats.page_hits += 1;
            self.last_layer = LookupLayer::Page;
            self.quiet_lookups = self.quiet_lookups.saturating_add(1);
            if let Some(range) = hit {
                self.remember(range);
            }
            return hit;
        }
        // Layer 3: splay tree (only unindexed huge objects remain).
        self.stats.tree_walks += 1;
        self.last_layer = LookupLayer::Tree;
        let found = if self.quiet_lookups >= READ_MOSTLY_THRESHOLD {
            self.objects.find(addr)
        } else {
            self.objects.lookup(addr)
        };
        self.quiet_lookups = self.quiet_lookups.saturating_add(1);
        if let Some(range) = found {
            self.remember(range);
        }
        found
    }

    /// Which lookup layer answered the most recent object lookup
    /// ([`LookupLayer::None`] before the first lookup). Tracing reads this
    /// after a check to attribute the check to a layer.
    pub fn last_lookup_layer(&self) -> LookupLayer {
        self.last_layer
    }

    /// Number of live registered objects. For a shared-bound pool this
    /// reads the plane's current snapshot (cold path).
    pub fn live_objects(&self) -> usize {
        match &self.shared {
            Some(b) => b.reader.plane().snapshot().live_objects(b.idx),
            None => self.objects.len(),
        }
    }

    /// Read-only access to the counters.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Resets the counters (benchmark runs).
    pub fn reset_stats(&mut self) {
        self.stats = CheckStats::default();
    }

    /// Whether the pool is currently quarantined (checks fail fast).
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Whether the pool is permanently poisoned.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Safety violations attributed to this pool so far.
    pub fn violations(&self) -> u32 {
        self.violations
    }

    /// Violations attributed within the current recovery-domain scope.
    pub fn scope_violations(&self) -> u32 {
        self.scope_violations
    }

    /// Records a safety violation against this pool: the pool is
    /// quarantined, and once the violation count *within the current
    /// domain scope* reaches `budget` it is permanently poisoned. Returns
    /// `true` if the pool is now poisoned.
    pub fn note_violation(&mut self, budget: u32) -> bool {
        self.violations = self.violations.saturating_add(1);
        self.scope_violations = self.scope_violations.saturating_add(1);
        self.quarantined = true;
        if self.scope_violations >= budget {
            self.poisoned = true;
        }
        self.poisoned
    }

    /// Lifts the quarantine so checks run again. Poisoned pools stay
    /// fenced off; returns whether the release took effect.
    pub fn release_quarantine(&mut self) -> bool {
        if self.poisoned {
            return false;
        }
        self.quarantined = false;
        true
    }

    /// Recovery-domain subsystem id the poisoning violation was
    /// attributed to (0 = none).
    pub fn poisoned_by(&self) -> u64 {
        self.poisoned_by
    }

    /// Attributes this pool's poison to recovery-domain subsystem
    /// `subsys`. Only the first attribution sticks: the subsystem whose
    /// domain crossed the budget owns the repair.
    pub fn attribute_poison(&mut self, subsys: u64) {
        if self.poisoned && self.poisoned_by == 0 {
            self.poisoned_by = subsys;
        }
    }

    /// Times this pool has been repaired by `sva.recover.repair`.
    pub fn repairs(&self) -> u32 {
        self.repairs
    }

    /// Fault injection / test hook: poisons the pool outright and
    /// attributes the poison to `subsys`, as if a domain owned by that
    /// subsystem had exhausted the violation budget.
    pub fn force_poison(&mut self, subsys: u64) {
        self.violations = self.violations.saturating_add(1);
        self.scope_violations = self.scope_violations.saturating_add(1);
        self.quarantined = true;
        self.poisoned = true;
        self.attribute_poison(subsys);
    }

    /// `sva.recover.repair` (DESIGN.md §4.8): tears down and
    /// reinitializes a poisoned pool. The poison, quarantine, scoped
    /// violation budget and subsystem attribution all clear, and the
    /// layered lookup structures are rebuilt from the live registry —
    /// exactly the state a freshly initialized pool would reach after
    /// replaying the registrations, so post-repair checks are coherent.
    /// The lifetime violation count is kept as history. Returns `false`
    /// (and does nothing) if the pool was not poisoned.
    pub fn repair(&mut self) -> bool {
        if !self.poisoned {
            return false;
        }
        self.poisoned = false;
        self.quarantined = false;
        self.scope_violations = 0;
        self.poisoned_by = 0;
        self.repairs = self.repairs.saturating_add(1);
        // Reinitialize the lookup layers from the registry (same rebuild
        // as the fast-path toggle): caches drop, index and singleton are
        // re-derived from live ranges.
        if let Some(b) = &mut self.shared {
            b.mru = [None; 2];
        }
        self.mru = [None; 2];
        self.page_index.clear();
        self.unindexed = 0;
        self.quiet_lookups = 0;
        if self.fast_path {
            for (start, end) in self.objects.iter_ranges() {
                self.index_insert(start, end);
            }
        }
        self.update_singleton();
        true
    }

    /// Ends the current recovery-domain scope (DESIGN.md §4.5): the
    /// scoped violation count resets and the quarantine is lifted, so the
    /// pool starts the next domain with a fresh budget. Poisoned pools
    /// stay fenced off permanently; returns whether the pool is usable
    /// again.
    pub fn end_scope(&mut self) -> bool {
        self.scope_violations = 0;
        self.release_quarantine()
    }

    /// Fault injection: makes the next `n` registrations fail as if the
    /// underlying allocator were out of memory.
    pub fn inject_reg_failures(&mut self, n: u32) {
        self.forced_reg_failures = self.forced_reg_failures.saturating_add(n);
    }

    /// Fault injection: corrupts the pool metadata by deregistering one
    /// live object (chosen by `seed`) and re-registering only its first
    /// half — pointers into the tail become wild. All cache layers are
    /// invalidated like a real drop so the corruption is coherent.
    /// Returns `false` if the pool had no live objects to corrupt.
    pub fn inject_corrupt_metadata(&mut self, seed: u64) -> bool {
        if let Some(b) = &mut self.shared {
            b.mru = [None; 2];
            return b.reader.plane().corrupt(b.idx, seed);
        }
        let ranges = self.objects.iter_ranges();
        if ranges.is_empty() {
            return false;
        }
        let (start, end) = ranges[(seed as usize) % ranges.len()];
        self.objects.remove(start);
        if self.fast_path {
            self.note_mutation(Some((start, end)));
            self.index_remove(start, end);
        }
        let len = end - start;
        if len > 1 && self.objects.insert(start, len / 2) && self.fast_path {
            self.note_mutation(None);
            self.index_insert(start, start + len / 2);
        }
        self.update_singleton();
        true
    }

    /// The fail-fast rejection every check returns while quarantined.
    fn quarantine_reject(&mut self, addr: u64) -> CheckError {
        self.stats.quarantine_rejects += 1;
        let detail = if self.poisoned {
            "pool poisoned after repeated violations"
        } else {
            "pool quarantined after a violation"
        };
        self.err(CheckKind::Quarantined, addr, detail)
    }

    fn err(&self, kind: CheckKind, addr: u64, detail: impl Into<String>) -> CheckError {
        CheckError {
            kind,
            pool: self.name.clone(),
            addr,
            detail: detail.into(),
        }
    }

    /// `pchk.reg.obj`: registers `[addr, addr + len)`.
    ///
    /// Registering an overlapping range is a [`CheckKind::BadRegistration`]
    /// error — it would mean the kernel allocator handed out overlapping
    /// objects or the compiler mis-sized a registration.
    pub fn reg_obj(&mut self, addr: u64, len: u64) -> Result<(), CheckError> {
        self.stats.registrations += 1;
        if self.forced_reg_failures > 0 {
            self.forced_reg_failures -= 1;
            return Err(self.err(
                CheckKind::BadRegistration,
                addr,
                "injected allocation failure",
            ));
        }
        // Zero-sized allocations register a 1-byte placeholder so that the
        // pointer identity stays checkable.
        let len = len.max(1);
        if let Some(b) = &self.shared {
            return match b.reader.plane().register(b.idx, addr, len) {
                Ok(()) => Ok(()),
                Err(e) => Err(self.err(e.kind, e.addr, e.detail)),
            };
        }
        if !self.objects.insert(addr, len) {
            return Err(self.err(
                CheckKind::BadRegistration,
                addr,
                format!("overlapping registration of {len} bytes"),
            ));
        }
        if self.fast_path {
            self.note_mutation(None);
            self.index_insert(addr, addr + len);
        }
        self.update_singleton();
        Ok(())
    }

    /// `pchk.drop.obj`: deregisters the object starting at `addr`.
    ///
    /// Dropping a non-live object or a pointer not at the start of an
    /// object is an illegal free (guarantee T5).
    pub fn drop_obj(&mut self, addr: u64) -> Result<(), CheckError> {
        self.stats.drops += 1;
        if let Some(b) = &self.shared {
            let (plane, idx) = (b.reader.plane().clone(), b.idx);
            return match plane.drop_obj(idx, addr) {
                Ok((start, end)) => {
                    // The epoch bump already killed every vCPU's MRU tags;
                    // purging our own slots just keeps them tidy.
                    if let Some(b) = &mut self.shared {
                        for slot in &mut b.mru {
                            if matches!(slot, Some((_, s, e)) if *s == start && *e == end) {
                                *slot = None;
                            }
                        }
                    }
                    Ok(())
                }
                Err(e) => Err(self.err(e.kind, e.addr, e.detail)),
            };
        }
        match self.objects.remove(addr) {
            Some((start, end)) => {
                if self.fast_path {
                    // A freed object must never be served from the caches:
                    // that would reintroduce exactly the use-after-free class
                    // the checks exist to catch.
                    self.note_mutation(Some((start, end)));
                    self.index_remove(start, end);
                }
                self.update_singleton();
                Ok(())
            }
            None => Err(self.err(
                CheckKind::IllegalFree,
                addr,
                "object not live at this address",
            )),
        }
    }

    /// `getbounds`: bounds of the object containing `addr`, if registered.
    pub fn get_bounds(&mut self, addr: u64) -> Option<(u64, u64)> {
        self.stats.get_bounds += 1;
        if self.quarantined {
            self.stats.quarantine_rejects += 1;
            return None;
        }
        self.lookup_obj(addr)
    }

    /// `boundscheck`: verifies that `derived` stays within the object
    /// containing `src` (paper §4.5 check 1).
    ///
    /// For incomplete pools this is a *reduced* check: if `src` hits no
    /// registered object nothing can be said and the check passes (counted
    /// in [`CheckStats::reduced_skips`]).
    ///
    /// `derived == end` (one-past-the-end) is accepted, matching C pointer
    /// arithmetic rules; dereference would still be caught because loads use
    /// the same object lookup.
    pub fn bounds_check(&mut self, src: u64, derived: u64) -> Result<(), CheckError> {
        self.stats.bounds_checks += 1;
        if self.quarantined {
            return Err(self.quarantine_reject(derived));
        }
        match self.lookup_obj(src) {
            Some((start, end)) => {
                if derived >= start && derived <= end {
                    Ok(())
                } else {
                    Err(self.err(
                        CheckKind::Bounds,
                        derived,
                        format!("derived from {src:#x}, object [{start:#x}, {end:#x})"),
                    ))
                }
            }
            None => {
                if self.complete {
                    // In a complete pool every legal object is registered, so
                    // an unknown source pointer is itself a violation.
                    Err(self.err(CheckKind::Bounds, src, "source pointer hits no object"))
                } else {
                    // Reduced check: unregistered (external) object.
                    self.stats.reduced_skips += 1;
                    Ok(())
                }
            }
        }
    }

    /// Bounds check against statically known bounds (`pchk.bounds.range`),
    /// used when the verifier determined the object extent at compile time
    /// (paper Fig. 2 line 19).
    pub fn bounds_check_range(
        &mut self,
        start: u64,
        derived: u64,
        end: u64,
    ) -> Result<(), CheckError> {
        self.stats.bounds_checks += 1;
        if self.quarantined {
            return Err(self.quarantine_reject(derived));
        }
        if derived >= start && derived <= end {
            Ok(())
        } else {
            Err(self.err(
                CheckKind::Bounds,
                derived,
                format!("static object [{start:#x}, {end:#x})"),
            ))
        }
    }

    /// `lscheck`: verifies a load/store pointer targets a registered object
    /// (paper §4.5 check 2). Only required for non-TH pools; disabled
    /// ("useless", paper) on incomplete pools.
    pub fn ls_check(&mut self, addr: u64) -> Result<(), CheckError> {
        self.stats.ls_checks += 1;
        if self.quarantined {
            return Err(self.quarantine_reject(addr));
        }
        if !self.complete {
            self.stats.reduced_skips += 1;
            return Ok(());
        }
        match self.lookup_obj(addr) {
            Some(_) => Ok(()),
            None => Err(self.err(CheckKind::LoadStore, addr, "no registered object")),
        }
    }

    /// Drops every remaining object (pool destruction: "deregister all
    /// remaining objects that are in a kernel pool when a pool is
    /// destroyed", paper §4.3).
    pub fn clear(&mut self) {
        if let Some(b) = &mut self.shared {
            b.mru = [None; 2];
            b.reader.plane().clear_pool(b.idx);
            return;
        }
        self.objects.clear();
        self.singleton = None;
        self.mru = [None; 2];
        self.page_index.clear();
        self.unindexed = 0;
        self.quiet_lookups = 0;
    }

    /// All live ranges, ascending (diagnostics). For a shared-bound pool
    /// this reads the plane's current snapshot (cold path: takes the
    /// plane lock).
    pub fn live_ranges(&self) -> Vec<(u64, u64)> {
        match &self.shared {
            Some(b) => b.reader.plane().snapshot().ranges(b.idx),
            None => self.objects.iter_ranges(),
        }
    }

    /// Exports the pool's mutable state as a plain-data image for a
    /// machine snapshot. Live ranges are exported sorted; the splay tree's
    /// shape and the page-index bucket order are *not* captured — they are
    /// rebuilt deterministically on restore, which is observationally
    /// equivalent because ranges are disjoint (every lookup answer and
    /// every counter increment is independent of tree shape).
    pub fn export_image(&self) -> PoolImage {
        PoolImage {
            name: self.name.clone(),
            ranges: self.live_ranges(),
            stats: self.stats.to_words(),
            fast_path: self.fast_path,
            singleton_path: self.singleton_path,
            mru: self.mru,
            quiet_lookups: self.quiet_lookups,
            last_layer: self.last_layer.to_code(),
            quarantined: self.quarantined,
            poisoned: self.poisoned,
            violations: self.violations,
            scope_violations: self.scope_violations,
            forced_reg_failures: self.forced_reg_failures,
            poisoned_by: self.poisoned_by,
            repairs: self.repairs,
        }
    }

    /// Restores the pool's mutable state from [`MetaPool::export_image`]
    /// output, rebuilding the derived lookup structures (splay tree, page
    /// index, singleton cache) from the sorted range list. The pool's
    /// identity fields (name, homogeneity, completeness) are *not* taken
    /// from the image — they come from the bytecode annotations, which the
    /// caller has already matched; a name mismatch is rejected as a
    /// cross-wired image.
    pub fn restore_image(&mut self, img: &PoolImage) -> Result<(), String> {
        if img.name != self.name {
            return Err(format!(
                "pool image \"{}\" restored into pool \"{}\"",
                img.name, self.name
            ));
        }
        let last_layer = LookupLayer::from_code(img.last_layer).ok_or_else(|| {
            format!(
                "pool {}: bad lookup-layer code {}",
                self.name, img.last_layer
            )
        })?;
        self.objects.clear();
        self.page_index.clear();
        self.unindexed = 0;
        self.fast_path = img.fast_path;
        self.singleton_path = img.singleton_path;
        for &(start, end) in &img.ranges {
            if end <= start || !self.objects.insert(start, end - start) {
                return Err(format!(
                    "pool {}: bad range [{start:#x}, {end:#x}) in image",
                    self.name
                ));
            }
            if self.fast_path {
                self.index_insert(start, end);
            }
        }
        self.update_singleton();
        self.mru = img.mru;
        self.quiet_lookups = img.quiet_lookups;
        self.last_layer = last_layer;
        self.quarantined = img.quarantined;
        self.poisoned = img.poisoned;
        self.violations = img.violations;
        self.scope_violations = img.scope_violations;
        self.forced_reg_failures = img.forced_reg_failures;
        self.poisoned_by = img.poisoned_by;
        self.repairs = img.repairs;
        self.stats = CheckStats::from_words(img.stats);
        Ok(())
    }
}

/// Plain-data image of one metapool's mutable state (machine snapshots,
/// DESIGN.md §4.6). Holds exactly what cannot be rebuilt from the sorted
/// range list: the MRU cache contents, the read-mostly counter, the
/// violation/quarantine state and the check counters. `last_layer` is a
/// [`LookupLayer::to_code`] byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolImage {
    /// Pool name, checked against the restore target.
    pub name: String,
    /// Live object ranges `(start, end)`, ascending.
    pub ranges: Vec<(u64, u64)>,
    /// [`CheckStats::to_words`] of the pool counters.
    pub stats: [u64; CheckStats::WORDS],
    /// Layered fast-path toggle.
    pub fast_path: bool,
    /// Singleton fast-path toggle.
    pub singleton_path: bool,
    /// MRU last-hit cache, most recent first.
    pub mru: [Option<(u64, u64)>; 2],
    /// Consecutive lookups since the last mutation.
    pub quiet_lookups: u32,
    /// [`LookupLayer::to_code`] of the most recent lookup's layer.
    pub last_layer: u8,
    /// Whether checks currently fail fast.
    pub quarantined: bool,
    /// Whether the pool is permanently fenced off.
    pub poisoned: bool,
    /// Lifetime violation count.
    pub violations: u32,
    /// Violations within the current recovery-domain scope.
    pub scope_violations: u32,
    /// Pending injected registration failures.
    pub forced_reg_failures: u32,
    /// Subsystem id the poison was attributed to (0 = none).
    pub poisoned_by: u64,
    /// Times the pool has been repaired by `sva.recover.repair`.
    pub repairs: u32,
}

/// One metapool's forensic surface: the fields a crash bundle or
/// postmortem report prints. Unlike [`PoolImage`] this is a *summary* —
/// no ranges, no MRU contents — sized to be embedded per pool in every
/// crash artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolSummary {
    /// Pool id (index in the table).
    pub id: u32,
    /// Pool name.
    pub name: String,
    /// Whether the points-to partition is complete (incomplete pools run
    /// reduced checks).
    pub complete: bool,
    /// Live registered objects.
    pub live_objects: u64,
    /// Total checks answered (all layers).
    pub checks: u64,
    /// Lifetime violation count.
    pub violations: u32,
    /// Whether checks currently fail fast.
    pub quarantined: bool,
    /// Whether the pool is permanently fenced off.
    pub poisoned: bool,
    /// Times the pool has been repaired by `sva.recover.repair` (repair
    /// history, DESIGN.md §4.8).
    pub repairs: u32,
}

/// The set of all metapools of a loaded kernel, indexed by the metapool ids
/// embedded in the bytecode annotations.
#[derive(Clone, Debug, Default)]
pub struct MetaPoolTable {
    pools: Vec<MetaPool>,
    /// Indirect-call target sets (function ids), indexed by funccheck set id.
    pub func_sets: Vec<Vec<u64>>,
    func_stats: CheckStats,
}

impl MetaPoolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pool, returning its id.
    pub fn add_pool(&mut self, pool: MetaPool) -> MetaPoolId {
        let id = MetaPoolId(self.pools.len() as u32);
        self.pools.push(pool);
        id
    }

    /// Number of pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True if no pools exist.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Access a pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pool(&self, id: MetaPoolId) -> &MetaPool {
        &self.pools[id.0 as usize]
    }

    /// Mutable access to a pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pool_mut(&mut self, id: MetaPoolId) -> &mut MetaPool {
        &mut self.pools[id.0 as usize]
    }

    /// Access a pool without panicking on bad ids (hostile input paths).
    pub fn pool_get(&self, id: MetaPoolId) -> Option<&MetaPool> {
        self.pools.get(id.0 as usize)
    }

    /// Mutable access without panicking on bad ids.
    pub fn pool_get_mut(&mut self, id: MetaPoolId) -> Option<&mut MetaPool> {
        self.pools.get_mut(id.0 as usize)
    }

    /// Resolves a pool by its symbolic name (violation attribution; cold
    /// path, linear scan).
    pub fn find_by_name(&self, name: &str) -> Option<MetaPoolId> {
        self.pools
            .iter()
            .position(|p| p.name == name)
            .map(|i| MetaPoolId(i as u32))
    }

    /// Forensic summaries of every pool, in id order (crash bundles and
    /// postmortem reports embed these).
    pub fn summaries(&self) -> Vec<PoolSummary> {
        self.pools
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let s = p.stats();
                PoolSummary {
                    id: i as u32,
                    name: p.name.clone(),
                    complete: p.complete,
                    live_objects: p.live_objects() as u64,
                    checks: s.bounds_checks + s.ls_checks + s.get_bounds + s.func_checks,
                    violations: p.violations(),
                    quarantined: p.quarantined(),
                    poisoned: p.poisoned(),
                    repairs: p.repairs(),
                }
            })
            .collect()
    }

    /// Number of pools currently quarantined (including poisoned ones).
    pub fn quarantined_count(&self) -> usize {
        self.pools.iter().filter(|p| p.quarantined()).count()
    }

    /// Number of pools permanently poisoned.
    pub fn poisoned_count(&self) -> usize {
        self.pools.iter().filter(|p| p.poisoned()).count()
    }

    /// `sva.recover.repair(subsys)` backend: repairs every pool whose
    /// poison is attributed to `subsys` (DESIGN.md §4.8). Returns the
    /// ids of the pools repaired.
    pub fn repair_poisoned_by(&mut self, subsys: u64) -> Vec<MetaPoolId> {
        let mut repaired = Vec::new();
        for (i, p) in self.pools.iter_mut().enumerate() {
            if p.poisoned() && p.poisoned_by() == subsys && p.repair() {
                repaired.push(MetaPoolId(i as u32));
            }
        }
        repaired
    }

    /// Registers an indirect-call target set, returning its set id.
    pub fn add_func_set(&mut self, targets: Vec<u64>) -> u32 {
        self.func_sets.push(targets);
        (self.func_sets.len() - 1) as u32
    }

    /// `funccheck`: verifies `target` is in set `set_id` (paper §4.5
    /// check 3).
    pub fn func_check(&mut self, set_id: u32, target: u64) -> Result<(), CheckError> {
        self.func_stats.func_checks += 1;
        let set = match self.func_sets.get(set_id as usize) {
            Some(s) => s,
            None => {
                return Err(CheckError {
                    kind: CheckKind::IndirectCall,
                    pool: format!("funcset{set_id}"),
                    addr: target,
                    detail: "unknown target set".into(),
                })
            }
        };
        if set.contains(&target) {
            Ok(())
        } else {
            Err(CheckError {
                kind: CheckKind::IndirectCall,
                pool: format!("funcset{set_id}"),
                addr: target,
                detail: format!("target not among {} allowed callees", set.len()),
            })
        }
    }

    /// Aggregated statistics across all pools (plus indirect-call checks).
    pub fn total_stats(&self) -> CheckStats {
        let mut s = self.func_stats;
        for p in &self.pools {
            s.merge(p.stats());
        }
        s
    }

    /// Resets every counter.
    pub fn reset_stats(&mut self) {
        self.func_stats = CheckStats::default();
        for p in &mut self.pools {
            p.reset_stats();
        }
    }

    /// Toggles the lookup fast path on every pool (benchmark ablation).
    pub fn set_fast_path(&mut self, enabled: bool) {
        for p in &mut self.pools {
            p.set_fast_path(enabled);
        }
    }

    /// Toggles the singleton fast path on every pool (benchmark ablation).
    pub fn set_singleton_path(&mut self, enabled: bool) {
        for p in &mut self.pools {
            p.set_singleton_path(enabled);
        }
    }

    /// Exports every pool's mutable state plus the table-level
    /// indirect-call counters for a machine snapshot.
    pub fn export_images(&self) -> (Vec<PoolImage>, [u64; CheckStats::WORDS]) {
        (
            self.pools.iter().map(|p| p.export_image()).collect(),
            self.func_stats.to_words(),
        )
    }

    /// Restores pool contents and counters from
    /// [`MetaPoolTable::export_images`] output. The table must already hold
    /// the same pools (same count, names, declaration order) — they come
    /// from the bytecode annotations, which the snapshot's code identity
    /// pins; any mismatch is rejected.
    pub fn restore_images(
        &mut self,
        imgs: &[PoolImage],
        func_stats: [u64; CheckStats::WORDS],
    ) -> Result<(), String> {
        if imgs.len() != self.pools.len() {
            return Err(format!(
                "image has {} pools, machine has {}",
                imgs.len(),
                self.pools.len()
            ));
        }
        for (p, img) in self.pools.iter_mut().zip(imgs) {
            p.restore_image(img)?;
        }
        self.func_stats = CheckStats::from_words(func_stats);
        Ok(())
    }

    /// SMP bring-up, step 1: publishes every pool's live ranges into
    /// `plane` — one fresh plane slot per pool, contiguous — and returns
    /// the base slot index. Publishing the same table once per vCPU gives
    /// each vCPU its own slot range (`base = vcpu * len()`) inside one
    /// shared plane: lookups, registrations and epoch churn all share the
    /// plane's snapshot/epoch machinery while each vCPU's kernel keeps
    /// its own object namespace.
    ///
    /// # Panics
    ///
    /// Panics if a pool's live ranges overlap (impossible for a registry
    /// that [`MetaPool::reg_obj`] built).
    pub fn publish_to_plane(&self, plane: &SharedMetaPlane) -> u32 {
        let mut base = None;
        for p in &self.pools {
            let idx = plane.add_pool();
            base.get_or_insert(idx);
            plane
                .adopt(idx, &p.live_ranges())
                .expect("live registry ranges are disjoint");
        }
        base.unwrap_or(0)
    }

    /// SMP bring-up, step 2: binds every pool of this table to `plane`
    /// at slot range base 0 (plane slot = pool id, the layout a single
    /// [`Self::publish_to_plane`] call created). Each vCPU's table binds
    /// its own clone.
    pub fn bind_shared(&mut self, plane: &Arc<SharedMetaPlane>) {
        self.bind_shared_at(plane, 0);
    }

    /// Like [`Self::bind_shared`] with an explicit slot-range base: pool
    /// `i` binds to plane slot `base + i` (the layout one
    /// [`Self::publish_to_plane`] call per vCPU creates).
    pub fn bind_shared_at(&mut self, plane: &Arc<SharedMetaPlane>, base: u32) {
        for (i, p) in self.pools.iter_mut().enumerate() {
            p.bind_shared(plane.clone(), base + i as u32);
        }
    }

    /// Every pool's live ranges, in pool-id order (the per-job reset
    /// baseline an SMP machine restores its plane slots to).
    pub fn live_ranges_by_pool(&self) -> Vec<Vec<(u64, u64)>> {
        self.pools.iter().map(|p| p.live_ranges()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th_pool() -> MetaPool {
        MetaPool::new("MP0", true, true, Some(16))
    }

    #[test]
    fn register_lookup_drop_cycle() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        assert_eq!(p.get_bounds(0x1020), Some((0x1000, 0x1040)));
        assert_eq!(p.live_objects(), 1);
        p.drop_obj(0x1000).unwrap();
        assert_eq!(p.get_bounds(0x1020), None);
    }

    #[test]
    fn double_free_detected() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.drop_obj(0x1000).unwrap();
        let err = p.drop_obj(0x1000).unwrap_err();
        assert_eq!(err.kind, CheckKind::IllegalFree);
    }

    #[test]
    fn free_of_interior_pointer_detected() {
        // T5: deallocation must use "a legal pointer to the start of the
        // allocated object".
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        let err = p.drop_obj(0x1010).unwrap_err();
        assert_eq!(err.kind, CheckKind::IllegalFree);
    }

    #[test]
    fn bounds_check_within_and_past() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.bounds_check(0x1000, 0x103f).unwrap();
        p.bounds_check(0x1000, 0x1040).unwrap(); // one-past-the-end ok
        let err = p.bounds_check(0x1000, 0x1041).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
        let err = p.bounds_check(0x1010, 0x0fff).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
    }

    #[test]
    fn bounds_check_unknown_source_complete_vs_incomplete() {
        let mut complete = MetaPool::new("MPc", false, true, None);
        let err = complete.bounds_check(0x5000, 0x5004).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);

        let mut incomplete = MetaPool::new("MPi", false, false, None);
        incomplete.bounds_check(0x5000, 0x5004).unwrap();
        assert_eq!(incomplete.stats().reduced_skips, 1);
    }

    #[test]
    fn ls_check_complete_vs_incomplete() {
        let mut complete = MetaPool::new("MPc", false, true, None);
        complete.reg_obj(0x2000, 16).unwrap();
        complete.ls_check(0x2008).unwrap();
        let err = complete.ls_check(0x3000).unwrap_err();
        assert_eq!(err.kind, CheckKind::LoadStore);

        let mut incomplete = MetaPool::new("MPi", false, false, None);
        incomplete.ls_check(0x3000).unwrap();
        assert_eq!(incomplete.stats().reduced_skips, 1);
    }

    #[test]
    fn zero_size_registration_is_checkable() {
        let mut p = th_pool();
        p.reg_obj(0x9000, 0).unwrap();
        assert_eq!(p.get_bounds(0x9000), Some((0x9000, 0x9001)));
    }

    #[test]
    fn overlapping_registration_rejected() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        let err = p.reg_obj(0x1020, 8).unwrap_err();
        assert_eq!(err.kind, CheckKind::BadRegistration);
    }

    #[test]
    fn bounds_check_range_static() {
        let mut p = th_pool();
        p.bounds_check_range(0x100, 0x150, 0x160).unwrap();
        let err = p.bounds_check_range(0x100, 0x161, 0x160).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
    }

    #[test]
    fn func_check_sets() {
        let mut t = MetaPoolTable::new();
        let set = t.add_func_set(vec![0x10, 0x20, 0x30]);
        t.func_check(set, 0x20).unwrap();
        let err = t.func_check(set, 0x40).unwrap_err();
        assert_eq!(err.kind, CheckKind::IndirectCall);
        let err = t.func_check(99, 0x10).unwrap_err();
        assert_eq!(err.kind, CheckKind::IndirectCall);
    }

    #[test]
    fn stats_aggregate_across_pools() {
        let mut t = MetaPoolTable::new();
        let a = t.add_pool(MetaPool::new("A", true, true, None));
        let b = t.add_pool(MetaPool::new("B", false, false, None));
        t.pool_mut(a).reg_obj(0x100, 8).unwrap();
        t.pool_mut(a).bounds_check(0x100, 0x104).unwrap();
        t.pool_mut(b).ls_check(0x200).unwrap();
        let s = t.total_stats();
        assert_eq!(s.registrations, 1);
        assert_eq!(s.bounds_checks, 1);
        assert_eq!(s.ls_checks, 1);
        assert_eq!(s.reduced_skips, 1);
        t.reset_stats();
        assert_eq!(t.total_stats(), CheckStats::default());
    }

    #[test]
    fn clear_deregisters_everything() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 16).unwrap();
        p.reg_obj(0x2000, 16).unwrap();
        p.clear();
        assert_eq!(p.live_objects(), 0);
        assert_eq!(p.get_bounds(0x1008), None);
    }

    #[test]
    fn mru_cache_serves_repeated_hits() {
        let mut p = th_pool();
        p.set_singleton_path(false); // this test targets the MRU layer
        p.reg_obj(0x1000, 64).unwrap();
        // First lookup fills the cache (resolved by the page index), the
        // rest are MRU hits.
        for _ in 0..10 {
            p.bounds_check(0x1000, 0x1020).unwrap();
        }
        assert_eq!(p.stats().page_hits, 1);
        assert_eq!(p.stats().cache_hits, 9);
        assert_eq!(p.stats().tree_walks, 0);
    }

    #[test]
    fn mru_second_slot_keeps_alternating_pair() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 16).unwrap();
        p.reg_obj(0x2000, 16).unwrap();
        // Warm both slots, then alternate: every lookup after warmup must be
        // a cache hit (the 2-entry MRU holds both objects).
        p.ls_check(0x1008).unwrap();
        p.ls_check(0x2008).unwrap();
        for _ in 0..8 {
            p.ls_check(0x1008).unwrap();
            p.ls_check(0x2008).unwrap();
        }
        assert_eq!(p.stats().page_hits, 2);
        assert_eq!(p.stats().cache_hits, 16);
        assert_eq!(p.stats().tree_walks, 0);
    }

    #[test]
    fn dropped_object_never_served_from_caches() {
        let mut p = th_pool();
        p.set_singleton_path(false); // this test targets the MRU layer
        p.reg_obj(0x1000, 64).unwrap();
        // Pull the object into the MRU cache and the page index.
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x1010).unwrap();
        assert_eq!(p.stats().cache_hits, 1);
        p.drop_obj(0x1000).unwrap();
        // A use-after-free probe must miss in every layer.
        let err = p.ls_check(0x1010).unwrap_err();
        assert_eq!(err.kind, CheckKind::LoadStore);
        assert_eq!(p.get_bounds(0x1010), None);
        // And re-registration at an overlapping address serves the new
        // object, not the stale range.
        p.reg_obj(0x1008, 8).unwrap();
        assert_eq!(p.get_bounds(0x100c), Some((0x1008, 0x1010)));
    }

    #[test]
    fn cleared_pool_never_served_from_caches() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x1010).unwrap();
        p.clear();
        let err = p.ls_check(0x1010).unwrap_err();
        assert_eq!(err.kind, CheckKind::LoadStore);
    }

    #[test]
    fn page_index_proves_definitive_misses() {
        let mut p = MetaPool::new("MPc", false, true, None);
        p.set_singleton_path(false); // this test targets the page index
        p.reg_obj(0x1000, 64).unwrap();
        // Miss on a page with no candidates: answered by the index (all
        // live ranges are indexed), no tree walk.
        assert!(p.ls_check(0x9000).is_err());
        assert_eq!(p.stats().page_hits, 1);
        assert_eq!(p.stats().tree_walks, 0);
    }

    #[test]
    fn huge_objects_fall_back_to_the_tree() {
        let mut p = MetaPool::new("MPc", false, true, None);
        // Singleton off: a lone huge object would otherwise be a singleton.
        p.set_singleton_path(false);
        // 1 MiB object: spans 256 pages > MAX_INDEXED_PAGES, so it is not
        // page-indexed and lookups must reach the splay tree.
        p.reg_obj(0x10_0000, 0x10_0000).unwrap();
        p.ls_check(0x18_0000).unwrap();
        assert_eq!(p.stats().tree_walks, 1);
        // Second hit comes from the MRU cache even for huge objects.
        p.ls_check(0x18_0008).unwrap();
        assert_eq!(p.stats().cache_hits, 1);
        // Misses cannot be proven by the index while the huge object lives…
        assert!(p.ls_check(0x50_0000).is_err());
        assert_eq!(p.stats().tree_walks, 2);
        // …but become definitive again once it is dropped.
        p.drop_obj(0x10_0000).unwrap();
        assert!(p.ls_check(0x50_0000).is_err());
        assert_eq!(p.stats().tree_walks, 2);
    }

    #[test]
    fn fast_path_toggle_recovers_baseline_and_rebuilds() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.reg_obj(0x3000, 64).unwrap();
        p.set_fast_path(false);
        assert!(!p.fast_path());
        for _ in 0..4 {
            p.bounds_check(0x1000, 0x1010).unwrap();
        }
        // Baseline: every lookup is a tree walk, no cache traffic.
        assert_eq!(p.stats().cache_hits, 0);
        assert_eq!(p.stats().page_hits, 0);
        assert_eq!(p.stats().tree_walks, 4);
        // Re-enabling rebuilds the page index from the live tree.
        p.set_fast_path(true);
        p.bounds_check(0x3000, 0x3010).unwrap();
        assert_eq!(p.stats().page_hits, 1);
        assert_eq!(p.stats().tree_walks, 4);
    }

    #[test]
    fn quarantine_fails_checks_fast_but_keeps_registry_working() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        assert!(!p.note_violation(3));
        assert!(p.quarantined());
        // Every check fails fast with the distinct kind, without lookups.
        let before = p.stats().lookups();
        assert_eq!(
            p.bounds_check(0x1000, 0x1010).unwrap_err().kind,
            CheckKind::Quarantined
        );
        assert_eq!(p.ls_check(0x1010).unwrap_err().kind, CheckKind::Quarantined);
        assert_eq!(
            p.bounds_check_range(0x1000, 0x1010, 0x1040)
                .unwrap_err()
                .kind,
            CheckKind::Quarantined
        );
        assert_eq!(p.get_bounds(0x1010), None);
        assert_eq!(p.stats().lookups(), before);
        assert_eq!(p.stats().quarantine_rejects, 4);
        // The registry stays coherent: reg/drop still work under quarantine
        // (the VM sweeps stack registrations during unwind).
        p.reg_obj(0x2000, 16).unwrap();
        p.drop_obj(0x2000).unwrap();
        // Release restores normal checking.
        assert!(p.release_quarantine());
        p.bounds_check(0x1000, 0x1010).unwrap();
    }

    #[test]
    fn violation_budget_poisons_permanently() {
        let mut p = th_pool();
        assert!(!p.note_violation(3));
        p.release_quarantine();
        assert!(!p.note_violation(3));
        p.release_quarantine();
        assert!(p.note_violation(3)); // third strike: poisoned
        assert!(p.poisoned());
        assert_eq!(p.violations(), 3);
        assert!(!p.release_quarantine());
        assert!(p.quarantined());
        assert_eq!(
            p.ls_check(0x1000).unwrap_err().detail,
            "pool poisoned after repeated violations"
        );
    }

    #[test]
    fn repair_unpoisons_and_rebuilds_coherently() {
        let mut p = MetaPool::new("MPc", false, true, None);
        p.reg_obj(0x1000, 64).unwrap();
        p.reg_obj(0x3000, 64).unwrap();
        // Warm the caches, then poison with attribution.
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x1010).unwrap();
        p.force_poison(7);
        assert!(p.poisoned());
        assert_eq!(p.poisoned_by(), 7);
        assert!(!p.release_quarantine(), "poison must resist release");
        // Repair: poison clears, budget resets, attribution drops,
        // history records the repair.
        assert!(p.repair());
        assert!(!p.poisoned());
        assert!(!p.quarantined());
        assert_eq!(p.scope_violations(), 0);
        assert_eq!(p.poisoned_by(), 0);
        assert_eq!(p.repairs(), 1);
        assert_eq!(p.violations(), 1, "lifetime violations stay as history");
        // The rebuilt lookup layers answer correctly for live and dead
        // addresses alike.
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x3010).unwrap();
        assert_eq!(p.ls_check(0x9000).unwrap_err().kind, CheckKind::LoadStore);
        // A healthy pool is not repairable.
        assert!(!p.repair());
        assert_eq!(p.repairs(), 1);
    }

    #[test]
    fn attribution_sticks_to_first_owner_and_table_repairs_by_subsys() {
        let mut t = MetaPoolTable::new();
        let a = t.add_pool(MetaPool::new("A", true, true, None));
        let b = t.add_pool(MetaPool::new("B", false, true, None));
        t.pool_mut(a).force_poison(3);
        t.pool_mut(a).attribute_poison(9); // second owner must not take over
        t.pool_mut(b).force_poison(9);
        assert_eq!(t.pool(a).poisoned_by(), 3);
        assert_eq!(t.repair_poisoned_by(3), vec![a]);
        assert!(!t.pool(a).poisoned());
        assert!(t.pool(b).poisoned(), "other subsystems' pools stay fenced");
        assert_eq!(t.repair_poisoned_by(3), vec![]);
        assert_eq!(t.repair_poisoned_by(9), vec![b]);
    }

    #[test]
    fn repair_state_survives_the_image_round_trip() {
        let mut p = MetaPool::new("MPc", false, true, None);
        p.reg_obj(0x1000, 64).unwrap();
        p.force_poison(5);
        p.repair();
        p.force_poison(6);
        let img = p.export_image();
        assert_eq!(img.poisoned_by, 6);
        assert_eq!(img.repairs, 1);
        let mut q = MetaPool::new("MPc", false, true, None);
        q.restore_image(&img).unwrap();
        assert_eq!(q.poisoned_by(), 6);
        assert_eq!(q.repairs(), 1);
        assert!(q.poisoned());
    }

    #[test]
    fn injected_reg_failures_consume_then_clear() {
        let mut p = th_pool();
        p.inject_reg_failures(2);
        assert_eq!(
            p.reg_obj(0x1000, 16).unwrap_err().kind,
            CheckKind::BadRegistration
        );
        assert_eq!(
            p.reg_obj(0x1000, 16).unwrap_err().detail,
            "injected allocation failure"
        );
        p.reg_obj(0x1000, 16).unwrap();
        assert_eq!(p.live_objects(), 1);
    }

    #[test]
    fn corrupt_metadata_shrinks_an_object_coherently() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        // Warm the caches so corruption must invalidate them.
        p.ls_check(0x1030).unwrap();
        p.ls_check(0x1030).unwrap();
        assert!(p.inject_corrupt_metadata(0));
        // The tail of the object is now wild in every layer.
        assert_eq!(p.ls_check(0x1030).unwrap_err().kind, CheckKind::LoadStore);
        // The head still checks out.
        p.ls_check(0x1010).unwrap();
        assert_eq!(p.get_bounds(0x1010), Some((0x1000, 0x1020)));
        // An empty pool has nothing to corrupt.
        let mut empty = th_pool();
        assert!(!empty.inject_corrupt_metadata(7));
    }

    #[test]
    fn table_finds_pools_by_name_and_counts_quarantines() {
        let mut t = MetaPoolTable::new();
        let a = t.add_pool(MetaPool::new("MP0", true, true, None));
        let b = t.add_pool(MetaPool::new("MP1", false, true, None));
        assert_eq!(t.find_by_name("MP1"), Some(b));
        assert_eq!(t.find_by_name("nope"), None);
        assert!(t.pool_get(MetaPoolId(99)).is_none());
        t.pool_mut(a).note_violation(1);
        t.pool_mut(b).note_violation(3);
        assert_eq!(t.quarantined_count(), 2);
        assert_eq!(t.poisoned_count(), 1);
    }

    #[test]
    fn singleton_pool_answers_hits_and_definitive_misses() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        // Every lookup — hit, interior hit, and miss — is answered by the
        // singleton layer without touching cache, index or tree.
        p.bounds_check(0x1000, 0x1020).unwrap();
        p.ls_check(0x103f).unwrap();
        assert_eq!(p.ls_check(0x2000).unwrap_err().kind, CheckKind::LoadStore);
        assert_eq!(p.get_bounds(0x1010), Some((0x1000, 0x1040)));
        assert_eq!(p.last_lookup_layer(), sva_trace::LookupLayer::Singleton);
        let s = *p.stats();
        assert_eq!(s.singleton_hits, 4);
        assert_eq!(s.cache_hits + s.page_hits + s.tree_walks, 0);
        assert_eq!(s.lookups(), 4);
    }

    #[test]
    fn singleton_invalidated_by_second_registration_and_restored_by_drop() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.ls_check(0x1010).unwrap();
        assert_eq!(p.stats().singleton_hits, 1);
        // A second live object disables the singleton layer...
        p.reg_obj(0x2000, 64).unwrap();
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x2010).unwrap();
        assert_eq!(p.stats().singleton_hits, 1);
        // ...and dropping back to one live object re-enables it, serving
        // the *surviving* object only.
        p.drop_obj(0x1000).unwrap();
        assert_eq!(p.ls_check(0x1010).unwrap_err().kind, CheckKind::LoadStore);
        p.ls_check(0x2010).unwrap();
        assert_eq!(p.stats().singleton_hits, 3);
    }

    #[test]
    fn singleton_survives_clear_and_metadata_corruption() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.ls_check(0x1030).unwrap();
        // Corruption shrinks the lone object; the singleton range must
        // shrink with it so the tail is wild in this layer too.
        assert!(p.inject_corrupt_metadata(0));
        assert_eq!(p.ls_check(0x1030).unwrap_err().kind, CheckKind::LoadStore);
        assert_eq!(p.get_bounds(0x1010), Some((0x1000, 0x1020)));
        // Clearing the pool forgets the singleton entirely.
        p.clear();
        assert_eq!(p.ls_check(0x1010).unwrap_err().kind, CheckKind::LoadStore);
        assert_eq!(p.last_lookup_layer(), sva_trace::LookupLayer::Page);
    }

    #[test]
    fn singleton_toggle_falls_back_to_layered_lookup() {
        let mut p = th_pool();
        p.set_singleton_path(false);
        p.reg_obj(0x1000, 64).unwrap();
        p.ls_check(0x1010).unwrap();
        p.ls_check(0x1010).unwrap();
        // Layered path: page-index fill then MRU hit, no singleton traffic.
        assert_eq!(p.stats().singleton_hits, 0);
        assert_eq!(p.stats().page_hits, 1);
        assert_eq!(p.stats().cache_hits, 1);
        // Re-enabling needs no rebuild: the range is maintained either way.
        p.set_singleton_path(true);
        p.ls_check(0x1010).unwrap();
        assert_eq!(p.stats().singleton_hits, 1);
    }

    #[test]
    fn singleton_agrees_with_baseline_on_every_probe() {
        // The two-compare answer must equal the splay-only answer for any
        // address, including boundaries.
        let mut fast = th_pool();
        let mut base = th_pool();
        base.set_singleton_path(false);
        base.set_fast_path(false);
        for p in [&mut fast, &mut base] {
            p.reg_obj(0x1000, 64).unwrap();
        }
        for addr in [0u64, 0xfff, 0x1000, 0x1001, 0x103f, 0x1040, 0x9000] {
            assert_eq!(fast.get_bounds(addr), base.get_bounds(addr), "{addr:#x}");
            assert_eq!(
                fast.ls_check(addr).is_ok(),
                base.ls_check(addr).is_ok(),
                "{addr:#x}"
            );
        }
        assert_eq!(fast.stats().lookups(), base.stats().lookups());
        assert_eq!(fast.stats().singleton_hits, fast.stats().lookups());
    }

    #[test]
    fn pool_image_round_trip_is_observationally_identical() {
        // Build a pool with non-trivial state in every layer: warm caches,
        // a huge unindexed object, violations, injected failures.
        let mut p = MetaPool::new("MPc", false, true, None);
        for i in 0..8u64 {
            p.reg_obj(0x1000 + i * 0x100, 0x80).unwrap();
        }
        p.reg_obj(0x10_0000, 0x10_0000).unwrap(); // huge → unindexed
        for addr in [0x1010u64, 0x1210, 0x18_0000, 0x1010] {
            let _ = p.ls_check(addr);
        }
        p.note_violation(3);
        p.release_quarantine();
        p.inject_reg_failures(1);

        let img = p.export_image();
        let mut q = MetaPool::new("MPc", false, true, None);
        q.restore_image(&img).unwrap();

        assert_eq!(q.live_ranges(), p.live_ranges());
        assert_eq!(q.stats(), p.stats());
        assert_eq!(q.violations(), p.violations());
        assert_eq!(q.quarantined(), p.quarantined());
        // The restored pool must answer every probe — and attribute it to
        // the same layer, moving the same counters — as the original.
        let probes = [0u64, 0x1010, 0x1210, 0x1700, 0x18_0000, 0x50_0000];
        for addr in probes {
            assert_eq!(q.get_bounds(addr), p.get_bounds(addr), "{addr:#x}");
            assert_eq!(q.last_lookup_layer(), p.last_lookup_layer(), "{addr:#x}");
        }
        assert_eq!(q.stats(), p.stats());
        // Pending injected failures survive the trip.
        assert!(q.reg_obj(0x9000, 8).is_err());
        // Cross-wired images are rejected.
        let mut other = MetaPool::new("MPx", false, true, None);
        assert!(other.restore_image(&img).is_err());
    }

    /// Two pool clones bound to one plane, as two vCPUs would hold them.
    fn shared_pair() -> (Arc<SharedMetaPlane>, MetaPool, MetaPool) {
        let mut p = MetaPool::new("MPc", false, true, None);
        p.reg_obj(0x1000, 64).unwrap();
        let plane = Arc::new(SharedMetaPlane::new());
        let mut t = MetaPoolTable::new();
        t.add_pool(p);
        t.publish_to_plane(&plane);
        let mut t2 = t.clone();
        t.bind_shared(&plane);
        t2.bind_shared(&plane);
        let id = MetaPoolId(0);
        (plane, t.pool(id).clone(), t2.pool(id).clone())
    }

    #[test]
    fn shared_binding_routes_checks_through_the_plane() {
        let (plane, mut cpu0, mut cpu1) = shared_pair();
        assert!(cpu0.is_shared());
        // The adopted boot-time object is visible on both vCPUs.
        cpu0.ls_check(0x1010).unwrap();
        cpu1.bounds_check(0x1000, 0x1020).unwrap();
        assert_eq!(cpu1.get_bounds(0x1010), Some((0x1000, 0x1040)));
        // cpu0 registers; cpu1 sees it immediately (epoch moved).
        cpu0.reg_obj(0x2000, 32).unwrap();
        assert_eq!(plane.epoch(), 3); // add_pool + adopt + register
        cpu1.ls_check(0x2010).unwrap();
        // cpu1 drops it; cpu0's next probe must miss in every layer —
        // including the MRU it may have filled under the old epoch.
        cpu0.ls_check(0x2010).unwrap();
        cpu1.drop_obj(0x2000).unwrap();
        assert_eq!(
            cpu0.ls_check(0x2010).unwrap_err().kind,
            CheckKind::LoadStore
        );
        // Double free caught across vCPUs.
        assert_eq!(
            cpu0.drop_obj(0x2000).unwrap_err().kind,
            CheckKind::IllegalFree
        );
        // Overlap caught across vCPUs; the error names the pool.
        let e = cpu1.reg_obj(0x1010, 8).unwrap_err();
        assert_eq!(e.kind, CheckKind::BadRegistration);
        assert_eq!(e.pool, "MPc");
    }

    #[test]
    fn shared_lookup_counters_partition_and_mru_is_epoch_tagged() {
        let (_plane, mut cpu0, mut cpu1) = shared_pair();
        // First probe fills the MRU from the page index, repeats hit it.
        for _ in 0..5 {
            cpu0.ls_check(0x1010).unwrap();
        }
        assert_eq!(cpu0.stats().page_hits, 1);
        assert_eq!(cpu0.stats().cache_hits, 4);
        assert_eq!(
            cpu0.stats().singleton_hits,
            0,
            "no singleton layer when shared"
        );
        // Any publish — even of an unrelated object, even by this vCPU —
        // invalidates the tag; the next probe re-reads the snapshot.
        cpu1.reg_obj(0x9000, 8).unwrap();
        cpu0.ls_check(0x1010).unwrap();
        assert_eq!(cpu0.stats().page_hits, 2);
        let s = *cpu0.stats();
        assert_eq!(s.lookups(), s.cache_hits + s.page_hits + s.tree_walks);
    }

    #[test]
    fn shared_quarantine_and_stats_stay_per_vcpu() {
        let (_plane, mut cpu0, mut cpu1) = shared_pair();
        cpu0.note_violation(3);
        assert!(cpu0.quarantined());
        assert_eq!(
            cpu0.ls_check(0x1010).unwrap_err().kind,
            CheckKind::Quarantined
        );
        // The other vCPU's clone keeps checking normally.
        assert!(!cpu1.quarantined());
        cpu1.ls_check(0x1010).unwrap();
        assert_eq!(cpu1.stats().quarantine_rejects, 0);
    }

    #[test]
    fn shared_corruption_and_clear_propagate_across_vcpus() {
        let (_plane, mut cpu0, mut cpu1) = shared_pair();
        cpu0.ls_check(0x1030).unwrap();
        assert!(cpu1.inject_corrupt_metadata(0));
        // The shrunken tail is wild on the *other* vCPU.
        assert_eq!(
            cpu0.ls_check(0x1030).unwrap_err().kind,
            CheckKind::LoadStore
        );
        cpu0.ls_check(0x1010).unwrap();
        assert_eq!(cpu0.live_objects(), 1);
        cpu1.clear();
        assert_eq!(cpu0.live_objects(), 0);
        assert_eq!(
            cpu0.ls_check(0x1010).unwrap_err().kind,
            CheckKind::LoadStore
        );
    }

    #[test]
    fn lookup_layers_partition_all_lookups() {
        let mut p = MetaPool::new("MPc", false, true, None);
        for i in 0..64u64 {
            p.reg_obj(0x1000 + i * 0x100, 0x80).unwrap();
        }
        let mut x = 7u64;
        let mut lookups = 0;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = 0x1000 + (x % 0x4000);
            let _ = p.ls_check(addr);
            lookups += 1;
        }
        let s = *p.stats();
        assert_eq!(s.lookups(), lookups);
        assert_eq!(s.cache_hits + s.page_hits + s.tree_walks, lookups);
    }
}
