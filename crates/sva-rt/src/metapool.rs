//! Metapools: the run-time representation of points-to partitions.
//!
//! A metapool (paper §4.3) is "a set of data objects that map to the same
//! points-to node and so must be treated as one logical pool by the safety
//! checking algorithm". At run time it owns a splay tree of registered
//! object ranges and implements the checks of §4.5, honouring the
//! completeness-based "reduced checks" rule.

use crate::check::{CheckError, CheckKind, CheckStats};
use crate::splay::SplayTree;

/// Identifier of a metapool within a [`MetaPoolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MetaPoolId(pub u32);

/// One metapool with its object registry.
#[derive(Clone, Debug)]
pub struct MetaPool {
    /// Symbolic name (matches the bytecode annotation, e.g. `"MP4"`).
    pub name: String,
    /// Whether the partition is type-homogeneous.
    pub type_homogeneous: bool,
    /// Whether the partition is complete. Incomplete pools run reduced
    /// checks (paper §4.5).
    pub complete: bool,
    /// Element size for TH pools (alignment constraint, paper §4.4).
    pub elem_size: Option<u64>,
    objects: SplayTree,
    stats: CheckStats,
}

impl MetaPool {
    /// Creates an empty metapool.
    pub fn new(name: &str, type_homogeneous: bool, complete: bool, elem_size: Option<u64>) -> Self {
        MetaPool {
            name: name.to_string(),
            type_homogeneous,
            complete,
            elem_size,
            objects: SplayTree::new(),
            stats: CheckStats::default(),
        }
    }

    /// Number of live registered objects.
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Read-only access to the counters.
    pub fn stats(&self) -> &CheckStats {
        &self.stats
    }

    /// Resets the counters (benchmark runs).
    pub fn reset_stats(&mut self) {
        self.stats = CheckStats::default();
    }

    fn err(&self, kind: CheckKind, addr: u64, detail: impl Into<String>) -> CheckError {
        CheckError {
            kind,
            pool: self.name.clone(),
            addr,
            detail: detail.into(),
        }
    }

    /// `pchk.reg.obj`: registers `[addr, addr + len)`.
    ///
    /// Registering an overlapping range is a [`CheckKind::BadRegistration`]
    /// error — it would mean the kernel allocator handed out overlapping
    /// objects or the compiler mis-sized a registration.
    pub fn reg_obj(&mut self, addr: u64, len: u64) -> Result<(), CheckError> {
        self.stats.registrations += 1;
        if len == 0 {
            // Zero-sized allocations register a 1-byte placeholder so that
            // the pointer identity stays checkable.
            if self.objects.insert(addr, 1) {
                return Ok(());
            }
            return Err(self.err(CheckKind::BadRegistration, addr, "zero-size overlap"));
        }
        if self.objects.insert(addr, len) {
            Ok(())
        } else {
            Err(self.err(
                CheckKind::BadRegistration,
                addr,
                format!("overlapping registration of {len} bytes"),
            ))
        }
    }

    /// `pchk.drop.obj`: deregisters the object starting at `addr`.
    ///
    /// Dropping a non-live object or a pointer not at the start of an
    /// object is an illegal free (guarantee T5).
    pub fn drop_obj(&mut self, addr: u64) -> Result<(), CheckError> {
        self.stats.drops += 1;
        match self.objects.remove(addr) {
            Some(_) => Ok(()),
            None => Err(self.err(
                CheckKind::IllegalFree,
                addr,
                "object not live at this address",
            )),
        }
    }

    /// `getbounds`: bounds of the object containing `addr`, if registered.
    pub fn get_bounds(&mut self, addr: u64) -> Option<(u64, u64)> {
        self.stats.get_bounds += 1;
        self.objects.lookup(addr)
    }

    /// `boundscheck`: verifies that `derived` stays within the object
    /// containing `src` (paper §4.5 check 1).
    ///
    /// For incomplete pools this is a *reduced* check: if `src` hits no
    /// registered object nothing can be said and the check passes (counted
    /// in [`CheckStats::reduced_skips`]).
    ///
    /// `derived == end` (one-past-the-end) is accepted, matching C pointer
    /// arithmetic rules; dereference would still be caught because loads use
    /// the same object lookup.
    pub fn bounds_check(&mut self, src: u64, derived: u64) -> Result<(), CheckError> {
        self.stats.bounds_checks += 1;
        match self.objects.lookup(src) {
            Some((start, end)) => {
                if derived >= start && derived <= end {
                    Ok(())
                } else {
                    Err(self.err(
                        CheckKind::Bounds,
                        derived,
                        format!("derived from {src:#x}, object [{start:#x}, {end:#x})"),
                    ))
                }
            }
            None => {
                if self.complete {
                    // In a complete pool every legal object is registered, so
                    // an unknown source pointer is itself a violation.
                    Err(self.err(CheckKind::Bounds, src, "source pointer hits no object"))
                } else {
                    // Reduced check: unregistered (external) object.
                    self.stats.reduced_skips += 1;
                    Ok(())
                }
            }
        }
    }

    /// Bounds check against statically known bounds (`pchk.bounds.range`),
    /// used when the verifier determined the object extent at compile time
    /// (paper Fig. 2 line 19).
    pub fn bounds_check_range(
        &mut self,
        start: u64,
        derived: u64,
        end: u64,
    ) -> Result<(), CheckError> {
        self.stats.bounds_checks += 1;
        if derived >= start && derived <= end {
            Ok(())
        } else {
            Err(self.err(
                CheckKind::Bounds,
                derived,
                format!("static object [{start:#x}, {end:#x})"),
            ))
        }
    }

    /// `lscheck`: verifies a load/store pointer targets a registered object
    /// (paper §4.5 check 2). Only required for non-TH pools; disabled
    /// ("useless", paper) on incomplete pools.
    pub fn ls_check(&mut self, addr: u64) -> Result<(), CheckError> {
        self.stats.ls_checks += 1;
        if !self.complete {
            self.stats.reduced_skips += 1;
            return Ok(());
        }
        match self.objects.lookup(addr) {
            Some(_) => Ok(()),
            None => Err(self.err(CheckKind::LoadStore, addr, "no registered object")),
        }
    }

    /// Drops every remaining object (pool destruction: "deregister all
    /// remaining objects that are in a kernel pool when a pool is
    /// destroyed", paper §4.3).
    pub fn clear(&mut self) {
        self.objects.clear();
    }

    /// All live ranges, ascending (diagnostics).
    pub fn live_ranges(&self) -> Vec<(u64, u64)> {
        self.objects.iter_ranges()
    }
}

/// The set of all metapools of a loaded kernel, indexed by the metapool ids
/// embedded in the bytecode annotations.
#[derive(Clone, Debug, Default)]
pub struct MetaPoolTable {
    pools: Vec<MetaPool>,
    /// Indirect-call target sets (function ids), indexed by funccheck set id.
    pub func_sets: Vec<Vec<u64>>,
    func_stats: CheckStats,
}

impl MetaPoolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pool, returning its id.
    pub fn add_pool(&mut self, pool: MetaPool) -> MetaPoolId {
        let id = MetaPoolId(self.pools.len() as u32);
        self.pools.push(pool);
        id
    }

    /// Number of pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// True if no pools exist.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Access a pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pool(&self, id: MetaPoolId) -> &MetaPool {
        &self.pools[id.0 as usize]
    }

    /// Mutable access to a pool.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pool_mut(&mut self, id: MetaPoolId) -> &mut MetaPool {
        &mut self.pools[id.0 as usize]
    }

    /// Registers an indirect-call target set, returning its set id.
    pub fn add_func_set(&mut self, targets: Vec<u64>) -> u32 {
        self.func_sets.push(targets);
        (self.func_sets.len() - 1) as u32
    }

    /// `funccheck`: verifies `target` is in set `set_id` (paper §4.5
    /// check 3).
    pub fn func_check(&mut self, set_id: u32, target: u64) -> Result<(), CheckError> {
        self.func_stats.func_checks += 1;
        let set = match self.func_sets.get(set_id as usize) {
            Some(s) => s,
            None => {
                return Err(CheckError {
                    kind: CheckKind::IndirectCall,
                    pool: format!("funcset{set_id}"),
                    addr: target,
                    detail: "unknown target set".into(),
                })
            }
        };
        if set.contains(&target) {
            Ok(())
        } else {
            Err(CheckError {
                kind: CheckKind::IndirectCall,
                pool: format!("funcset{set_id}"),
                addr: target,
                detail: format!("target not among {} allowed callees", set.len()),
            })
        }
    }

    /// Aggregated statistics across all pools (plus indirect-call checks).
    pub fn total_stats(&self) -> CheckStats {
        let mut s = self.func_stats;
        for p in &self.pools {
            s.merge(p.stats());
        }
        s
    }

    /// Resets every counter.
    pub fn reset_stats(&mut self) {
        self.func_stats = CheckStats::default();
        for p in &mut self.pools {
            p.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn th_pool() -> MetaPool {
        MetaPool::new("MP0", true, true, Some(16))
    }

    #[test]
    fn register_lookup_drop_cycle() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        assert_eq!(p.get_bounds(0x1020), Some((0x1000, 0x1040)));
        assert_eq!(p.live_objects(), 1);
        p.drop_obj(0x1000).unwrap();
        assert_eq!(p.get_bounds(0x1020), None);
    }

    #[test]
    fn double_free_detected() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.drop_obj(0x1000).unwrap();
        let err = p.drop_obj(0x1000).unwrap_err();
        assert_eq!(err.kind, CheckKind::IllegalFree);
    }

    #[test]
    fn free_of_interior_pointer_detected() {
        // T5: deallocation must use "a legal pointer to the start of the
        // allocated object".
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        let err = p.drop_obj(0x1010).unwrap_err();
        assert_eq!(err.kind, CheckKind::IllegalFree);
    }

    #[test]
    fn bounds_check_within_and_past() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        p.bounds_check(0x1000, 0x103f).unwrap();
        p.bounds_check(0x1000, 0x1040).unwrap(); // one-past-the-end ok
        let err = p.bounds_check(0x1000, 0x1041).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
        let err = p.bounds_check(0x1010, 0x0fff).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
    }

    #[test]
    fn bounds_check_unknown_source_complete_vs_incomplete() {
        let mut complete = MetaPool::new("MPc", false, true, None);
        let err = complete.bounds_check(0x5000, 0x5004).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);

        let mut incomplete = MetaPool::new("MPi", false, false, None);
        incomplete.bounds_check(0x5000, 0x5004).unwrap();
        assert_eq!(incomplete.stats().reduced_skips, 1);
    }

    #[test]
    fn ls_check_complete_vs_incomplete() {
        let mut complete = MetaPool::new("MPc", false, true, None);
        complete.reg_obj(0x2000, 16).unwrap();
        complete.ls_check(0x2008).unwrap();
        let err = complete.ls_check(0x3000).unwrap_err();
        assert_eq!(err.kind, CheckKind::LoadStore);

        let mut incomplete = MetaPool::new("MPi", false, false, None);
        incomplete.ls_check(0x3000).unwrap();
        assert_eq!(incomplete.stats().reduced_skips, 1);
    }

    #[test]
    fn zero_size_registration_is_checkable() {
        let mut p = th_pool();
        p.reg_obj(0x9000, 0).unwrap();
        assert_eq!(p.get_bounds(0x9000), Some((0x9000, 0x9001)));
    }

    #[test]
    fn overlapping_registration_rejected() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 64).unwrap();
        let err = p.reg_obj(0x1020, 8).unwrap_err();
        assert_eq!(err.kind, CheckKind::BadRegistration);
    }

    #[test]
    fn bounds_check_range_static() {
        let mut p = th_pool();
        p.bounds_check_range(0x100, 0x150, 0x160).unwrap();
        let err = p.bounds_check_range(0x100, 0x161, 0x160).unwrap_err();
        assert_eq!(err.kind, CheckKind::Bounds);
    }

    #[test]
    fn func_check_sets() {
        let mut t = MetaPoolTable::new();
        let set = t.add_func_set(vec![0x10, 0x20, 0x30]);
        t.func_check(set, 0x20).unwrap();
        let err = t.func_check(set, 0x40).unwrap_err();
        assert_eq!(err.kind, CheckKind::IndirectCall);
        let err = t.func_check(99, 0x10).unwrap_err();
        assert_eq!(err.kind, CheckKind::IndirectCall);
    }

    #[test]
    fn stats_aggregate_across_pools() {
        let mut t = MetaPoolTable::new();
        let a = t.add_pool(MetaPool::new("A", true, true, None));
        let b = t.add_pool(MetaPool::new("B", false, false, None));
        t.pool_mut(a).reg_obj(0x100, 8).unwrap();
        t.pool_mut(a).bounds_check(0x100, 0x104).unwrap();
        t.pool_mut(b).ls_check(0x200).unwrap();
        let s = t.total_stats();
        assert_eq!(s.registrations, 1);
        assert_eq!(s.bounds_checks, 1);
        assert_eq!(s.ls_checks, 1);
        assert_eq!(s.reduced_skips, 1);
        t.reset_stats();
        assert_eq!(t.total_stats(), CheckStats::default());
    }

    #[test]
    fn clear_deregisters_everything() {
        let mut p = th_pool();
        p.reg_obj(0x1000, 16).unwrap();
        p.reg_obj(0x2000, 16).unwrap();
        p.clear();
        assert_eq!(p.live_objects(), 0);
        assert_eq!(p.get_bounds(0x1008), None);
    }
}
