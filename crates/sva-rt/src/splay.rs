//! A top-down splay tree over disjoint byte ranges.
//!
//! SAFECode's array-bounds strategy (paper §4.1, following Jones–Kelly with
//! the splay-tree refinement of the DSE/ICSE'06 paper) records every registered object in a
//! per-pool search tree and looks pointers up at check time. Splaying moves
//! recently checked objects to the root, so the common pattern — many checks
//! against the same few objects — costs near-constant amortized time. That
//! locality is a load-bearing property of the paper's performance results,
//! which is why this is a real splay tree and not a `BTreeMap`.
//!
//! Nodes live in an index-based arena with a free list; no recursion, no
//! `Box` chains, no unsafe code.

/// Sentinel for "no node".
const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Inclusive start address of the range.
    start: u64,
    /// Exclusive end address.
    end: u64,
    left: u32,
    right: u32,
}

/// A splay tree of disjoint, non-empty ranges `[start, end)` keyed by start.
#[derive(Clone, Debug, Default)]
pub struct SplayTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl SplayTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        SplayTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of ranges stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree stores nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, start: u64, end: u64) -> u32 {
        let node = Node {
            start,
            end,
            left: NIL,
            right: NIL,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i as usize] = node;
            i
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Top-down splay: moves the node with the greatest `start <= key` (or
    /// the smallest node if none) to the root. No-op on an empty tree.
    fn splay(&mut self, key: u64) {
        if self.root == NIL {
            return;
        }
        // Temporary header node assembled on the stack of left/right trees.
        let mut left_tail: u32 = NIL;
        let mut right_tail: u32 = NIL;
        let mut left_head: u32 = NIL;
        let mut right_head: u32 = NIL;
        let mut t = self.root;

        loop {
            let ts = self.nodes[t as usize].start;
            if key < ts {
                let mut l = self.nodes[t as usize].left;
                if l == NIL {
                    break;
                }
                if key < self.nodes[l as usize].start {
                    // Rotate right.
                    self.nodes[t as usize].left = self.nodes[l as usize].right;
                    self.nodes[l as usize].right = t;
                    t = l;
                    l = self.nodes[t as usize].left;
                    if l == NIL {
                        break;
                    }
                }
                // Link right.
                if right_tail == NIL {
                    right_head = t;
                } else {
                    self.nodes[right_tail as usize].left = t;
                }
                right_tail = t;
                t = l;
            } else if key > ts {
                let mut r = self.nodes[t as usize].right;
                if r == NIL {
                    break;
                }
                if key > self.nodes[r as usize].start {
                    // Rotate left.
                    self.nodes[t as usize].right = self.nodes[r as usize].left;
                    self.nodes[r as usize].left = t;
                    t = r;
                    r = self.nodes[t as usize].right;
                    if r == NIL {
                        break;
                    }
                }
                // Link left.
                if left_tail == NIL {
                    left_head = t;
                } else {
                    self.nodes[left_tail as usize].right = t;
                }
                left_tail = t;
                t = r;
            } else {
                break;
            }
        }

        // Reassemble.
        if left_tail == NIL {
            left_head = self.nodes[t as usize].left;
        } else {
            self.nodes[left_tail as usize].right = self.nodes[t as usize].left;
        }
        if right_tail == NIL {
            right_head = self.nodes[t as usize].right;
        } else {
            self.nodes[right_tail as usize].left = self.nodes[t as usize].right;
        }
        self.nodes[t as usize].left = left_head;
        self.nodes[t as usize].right = right_head;
        self.root = t;
    }

    /// Inserts the range `[start, start + len)`.
    ///
    /// Returns `false` (and stores nothing) if `len == 0` or the range would
    /// overlap an existing one.
    pub fn insert(&mut self, start: u64, len: u64) -> bool {
        let Some(end) = start.checked_add(len) else {
            return false;
        };
        if len == 0 {
            return false;
        }
        if self.root == NIL {
            self.root = self.alloc(start, end);
            self.len = 1;
            return true;
        }
        self.splay(start);
        let r = self.root as usize;
        let (rs, re) = (self.nodes[r].start, self.nodes[r].end);
        if rs == start {
            return false;
        }
        if rs < start {
            // Root is the predecessor; check overlap on both sides.
            if re > start {
                return false;
            }
            let succ = self.nodes[r].right;
            if succ != NIL {
                // Leftmost of the right subtree is the successor.
                let mut s = succ;
                while self.nodes[s as usize].left != NIL {
                    s = self.nodes[s as usize].left;
                }
                if self.nodes[s as usize].start < end {
                    return false;
                }
            }
            let n = self.alloc(start, end);
            self.nodes[n as usize].right = self.nodes[r].right;
            self.nodes[n as usize].left = self.root;
            self.nodes[r].right = NIL;
            self.root = n;
        } else {
            // Root is the successor (key < root.start).
            if end > rs {
                return false;
            }
            // The predecessor, if any, is the rightmost of root's left
            // subtree; splay brought the closest <= key to the root only if
            // one exists, so here no node has start <= key in the left spine
            // root path. Still check the rightmost left descendant.
            let pred = self.nodes[r].left;
            if pred != NIL {
                let mut pn = pred;
                while self.nodes[pn as usize].right != NIL {
                    pn = self.nodes[pn as usize].right;
                }
                if self.nodes[pn as usize].end > start {
                    return false;
                }
            }
            let n = self.alloc(start, end);
            self.nodes[n as usize].left = self.nodes[r].left;
            self.nodes[n as usize].right = self.root;
            self.nodes[r].left = NIL;
            self.root = n;
        }
        self.len += 1;
        true
    }

    /// Finds the range containing `addr`, splaying it (or a neighbour) to
    /// the root. Returns `(start, end)` on a hit.
    pub fn lookup(&mut self, addr: u64) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        self.splay(addr);
        let r = self.nodes[self.root as usize];
        if r.start <= addr {
            return if addr < r.end {
                Some((r.start, r.end))
            } else {
                None
            };
        }
        // Top-down splay can finish with the *successor* at the root while
        // the predecessor — the only candidate range containing `addr` —
        // is the maximum of the left subtree. Splay it up and re-root so the
        // hot object still ends at the root.
        let l = r.left;
        if l == NIL {
            return None;
        }
        // All keys in the left subtree are < addr, so this splay brings the
        // predecessor (subtree maximum) to the subtree root with an empty
        // right child.
        self.nodes[self.root as usize].left = NIL;
        let old_root = self.root;
        self.root = l;
        self.splay(addr);
        debug_assert_eq!(self.nodes[self.root as usize].right, NIL);
        self.nodes[self.root as usize].right = old_root;
        let p = self.nodes[self.root as usize];
        if p.start <= addr && addr < p.end {
            Some((p.start, p.end))
        } else {
            None
        }
    }

    /// Finds the range containing `addr` *without* restructuring the tree.
    ///
    /// A plain BST descent: because stored ranges are disjoint, a node with
    /// `start <= addr < end` is the unique candidate, and when
    /// `addr >= end` no left-subtree range can contain `addr` (it would
    /// have to overlap this node). Read-mostly pools use this instead of
    /// [`SplayTree::lookup`] so hot checks stop paying for rotations; the
    /// trade-off is that the accessed node is not promoted, so the caller
    /// should only prefer it once the tree shape has stabilised.
    pub fn find(&self, addr: u64) -> Option<(u64, u64)> {
        let mut cur = self.root;
        while cur != NIL {
            let n = self.nodes[cur as usize];
            if addr < n.start {
                cur = n.left;
            } else if addr < n.end {
                return Some((n.start, n.end));
            } else {
                cur = n.right;
            }
        }
        None
    }

    /// The single stored range, if the tree holds exactly one. Constant
    /// time: with `len == 1` the root is the only node. Metapools use this
    /// to maintain their singleton fast path across mutations.
    pub fn only_range(&self) -> Option<(u64, u64)> {
        if self.len != 1 {
            return None;
        }
        let n = self.nodes[self.root as usize];
        Some((n.start, n.end))
    }

    /// Removes the range starting exactly at `start`. Returns the removed
    /// `(start, end)` or `None`.
    pub fn remove(&mut self, start: u64) -> Option<(u64, u64)> {
        if self.root == NIL {
            return None;
        }
        self.splay(start);
        let r = self.root;
        let node = self.nodes[r as usize];
        if node.start != start {
            return None;
        }
        let (l, rt) = (node.left, node.right);
        self.root = if l == NIL {
            rt
        } else {
            // Splay the predecessor of `start` to the top of the left
            // subtree, then hang the right subtree off it.
            let old_root = self.root;
            self.root = l;
            self.splay(start);
            debug_assert_ne!(self.root, old_root);
            self.nodes[self.root as usize].right = rt;
            self.root
        };
        self.free.push(r);
        self.len -= 1;
        Some((node.start, node.end))
    }

    /// Removes every range, keeping capacity.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// In-order iteration (ascending by start); allocates a traversal stack.
    pub fn iter_ranges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut cur = self.root;
        while cur != NIL || !stack.is_empty() {
            while cur != NIL {
                stack.push(cur);
                cur = self.nodes[cur as usize].left;
            }
            let n = stack.pop().unwrap();
            let node = &self.nodes[n as usize];
            out.push((node.start, node.end));
            cur = node.right;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_basic() {
        let mut t = SplayTree::new();
        assert!(t.insert(100, 50));
        assert!(t.insert(200, 10));
        assert!(t.insert(10, 5));
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup(100), Some((100, 150)));
        assert_eq!(t.lookup(149), Some((100, 150)));
        assert_eq!(t.lookup(150), None);
        assert_eq!(t.lookup(205), Some((200, 210)));
        assert_eq!(t.lookup(12), Some((10, 15)));
        assert_eq!(t.lookup(50), None);
        assert_eq!(t.lookup(5), None);
    }

    #[test]
    fn rejects_overlap_and_empty() {
        let mut t = SplayTree::new();
        assert!(t.insert(100, 50));
        assert!(!t.insert(100, 50), "duplicate start");
        assert!(!t.insert(149, 1), "tail overlap");
        assert!(!t.insert(90, 20), "head overlap");
        assert!(!t.insert(90, 200), "containing overlap");
        assert!(!t.insert(120, 4), "inner overlap");
        assert!(!t.insert(40, 0), "empty range");
        assert!(t.insert(150, 1), "adjacent after is fine");
        assert!(t.insert(99, 1), "adjacent before is fine");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn remove_restores_space() {
        let mut t = SplayTree::new();
        assert!(t.insert(100, 50));
        assert!(t.insert(200, 50));
        assert_eq!(t.remove(100), Some((100, 150)));
        assert_eq!(t.remove(100), None);
        assert_eq!(t.lookup(120), None);
        assert_eq!(t.lookup(220), Some((200, 250)));
        assert!(t.insert(100, 50), "reinsert after remove");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_root_with_both_children() {
        let mut t = SplayTree::new();
        for s in [500u64, 300, 700, 200, 400, 600, 800] {
            assert!(t.insert(s, 10));
        }
        assert_eq!(t.remove(500), Some((500, 510)));
        assert_eq!(t.len(), 6);
        for s in [300u64, 700, 200, 400, 600, 800] {
            assert_eq!(t.lookup(s + 5), Some((s, s + 10)), "start {s}");
        }
        assert_eq!(t.lookup(505), None);
    }

    #[test]
    fn iter_ranges_is_sorted() {
        let mut t = SplayTree::new();
        let starts = [50u64, 10, 90, 30, 70, 20, 60];
        for s in starts {
            assert!(t.insert(s, 5));
        }
        let v = t.iter_ranges();
        let mut sorted: Vec<u64> = starts.to_vec();
        sorted.sort_unstable();
        assert_eq!(v.iter().map(|r| r.0).collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn overflow_range_rejected() {
        let mut t = SplayTree::new();
        assert!(!t.insert(u64::MAX - 1, 5));
        assert!(t.insert(u64::MAX - 5, 5));
        assert_eq!(t.lookup(u64::MAX - 1), Some((u64::MAX - 5, u64::MAX)));
    }

    #[test]
    fn repeated_lookup_splays_to_root() {
        // Not directly observable, but exercise heavy repeated lookups to
        // catch any splay corruption.
        let mut t = SplayTree::new();
        for i in 0..1000u64 {
            assert!(t.insert(i * 16, 16));
        }
        for _ in 0..10 {
            for i in (0..1000u64).rev() {
                assert_eq!(t.lookup(i * 16 + 8), Some((i * 16, i * 16 + 16)));
            }
        }
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn lookup_hits_predecessor_behind_successor_root() {
        // Regression: a right-leaning tree where splay(key) leaves the
        // successor at the root and the containing range in the left
        // subtree.
        let mut t = SplayTree::new();
        assert!(t.insert(10, 15)); // [10, 25)
        assert!(t.insert(30, 5)); // [30, 35)
                                  // Force 30 toward the root.
        assert_eq!(t.lookup(30), Some((30, 35)));
        // Now search between the two ranges' starts but inside [10, 25).
        assert_eq!(t.lookup(20), Some((10, 25)));
        // And a miss strictly between the ranges.
        assert_eq!(t.lookup(27), None);
        // Tree is still consistent afterwards.
        assert_eq!(t.lookup(32), Some((30, 35)));
        assert_eq!(t.iter_ranges(), vec![(10, 25), (30, 35)]);
    }

    #[test]
    fn randomized_against_model() {
        // Deterministic pseudo-random workload cross-checked against a
        // Vec-based model.
        let mut t = SplayTree::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x12345678u64;
        let mut rng = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let op = rng() % 3;
            let start = (rng() % 1000) * 8;
            let len = rng() % 64 + 1;
            match op {
                0 => {
                    let overlaps = model.iter().any(|&(s, e)| s < start + len && start < e);
                    let ok = t.insert(start, len);
                    assert_eq!(ok, !overlaps, "insert [{start}, {})", start + len);
                    if ok {
                        model.push((start, start + len));
                    }
                }
                1 => {
                    let addr = rng() % 8200;
                    let expected = model.iter().copied().find(|&(s, e)| s <= addr && addr < e);
                    assert_eq!(t.lookup(addr), expected, "lookup {addr}");
                }
                _ => {
                    let expected = model.iter().position(|&(s, _)| s == start);
                    let got = t.remove(start);
                    match expected {
                        Some(i) => {
                            assert_eq!(got, Some(model[i]));
                            model.swap_remove(i);
                        }
                        None => assert_eq!(got, None),
                    }
                }
            }
            assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn find_agrees_with_lookup_and_preserves_shape() {
        let mut t = SplayTree::new();
        for i in 0..512u64 {
            assert!(t.insert(i * 32, 16));
        }
        // `find` must agree with `lookup` on hits, misses between ranges,
        // and misses outside the keyspace — without mutating the tree.
        let ranges = t.iter_ranges();
        let root_before = t.root;
        for addr in [0u64, 8, 15, 16, 31, 4000, 4008, 4016, 511 * 32 + 15, 16384] {
            let expect = ranges.iter().copied().find(|&(s, e)| s <= addr && addr < e);
            assert_eq!(t.find(addr), expect, "addr {addr}");
        }
        assert_eq!(t.root, root_before, "find restructured the tree");
        assert_eq!(t.iter_ranges(), ranges);
    }

    #[test]
    fn only_range_tracks_singleton_state() {
        let mut t = SplayTree::new();
        assert_eq!(t.only_range(), None);
        assert!(t.insert(0x1000, 64));
        assert_eq!(t.only_range(), Some((0x1000, 0x1040)));
        assert!(t.insert(0x2000, 64));
        assert_eq!(t.only_range(), None);
        assert_eq!(t.remove(0x1000), Some((0x1000, 0x1040)));
        assert_eq!(t.only_range(), Some((0x2000, 0x2040)));
        t.clear();
        assert_eq!(t.only_range(), None);
    }

    #[test]
    fn clear_empties() {
        let mut t = SplayTree::new();
        t.insert(1, 1);
        t.insert(10, 1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup(1), None);
        assert!(t.insert(1, 1));
    }
}
