//! Epoch-published shared metapool metadata (DESIGN.md §4.9).
//!
//! A multi-vCPU machine shares pool-level object metadata across vCPUs.
//! The write side (object registration and drop) is rare compared to the
//! read side (every checked load), so the lookup structures are split the
//! RCU way:
//!
//! * The **authoritative interval set** lives behind a mutex and is only
//!   touched by registrations and drops.
//! * Every mutation **publishes** a fresh, immutable [`PlaneSnapshot`] —
//!   a sorted interval list plus a page-granular index per pool — and
//!   then bumps the plane epoch with `Release` ordering.
//! * Readers never take the lock on the steady state: one `Acquire` load
//!   of the epoch validates their cached `Arc<PlaneSnapshot>`; only when
//!   the epoch moved do they briefly lock to swap in the new snapshot.
//! * Reclamation is deferred until every vCPU quiesces: a superseded
//!   snapshot stays alive for exactly as long as some reader still holds
//!   its `Arc`, and [`SharedMetaPlane::retired_live`] counts the
//!   snapshots still pinned that way.
//!
//! The stale-read hazard this design must exclude: a checked load served
//! from metadata that a concurrent drop already retired (a missed
//! use-after-free). Two mechanisms close it — the epoch validates the
//! snapshot before every answer, and the per-vCPU MRU entries in
//! [`crate::metapool::MetaPool`] are epoch-tagged so a cache line filled
//! under epoch E is dead the moment the plane publishes E+1.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

use crate::check::{CheckError, CheckKind};

/// Page granularity of the snapshot index (4 KiB, matching the VM).
const PAGE_SHIFT: u64 = 12;

/// Ranges spanning more than this many pages stay out of the page index;
/// while any such range is live in a pool, a page miss is not definitive
/// and falls through to the interval walk.
const MAX_INDEXED_PAGES: u64 = 64;

/// Which layer of a snapshot answered a lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlaneLayer {
    /// The page-granular index answered (hit, or definitive miss).
    Page,
    /// The sorted interval list was searched (the splay-snapshot walk).
    Walk,
}

/// Immutable published view of one pool's live intervals.
#[derive(Debug, Default)]
struct PoolSnap {
    /// Live ranges `(start, end)`, ascending by start, disjoint.
    ranges: Vec<(u64, u64)>,
    /// Page number → indices into `ranges` of ranges touching that page.
    page_index: HashMap<u64, Vec<u32>>,
    /// Ranges too large for the page index; while nonzero a page miss
    /// must fall through to the interval walk.
    unindexed: u32,
}

impl PoolSnap {
    fn build(intervals: &BTreeMap<u64, u64>) -> PoolSnap {
        let ranges: Vec<(u64, u64)> = intervals.iter().map(|(&s, &e)| (s, e)).collect();
        let mut page_index: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut unindexed = 0u32;
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let pages = ((end - 1) >> PAGE_SHIFT) - (start >> PAGE_SHIFT) + 1;
            if pages > MAX_INDEXED_PAGES {
                unindexed += 1;
                continue;
            }
            for page in (start >> PAGE_SHIFT)..=((end - 1) >> PAGE_SHIFT) {
                page_index.entry(page).or_default().push(i as u32);
            }
        }
        PoolSnap {
            ranges,
            page_index,
            unindexed,
        }
    }

    /// Lookup against the immutable snapshot: page index first, interval
    /// binary search only when the index cannot prove the answer.
    fn lookup(&self, addr: u64) -> (Option<(u64, u64)>, PlaneLayer) {
        let page = addr >> PAGE_SHIFT;
        let mut hit = None;
        if let Some(candidates) = self.page_index.get(&page) {
            hit = candidates
                .iter()
                .map(|&i| self.ranges[i as usize])
                .find(|&(start, end)| start <= addr && addr < end);
        }
        if hit.is_some() || self.unindexed == 0 {
            return (hit, PlaneLayer::Page);
        }
        // Interval walk over the sorted list (the non-restructuring
        // "splay snapshot": binary search by start, then a containment
        // test — immutable, so safe to share without locks).
        let found = match self.ranges.partition_point(|&(s, _)| s <= addr) {
            0 => None,
            i => {
                let (start, end) = self.ranges[i - 1];
                (start <= addr && addr < end).then_some((start, end))
            }
        };
        (found, PlaneLayer::Walk)
    }
}

/// One immutable published generation of the whole plane.
#[derive(Debug)]
pub struct PlaneSnapshot {
    /// The epoch this snapshot was published at.
    pub epoch: u64,
    pools: Vec<Arc<PoolSnap>>,
}

impl PlaneSnapshot {
    /// Lookup `addr` in pool `idx`. Returns the containing range (if
    /// any) and which snapshot layer answered.
    pub fn lookup(&self, idx: u32, addr: u64) -> (Option<(u64, u64)>, PlaneLayer) {
        match self.pools.get(idx as usize) {
            Some(p) => p.lookup(addr),
            None => (None, PlaneLayer::Page),
        }
    }

    /// Live ranges of pool `idx` in this snapshot, ascending.
    pub fn ranges(&self, idx: u32) -> Vec<(u64, u64)> {
        self.pools
            .get(idx as usize)
            .map(|p| p.ranges.clone())
            .unwrap_or_default()
    }

    /// Number of live objects in pool `idx`.
    pub fn live_objects(&self, idx: u32) -> usize {
        self.pools.get(idx as usize).map_or(0, |p| p.ranges.len())
    }
}

/// Authoritative (publisher-side) state, only touched under the mutex.
#[derive(Debug)]
struct PlaneInner {
    /// Per pool: start → end of every live interval.
    pools: Vec<BTreeMap<u64, u64>>,
    /// The currently published snapshot.
    current: Arc<PlaneSnapshot>,
    /// Superseded snapshots, kept as weak refs so tests and diagnostics
    /// can observe deferred reclamation (an upgradeable weak means some
    /// reader still pins that generation).
    retired: Vec<Weak<PlaneSnapshot>>,
}

/// The shared, epoch-published metapool metadata plane.
///
/// Cheap to share (`Arc<SharedMetaPlane>`); all methods take `&self`.
#[derive(Debug)]
pub struct SharedMetaPlane {
    /// Epoch of the currently published snapshot. `Release`-stored after
    /// the snapshot swap, `Acquire`-loaded by readers, so a reader that
    /// observes epoch E also observes the snapshot that published it.
    epoch: AtomicU64,
    inner: Mutex<PlaneInner>,
}

impl Default for SharedMetaPlane {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedMetaPlane {
    /// An empty plane at epoch 0 with no pools.
    pub fn new() -> SharedMetaPlane {
        SharedMetaPlane {
            epoch: AtomicU64::new(0),
            inner: Mutex::new(PlaneInner {
                pools: Vec::new(),
                current: Arc::new(PlaneSnapshot {
                    epoch: 0,
                    pools: Vec::new(),
                }),
                retired: Vec::new(),
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, PlaneInner> {
        // A poisoned mutex means another vCPU thread panicked mid-publish;
        // the authoritative state is only mutated *before* the snapshot
        // swap, so the data is coherent — recover it.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds a pool slot, returning its plane index. Publishes.
    pub fn add_pool(&self) -> u32 {
        let mut g = self.locked();
        g.pools.push(BTreeMap::new());
        let idx = (g.pools.len() - 1) as u32;
        self.publish(&mut g);
        idx
    }

    /// Bulk-adopts boot-time ranges into pool `idx` with a single
    /// publish (machine bring-up: vCPU 0's booted pool state becomes the
    /// shared truth). Ranges must be disjoint; overlaps are rejected.
    pub fn adopt(&self, idx: u32, ranges: &[(u64, u64)]) -> Result<(), CheckError> {
        let mut g = self.locked();
        for &(start, end) in ranges {
            Self::insert_checked(&mut g, idx, start, end.saturating_sub(start).max(1))?;
        }
        self.publish(&mut g);
        Ok(())
    }

    fn insert_checked(g: &mut PlaneInner, idx: u32, addr: u64, len: u64) -> Result<(), CheckError> {
        let pool = g
            .pools
            .get_mut(idx as usize)
            .ok_or_else(|| plane_err(idx, CheckKind::BadRegistration, addr, "unknown pool slot"))?;
        let end = addr + len;
        // Overlap: the nearest interval starting at or below `addr` must
        // end by `addr`, and the next interval must start at or past `end`.
        if let Some((&ps, &pe)) = pool.range(..=addr).next_back() {
            if pe > addr {
                return Err(plane_err(
                    idx,
                    CheckKind::BadRegistration,
                    addr,
                    format!("overlaps live object [{ps:#x}, {pe:#x})"),
                ));
            }
        }
        if let Some((&ns, _)) = pool.range(addr..).next() {
            if ns < end {
                return Err(plane_err(
                    idx,
                    CheckKind::BadRegistration,
                    addr,
                    format!("overlaps live object starting at {ns:#x}"),
                ));
            }
        }
        pool.insert(addr, end);
        Ok(())
    }

    /// Registers `[addr, addr+len)` in pool `idx` and publishes a new
    /// epoch. Overlap with a live object is a bad registration, exactly
    /// as on the private path.
    pub fn register(&self, idx: u32, addr: u64, len: u64) -> Result<(), CheckError> {
        let mut g = self.locked();
        Self::insert_checked(&mut g, idx, addr, len.max(1))?;
        self.publish(&mut g);
        Ok(())
    }

    /// Drops the object starting at `addr` from pool `idx` and publishes
    /// a new epoch. A non-live or interior address is an illegal free.
    pub fn drop_obj(&self, idx: u32, addr: u64) -> Result<(u64, u64), CheckError> {
        let mut g = self.locked();
        let pool = g
            .pools
            .get_mut(idx as usize)
            .ok_or_else(|| plane_err(idx, CheckKind::IllegalFree, addr, "unknown pool slot"))?;
        match pool.remove(&addr) {
            Some(end) => {
                self.publish(&mut g);
                Ok((addr, end))
            }
            None => Err(plane_err(
                idx,
                CheckKind::IllegalFree,
                addr,
                "object not live at this address",
            )),
        }
    }

    /// Removes every object from pool `idx` (pool destruction).
    pub fn clear_pool(&self, idx: u32) {
        let mut g = self.locked();
        if let Some(p) = g.pools.get_mut(idx as usize) {
            if p.is_empty() {
                return;
            }
            p.clear();
            self.publish(&mut g);
        }
    }

    /// Fault injection: deregisters one live object of pool `idx`
    /// (chosen by `seed`) and re-registers only its first half, then
    /// publishes — the shared-plane counterpart of
    /// `MetaPool::inject_corrupt_metadata`.
    pub fn corrupt(&self, idx: u32, seed: u64) -> bool {
        let mut g = self.locked();
        let Some(pool) = g.pools.get_mut(idx as usize) else {
            return false;
        };
        if pool.is_empty() {
            return false;
        }
        let keys: Vec<u64> = pool.keys().copied().collect();
        let start = keys[(seed as usize) % keys.len()];
        let end = pool.remove(&start).unwrap_or(start);
        let len = end.saturating_sub(start);
        if len > 1 {
            pool.insert(start, start + len / 2);
        }
        self.publish(&mut g);
        true
    }

    /// Publishes the authoritative state as a new immutable snapshot and
    /// then bumps the epoch (Release). Caller holds the lock.
    fn publish(&self, g: &mut PlaneInner) {
        let epoch = g.current.epoch + 1;
        let pools = g
            .pools
            .iter()
            .map(|p| Arc::new(PoolSnap::build(p)))
            .collect();
        let old = std::mem::replace(&mut g.current, Arc::new(PlaneSnapshot { epoch, pools }));
        g.retired.push(Arc::downgrade(&old));
        g.retired.retain(|w| w.strong_count() > 0);
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The current epoch (`Acquire`). One atomic load — this is the only
    /// synchronization a steady-state reader performs per lookup.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The currently published snapshot (readers call this only after an
    /// epoch mismatch; steady state never locks).
    pub fn snapshot(&self) -> Arc<PlaneSnapshot> {
        self.locked().current.clone()
    }

    /// Superseded snapshots still pinned by some reader — the deferred
    /// reclamation window. Returns to 0 once every vCPU has refreshed
    /// (quiesced) past the publishes that retired them.
    pub fn retired_live(&self) -> usize {
        let mut g = self.locked();
        g.retired.retain(|w| w.strong_count() > 0);
        g.retired.len()
    }
}

fn plane_err(idx: u32, kind: CheckKind, addr: u64, detail: impl Into<String>) -> CheckError {
    CheckError {
        kind,
        pool: format!("shared{idx}"),
        addr,
        detail: detail.into(),
    }
}

/// A per-vCPU read handle: caches the snapshot `Arc` and refreshes it
/// only when the plane epoch moves. [`crate::metapool::MetaPool`] embeds
/// one per shared-bound pool; standalone readers (tests, diagnostics)
/// can use it directly.
#[derive(Clone, Debug)]
pub struct PlaneReader {
    plane: Arc<SharedMetaPlane>,
    snap: Arc<PlaneSnapshot>,
    /// Epoch-change refreshes this reader performed (diagnostics).
    pub refreshes: u64,
}

impl PlaneReader {
    /// A reader pinned to the plane's current snapshot.
    pub fn new(plane: Arc<SharedMetaPlane>) -> PlaneReader {
        let snap = plane.snapshot();
        PlaneReader {
            plane,
            snap,
            refreshes: 0,
        }
    }

    /// The plane this reader is attached to.
    pub fn plane(&self) -> &Arc<SharedMetaPlane> {
        &self.plane
    }

    /// The epoch of the pinned snapshot.
    pub fn pinned_epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// Validates the pinned snapshot against the plane epoch, refreshing
    /// if it moved. Returns the epoch now pinned. Steady state is one
    /// `Acquire` load and a compare; the lock is taken only on change.
    pub fn pin(&mut self) -> u64 {
        let cur = self.plane.epoch();
        if cur != self.snap.epoch {
            self.snap = self.plane.snapshot();
            self.refreshes += 1;
        }
        self.snap.epoch
    }

    /// Epoch-validated lookup: pins the current epoch, then answers from
    /// the immutable snapshot. The answer is guaranteed to come from a
    /// snapshot at least as new as any publish that happened-before this
    /// call — a drop that published epoch E+1 can never be answered from
    /// epoch E here.
    pub fn lookup(&mut self, idx: u32, addr: u64) -> (Option<(u64, u64)>, PlaneLayer) {
        self.pin();
        self.snap.lookup(idx, addr)
    }

    /// Live ranges of pool `idx` at the pinned epoch (refreshes first).
    pub fn ranges(&mut self, idx: u32) -> Vec<(u64, u64)> {
        self.pin();
        self.snap.ranges(idx)
    }

    /// Live objects of pool `idx` at the pinned epoch (refreshes first).
    pub fn live_objects(&mut self, idx: u32) -> usize {
        self.pin();
        self.snap.live_objects(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_drop_publishes_epochs() {
        let plane = Arc::new(SharedMetaPlane::new());
        let mp = plane.add_pool();
        assert_eq!(plane.epoch(), 1);
        plane.register(mp, 0x1000, 64).unwrap();
        assert_eq!(plane.epoch(), 2);
        let mut r = PlaneReader::new(plane.clone());
        assert_eq!(r.lookup(mp, 0x1020).0, Some((0x1000, 0x1040)));
        assert_eq!(r.lookup(mp, 0x2000).0, None);
        plane.drop_obj(mp, 0x1000).unwrap();
        assert_eq!(plane.epoch(), 3);
        // The reader's next lookup revalidates the epoch and must miss.
        assert_eq!(r.lookup(mp, 0x1020).0, None);
        assert_eq!(r.refreshes, 1);
    }

    #[test]
    fn overlap_and_illegal_free_rejected() {
        let plane = SharedMetaPlane::new();
        let mp = plane.add_pool();
        plane.register(mp, 0x1000, 64).unwrap();
        let e = plane.register(mp, 0x1020, 8).unwrap_err();
        assert_eq!(e.kind, CheckKind::BadRegistration);
        let e = plane.register(mp, 0xfff, 8).unwrap_err();
        assert_eq!(e.kind, CheckKind::BadRegistration);
        // Abutting ranges are legal.
        plane.register(mp, 0x1040, 16).unwrap();
        let e = plane.drop_obj(mp, 0x1010).unwrap_err();
        assert_eq!(e.kind, CheckKind::IllegalFree);
        let e = plane.drop_obj(mp, 0x9000).unwrap_err();
        assert_eq!(e.kind, CheckKind::IllegalFree);
    }

    #[test]
    fn unindexed_huge_objects_fall_through_to_the_walk() {
        let plane = Arc::new(SharedMetaPlane::new());
        let mp = plane.add_pool();
        plane.register(mp, 0x10_0000, 0x10_0000).unwrap(); // 256 pages
        plane.register(mp, 0x1000, 64).unwrap();
        let mut r = PlaneReader::new(plane.clone());
        let (hit, layer) = r.lookup(mp, 0x18_0000);
        assert_eq!(hit, Some((0x10_0000, 0x20_0000)));
        assert_eq!(layer, PlaneLayer::Walk);
        // Small object still answered by the page index.
        let (hit, layer) = r.lookup(mp, 0x1010);
        assert_eq!(hit, Some((0x1000, 0x1040)));
        assert_eq!(layer, PlaneLayer::Page);
        // A miss cannot be proven by the index while the huge object
        // lives, so it walks — and still misses.
        let (hit, layer) = r.lookup(mp, 0x50_0000);
        assert_eq!(hit, None);
        assert_eq!(layer, PlaneLayer::Walk);
    }

    #[test]
    fn deferred_reclamation_tracks_pinned_readers() {
        let plane = Arc::new(SharedMetaPlane::new());
        let mp = plane.add_pool();
        plane.register(mp, 0x1000, 64).unwrap();
        let mut r1 = PlaneReader::new(plane.clone());
        let mut r2 = PlaneReader::new(plane.clone());
        r1.pin();
        r2.pin();
        // A publish retires the snapshot both readers pin.
        plane.register(mp, 0x2000, 64).unwrap();
        assert_eq!(plane.retired_live(), 1);
        // One reader quiesces: the old generation is still pinned.
        r1.pin();
        assert_eq!(plane.retired_live(), 1);
        // Both quiesced: reclaimed.
        r2.pin();
        assert_eq!(plane.retired_live(), 0);
    }

    #[test]
    fn concurrent_readers_never_see_stale_epoch_answers() {
        // Writers register/drop a churn object while readers hammer
        // lookups; each lookup asserts the answering snapshot is at
        // least as new as the epoch observed before the call.
        let plane = Arc::new(SharedMetaPlane::new());
        let mp = plane.add_pool();
        plane.register(mp, 0x1000, 64).unwrap(); // stable object
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let writer = {
                let plane = plane.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        plane.register(mp, 0x8000, 32).unwrap();
                        plane.drop_obj(mp, 0x8000).unwrap();
                    }
                    stop.store(1, Ordering::Release);
                })
            };
            for _ in 0..3 {
                let plane = plane.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut r = PlaneReader::new(plane.clone());
                    while stop.load(Ordering::Acquire) == 0 {
                        let before = plane.epoch();
                        r.pin();
                        assert!(r.pinned_epoch() >= before, "stale snapshot pinned");
                        // The stable object is always visible; the churn
                        // object may or may not be, but an answer from an
                        // old epoch is impossible per the assert above.
                        let (hit, _) = r.lookup(mp, 0x1010);
                        assert_eq!(hit, Some((0x1000, 0x1040)));
                    }
                    // Writer quiesced: the churn object was dropped last,
                    // so it must now be invisible — a stale hit here
                    // would be a missed use-after-free.
                    assert_eq!(r.lookup(mp, 0x8010).0, None);
                });
            }
            writer.join().unwrap();
        });
    }
}
