//! Pool-allocator page policy (paper §4.4).
//!
//! Two of the kernel-allocator porting requirements are enforceable at run
//! time and live here:
//!
//! 1. *Alignment*: a type-homogeneous pool must hand out objects aligned at
//!    multiples of the type size, so a dangling pointer can never observe a
//!    type-confused view of a newly reused slot.
//! 2. *No cross-pool page release*: a pool may reuse memory internally but
//!    must not release its page frames for use by other metapools until the
//!    metapool is destroyed (the `SLAB_NO_REAP` analog in paper §6.2).
//!
//! [`PagePolicy`] tracks page-frame ownership per metapool and rejects
//! violating transfers; the kernel allocators in `sva-kernel` route all
//! page acquisition/release through it.

use std::collections::HashMap;

use crate::metapool::MetaPoolId;

/// Page size of the virtual machine (4 KiB, like the paper's x86 target).
pub const PAGE_SIZE: u64 = 4096;

/// Errors raised by the page policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A page was claimed by a metapool while still owned by another live
    /// metapool — the reuse pattern that makes dangling pointers dangerous.
    CrossPoolReuse {
        /// The page frame number.
        page: u64,
        /// Current owner.
        owner: MetaPoolId,
        /// Claimant.
        claimant: MetaPoolId,
    },
    /// An object was carved out of a page the pool does not own.
    UnownedPage {
        /// The page frame number.
        page: u64,
        /// The pool that tried to allocate from it.
        pool: MetaPoolId,
    },
    /// A TH pool produced an object whose offset is not a multiple of the
    /// element size.
    Misaligned {
        /// Object address.
        addr: u64,
        /// Required alignment (the element size).
        align: u64,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::CrossPoolReuse {
                page,
                owner,
                claimant,
            } => write!(
                f,
                "page {page:#x} released to metapool {} while owned by live metapool {}",
                claimant.0, owner.0
            ),
            PoolError::UnownedPage { page, pool } => {
                write!(
                    f,
                    "metapool {} allocated from unowned page {page:#x}",
                    pool.0
                )
            }
            PoolError::Misaligned { addr, align } => {
                write!(f, "TH object at {addr:#x} not aligned to type size {align}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// Tracks which metapool owns each page frame.
#[derive(Clone, Debug, Default)]
pub struct PagePolicy {
    owners: HashMap<u64, MetaPoolId>,
}

impl PagePolicy {
    /// Creates an empty policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of owned pages.
    pub fn owned_pages(&self) -> usize {
        self.owners.len()
    }

    /// Claims the pages overlapping `[addr, addr + len)` for `pool`.
    ///
    /// Claiming pages the pool already owns is a no-op; claiming pages owned
    /// by a *different* live pool is the §4.4 violation this policy exists
    /// to prevent.
    pub fn claim(&mut self, pool: MetaPoolId, addr: u64, len: u64) -> Result<(), PoolError> {
        for page in pages(addr, len) {
            match self.owners.get(&page) {
                Some(&owner) if owner != pool => {
                    return Err(PoolError::CrossPoolReuse {
                        page,
                        owner,
                        claimant: pool,
                    });
                }
                _ => {
                    self.owners.insert(page, pool);
                }
            }
        }
        Ok(())
    }

    /// Verifies that `pool` owns every page under `[addr, addr + len)`
    /// (used when an allocator carves an object out of its pages).
    pub fn check_carve(&self, pool: MetaPoolId, addr: u64, len: u64) -> Result<(), PoolError> {
        for page in pages(addr, len) {
            if self.owners.get(&page) != Some(&pool) {
                return Err(PoolError::UnownedPage { page, pool });
            }
        }
        Ok(())
    }

    /// Releases all pages of a destroyed metapool back to the free pool.
    /// Only at this point may other metapools reuse the memory.
    pub fn destroy_pool(&mut self, pool: MetaPoolId) -> u64 {
        let before = self.owners.len();
        self.owners.retain(|_, &mut owner| owner != pool);
        (before - self.owners.len()) as u64
    }

    /// The owner of the page containing `addr`, if any.
    pub fn owner_of(&self, addr: u64) -> Option<MetaPoolId> {
        self.owners.get(&(addr / PAGE_SIZE)).copied()
    }
}

/// Checks the TH alignment constraint for an object at `addr` carved from a
/// pool base at `base` with element size `elem`.
pub fn check_th_alignment(base: u64, addr: u64, elem: u64) -> Result<(), PoolError> {
    if elem == 0 {
        return Ok(());
    }
    if (addr - base).is_multiple_of(elem) {
        Ok(())
    } else {
        Err(PoolError::Misaligned { addr, align: elem })
    }
}

fn pages(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / PAGE_SIZE;
    let last = if len == 0 {
        first
    } else {
        (addr + len - 1) / PAGE_SIZE
    };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: MetaPoolId = MetaPoolId(0);
    const B: MetaPoolId = MetaPoolId(1);

    #[test]
    fn claim_and_recline_same_pool_ok() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x1000, PAGE_SIZE * 2).unwrap();
        p.claim(A, 0x1000, PAGE_SIZE).unwrap();
        assert_eq!(p.owned_pages(), 2); // [0x1000, 0x3000) spans pages 1..=2
        assert_eq!(p.owner_of(0x1234), Some(A));
    }

    #[test]
    fn cross_pool_reuse_rejected() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x1000, PAGE_SIZE).unwrap();
        let err = p.claim(B, 0x1000, 8).unwrap_err();
        assert!(
            matches!(err, PoolError::CrossPoolReuse { owner: x, claimant: y, .. } if x == A && y == B)
        );
    }

    #[test]
    fn destroy_releases_pages_for_reuse() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x1000, PAGE_SIZE).unwrap();
        let released = p.destroy_pool(A);
        assert_eq!(released, 1);
        p.claim(B, 0x1000, 8).unwrap();
        assert_eq!(p.owner_of(0x1000), Some(B));
    }

    #[test]
    fn carve_requires_ownership() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x2000, PAGE_SIZE).unwrap();
        p.check_carve(A, 0x2100, 64).unwrap();
        assert!(p.check_carve(B, 0x2100, 64).is_err());
        assert!(p.check_carve(A, 0x9000, 8).is_err());
    }

    #[test]
    fn th_alignment() {
        check_th_alignment(0x1000, 0x1000, 24).unwrap();
        check_th_alignment(0x1000, 0x1000 + 48, 24).unwrap();
        let err = check_th_alignment(0x1000, 0x1000 + 25, 24).unwrap_err();
        assert!(matches!(err, PoolError::Misaligned { .. }));
        check_th_alignment(0x1000, 0x1007, 0).unwrap();
    }

    #[test]
    fn multi_page_claim_and_destroy_counts_all() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x10000, PAGE_SIZE * 8).unwrap();
        assert_eq!(p.owned_pages(), 8);
        assert_eq!(p.destroy_pool(A), 8);
        assert_eq!(p.owned_pages(), 0);
    }

    #[test]
    fn destroy_only_releases_own_pages() {
        let mut p = PagePolicy::new();
        p.claim(A, 0x1000, PAGE_SIZE).unwrap();
        p.claim(B, 0x5000, PAGE_SIZE).unwrap();
        assert_eq!(p.destroy_pool(A), 1);
        assert_eq!(p.owner_of(0x5000), Some(B));
        assert_eq!(p.owner_of(0x1000), None);
    }

    #[test]
    fn partial_page_overlap_across_pools_rejected() {
        let mut p = PagePolicy::new();
        // A owns bytes near the end of page 1; B claiming the *start* of
        // the same page must still be rejected — the unit of exclusion is
        // a page (the SLAB_NO_REAP discipline, paper §6.2).
        p.claim(A, 0x1ff0, 8).unwrap();
        assert!(p.claim(B, 0x1000, 8).is_err());
    }

    #[test]
    fn page_span_computation() {
        let v: Vec<u64> = pages(PAGE_SIZE - 1, 2).collect();
        assert_eq!(v, vec![0, 1]);
        let v: Vec<u64> = pages(0, 0).collect();
        assert_eq!(v, vec![0]);
        let v: Vec<u64> = pages(PAGE_SIZE, PAGE_SIZE).collect();
        assert_eq!(v, vec![1]);
    }
}
