//! Static safety metrics — the paper's Table 9.
//!
//! For each memory access in the analyzed portion of the kernel, classify
//! the accessed partition: *incomplete* (only reduced checks possible) and
//! *type-safe* (type-homogeneous — the strongest guarantee). Accesses are
//! split the way the paper splits them: loads, stores, structure indexing
//! and array indexing (buffer overflows live in the last category).

use std::collections::HashMap;

use sva_ir::{FuncId, Inst, Module, Operand, Type};

use crate::analyze::AnalysisResult;

/// The four access categories of Table 9.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// `struct.field` indexing (`getelementptr` into a struct).
    StructIndex,
    /// `array[index]` indexing (`getelementptr` with a non-constant or
    /// array-walking index).
    ArrayIndex,
}

impl AccessKind {
    /// All categories in table order.
    pub const ALL: [AccessKind; 4] = [
        AccessKind::Load,
        AccessKind::Store,
        AccessKind::StructIndex,
        AccessKind::ArrayIndex,
    ];

    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Load => "Loads",
            AccessKind::Store => "Stores",
            AccessKind::StructIndex => "Structure Indexing",
            AccessKind::ArrayIndex => "Array Indexing",
        }
    }
}

/// Counters for one access category.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct AccessCounts {
    /// Total static occurrences.
    pub total: u64,
    /// Occurrences whose partition is incomplete.
    pub incomplete: u64,
    /// Occurrences whose partition is type-homogeneous.
    pub type_safe: u64,
}

impl AccessCounts {
    /// Percentage of incomplete accesses (0 when empty).
    pub fn pct_incomplete(&self) -> f64 {
        pct(self.incomplete, self.total)
    }

    /// Percentage of type-safe accesses (0 when empty).
    pub fn pct_type_safe(&self) -> f64 {
        pct(self.type_safe, self.total)
    }
}

fn pct(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

/// The full static metrics block (Table 9 for one kernel configuration).
#[derive(Clone, Debug, Default)]
pub struct StaticMetrics {
    /// Per-category counters.
    pub counts: HashMap<AccessKind, AccessCounts>,
    /// Allocation sites attributed to partitions.
    pub alloc_sites_seen: u64,
    /// Allocation calls inside unanalyzed code.
    pub alloc_sites_unseen: u64,
    /// Number of (representative) partitions.
    pub partitions: u64,
    /// Partitions that are type-homogeneous.
    pub th_partitions: u64,
    /// Partitions that are complete.
    pub complete_partitions: u64,
}

impl StaticMetrics {
    /// Percentage of allocation sites seen by the analysis.
    pub fn pct_alloc_seen(&self) -> f64 {
        pct(
            self.alloc_sites_seen,
            self.alloc_sites_seen + self.alloc_sites_unseen,
        )
    }

    /// Counters for one category (zero block if absent).
    pub fn of(&self, k: AccessKind) -> AccessCounts {
        self.counts.get(&k).copied().unwrap_or_default()
    }
}

/// Computes Table 9 metrics from an analysis result.
pub fn compute_metrics(m: &Module, r: &AnalysisResult) -> StaticMetrics {
    let mut out = StaticMetrics::default();
    for (fi, f) in m.funcs.iter().enumerate() {
        let fid = FuncId(fi as u32);
        if !r.analyzed[fi] {
            continue;
        }
        for (_, iid) in f.inst_order() {
            let inst = f.inst(iid);
            let (kind, ptr) = match inst {
                Inst::Load { ptr } => (AccessKind::Load, ptr),
                Inst::Store { ptr, .. } => (AccessKind::Store, ptr),
                Inst::Gep { base, indices } => (classify_gep(m, f, base, indices), base),
                _ => continue,
            };
            let entry = out.counts.entry(kind).or_default();
            entry.total += 1;
            let node = match ptr {
                Operand::Value(v) => r.value_node(fid, *v),
                Operand::Global(g) => Some(r.global_node(*g)),
                _ => None,
            };
            if let Some(n) = node {
                if !r.graph.is_complete(n) {
                    entry.incomplete += 1;
                }
                if r.graph.is_th(n) {
                    entry.type_safe += 1;
                }
            } else {
                // Null/undef accesses: counted as neither.
            }
        }
    }
    out.alloc_sites_seen = r.alloc_sites.len() as u64;
    out.alloc_sites_unseen = r.unseen_alloc_calls as u64;
    let reps = r.graph.reps();
    out.partitions = reps.len() as u64;
    for n in reps {
        if r.graph.is_th(n) {
            out.th_partitions += 1;
        }
        if r.graph.is_complete(n) {
            out.complete_partitions += 1;
        }
    }
    out
}

fn classify_gep(
    m: &Module,
    f: &sva_ir::Function,
    base: &Operand,
    indices: &[Operand],
) -> AccessKind {
    // The first index is array-style whenever it can be nonzero; walking
    // into a struct with a constant is structure indexing; walking into an
    // array is array indexing.
    let base_ty = f.operand_type(base, m);
    if !m.types.is_ptr(base_ty) {
        return AccessKind::ArrayIndex;
    }
    let mut cur = m.types.pointee(base_ty);
    let mut has_array = false;
    let mut has_struct = false;
    for (n, idx) in indices.iter().enumerate() {
        if n == 0 {
            if !matches!(idx, Operand::ConstInt(0, _)) {
                has_array = true;
            }
            continue;
        }
        match m.types.get(cur).clone() {
            Type::Array(e, _) => {
                has_array = true;
                cur = e;
            }
            Type::Struct(_) => {
                has_struct = true;
                if let Operand::ConstInt(v, _) = idx {
                    let fields = m.types.struct_fields(cur);
                    if (*v as usize) < fields.len() {
                        cur = fields[*v as usize];
                        continue;
                    }
                }
                return AccessKind::StructIndex;
            }
            _ => break,
        }
    }
    if has_array {
        AccessKind::ArrayIndex
    } else if has_struct {
        AccessKind::StructIndex
    } else {
        AccessKind::ArrayIndex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalysisConfig};
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{GlobalInit, Linkage};

    fn build_module() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        let arr = m.types.array(i32t, 8);
        let s = m.types.struct_type("rec", vec![i64t, arr]);
        let _g = m.add_global("recs", s, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![i64t], false);
        let f = m.add_function("touch", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let idx = b.param(0);
            let g = sva_ir::Operand::Global(sva_ir::GlobalId(0));
            // struct index: &recs.f0
            let fp = b.field_ptr(g, 0);
            let v = b.load(fp);
            // array index: &recs.f1[idx]
            let zero = b.c32(0);
            let one = b.c32(1);
            let ap = b.gep(g, vec![zero, one, idx]);
            let w = b.load(ap);
            let ww = b.zext(w, i64t);
            let sum = b.add(v, ww);
            b.store(sum, fp);
            b.ret(None);
        }
        (m, f)
    }

    #[test]
    fn counts_by_category() {
        let (m, _) = build_module();
        let r = analyze(&m, &AnalysisConfig::kernel());
        let metrics = compute_metrics(&m, &r);
        assert_eq!(metrics.of(AccessKind::Load).total, 2);
        assert_eq!(metrics.of(AccessKind::Store).total, 1);
        assert_eq!(metrics.of(AccessKind::StructIndex).total, 1);
        assert_eq!(metrics.of(AccessKind::ArrayIndex).total, 1);
    }

    #[test]
    fn complete_kernel_has_no_incomplete_accesses() {
        let (m, _) = build_module();
        let r = analyze(&m, &AnalysisConfig::kernel());
        let metrics = compute_metrics(&m, &r);
        for k in AccessKind::ALL {
            assert_eq!(metrics.of(k).incomplete, 0, "{k:?}");
        }
        assert_eq!(metrics.pct_alloc_seen(), 0.0, "no allocs at all");
    }

    #[test]
    fn percentages_behave() {
        let c = AccessCounts {
            total: 0,
            incomplete: 0,
            type_safe: 0,
        };
        assert_eq!(c.pct_incomplete(), 0.0);
        let c = AccessCounts {
            total: 4,
            incomplete: 1,
            type_safe: 2,
        };
        assert!((c.pct_incomplete() - 25.0).abs() < 1e-9);
        assert!((c.pct_type_safe() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn th_partitions_counted() {
        let (m, _) = build_module();
        let r = analyze(&m, &AnalysisConfig::kernel());
        let metrics = compute_metrics(&m, &r);
        assert!(metrics.partitions > 0);
        assert!(metrics.th_partitions > 0);
    }

    /// A module where the kernel passes a pointer into an *excluded*
    /// library and then dereferences it — the exact Table 9 mechanism:
    /// objects escaping into unanalyzed code make the kernel's own
    /// accesses incomplete.
    fn module_with_library() -> Module {
        let mut m = Module::new("t");
        let i64t = m.types.i64();
        let p64 = m.types.ptr(i64t);
        let cell = m.add_global("cell", i64t, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![p64], false);
        let lib = m.add_function("lib_fill", fty, Linkage::Public);
        let kty = m.types.func(i64t, vec![], false);
        let k = m.add_function("k_use", kty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, lib);
            let p = b.param(0);
            let one = b.c64(1);
            b.store(one, p);
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, k);
            b.call(lib, vec![sva_ir::Operand::Global(cell)]);
            let v = b.load(sva_ir::Operand::Global(cell));
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn exclusions_make_kernel_accesses_incomplete() {
        let m = module_with_library();
        // Entire kernel analyzed: nothing incomplete.
        let r = analyze(&m, &AnalysisConfig::kernel());
        let full = compute_metrics(&m, &r);
        assert_eq!(full.of(AccessKind::Load).incomplete, 0);
        // `lib_` excluded: the load through the shared slot is incomplete.
        let cfg = AnalysisConfig::kernel_excluding(&["lib_"]);
        let r = analyze(&m, &cfg);
        let part = compute_metrics(&m, &r);
        assert!(
            part.of(AccessKind::Load).incomplete > 0,
            "{:?}",
            part.of(AccessKind::Load)
        );
        // Excluded bodies themselves do not contribute accesses.
        assert!(part.of(AccessKind::Load).total <= full.of(AccessKind::Load).total);
    }

    #[test]
    fn excluded_bodies_are_not_counted() {
        let m = module_with_library();
        let cfg = AnalysisConfig::kernel_excluding(&["lib_"]);
        let r = analyze(&m, &cfg);
        let part = compute_metrics(&m, &r);
        // lib_fill's store must not show up in the metrics.
        assert_eq!(part.of(AccessKind::Store).total, 0, "{part:?}");
    }
}
