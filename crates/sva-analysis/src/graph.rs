//! The points-to graph: union-find nodes with unification.
//!
//! Each node represents one static partition of memory objects (paper
//! §4.3). Because the analysis is unification-based, merging two nodes also
//! merges their outgoing points-to edges, recursively. Like the paper's
//! DSA nodes, partitions are **field-sensitive**: a node whose element type
//! is a struct keeps one points-to *cell per top-level field* (arrays are
//! element-periodic and transparent), so the `size` field of an inode does
//! not alias its `data` pointer. Conflicting layouts collapse the fields
//! into a single cell, sacrificing precision but preserving soundness.
//!
//! Node type information drives the type-homogeneity inference: a node
//! whose observed element types all agree (up to "same type or array
//! thereof") keeps that type; conflicting observations *collapse* the
//! node.

use std::collections::BTreeSet;

use sva_ir::{FuncId, TypeId, TypeTable};

/// Handle of a points-to graph node. Always resolve through
/// [`PointsToGraph::find`] before comparing: merged nodes alias.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// Memory-class and analysis flags of a node (paper Fig. 2 legend:
/// H/S/G/F/U plus completeness).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct NodeFlags {
    /// Contains heap objects.
    pub heap: bool,
    /// Contains stack objects.
    pub stack: bool,
    /// Contains global objects.
    pub global: bool,
    /// Contains functions.
    pub func: bool,
    /// Contains values from unanalyzable sources (manufactured addresses).
    pub unknown: bool,
    /// Escapes to (or arrives from) code outside the analyzed portion.
    pub incomplete: bool,
    /// Is (or includes) the userspace pseudo-object (paper §4.6).
    pub userspace: bool,
    /// Objects of this node had their address stored into memory (or
    /// returned), so pointers to them may outlive the defining frame —
    /// drives stack-to-heap promotion (paper §4.3).
    pub stored: bool,
}

impl NodeFlags {
    fn merge(&mut self, o: &NodeFlags) {
        self.heap |= o.heap;
        self.stack |= o.stack;
        self.global |= o.global;
        self.func |= o.func;
        self.unknown |= o.unknown;
        self.incomplete |= o.incomplete;
        self.userspace |= o.userspace;
        self.stored |= o.stored;
    }

    /// One-letter-per-flag rendering (`HSGFU!u`), as in paper Fig. 2.
    pub fn letters(&self) -> String {
        let mut s = String::new();
        if self.global {
            s.push('G');
        }
        if self.heap {
            s.push('H');
        }
        if self.stack {
            s.push('S');
        }
        if self.func {
            s.push('F');
        }
        if self.unknown {
            s.push('U');
        }
        if self.incomplete {
            s.push('I');
        }
        if self.userspace {
            s.push('u');
        }
        s
    }
}

#[derive(Clone, Debug, Default)]
pub(crate) struct NodeData {
    pub flags: NodeFlags,
    /// Observed cell type, when consistent.
    pub elem_type: Option<TypeId>,
    /// Type information lost (conflicting observations).
    pub collapsed: bool,
    /// Outgoing points-to edges, one per top-level field ("cell").
    pub cells: std::collections::BTreeMap<u32, NodeId>,
    /// Field sensitivity lost: every cell folded into cell 0.
    pub fields_collapsed: bool,
    /// For pool-descriptor nodes: the node of the objects the pool hands
    /// out (an auxiliary edge so allocations from the same kernel pool land
    /// in the same partition, paper §4.3).
    pub pool_obj: Option<NodeId>,
    /// Functions contained in this node (indirect-call targets).
    pub functions: BTreeSet<FuncId>,
    /// Names of kernel allocators/pools feeding this node.
    pub pools: BTreeSet<String>,
    /// Count of allocation sites assigned to this node.
    pub alloc_sites: u32,
}

/// The unification-based points-to graph.
#[derive(Clone, Debug, Default)]
pub struct PointsToGraph {
    parent: Vec<u32>,
    nodes: Vec<NodeData>,
}

impl PointsToGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh, empty node.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.parent.len() as u32);
        self.parent.push(id.0);
        self.nodes.push(NodeData::default());
        id
    }

    /// Number of representative (live) nodes.
    pub fn num_reps(&self) -> usize {
        (0..self.parent.len() as u32)
            .filter(|&i| self.parent[i as usize] == i)
            .count()
    }

    /// Total allocated node slots (including merged-away ones).
    pub fn num_slots(&self) -> usize {
        self.parent.len()
    }

    /// Union-find root with path compression.
    pub fn find(&mut self, n: NodeId) -> NodeId {
        let mut r = n.0;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        // Path compression.
        let mut c = n.0;
        while self.parent[c as usize] != r {
            let next = self.parent[c as usize];
            self.parent[c as usize] = r;
            c = next;
        }
        NodeId(r)
    }

    /// Read-only find (no compression), for immutable contexts.
    pub fn find_ro(&self, n: NodeId) -> NodeId {
        let mut r = n.0;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        NodeId(r)
    }

    pub(crate) fn data(&mut self, n: NodeId) -> &mut NodeData {
        let r = self.find(n);
        &mut self.nodes[r.0 as usize]
    }

    pub(crate) fn data_ro(&self, n: NodeId) -> &NodeData {
        let r = self.find_ro(n);
        &self.nodes[r.0 as usize]
    }

    /// Merges two nodes (and, recursively, their pointees). Returns the
    /// representative.
    pub fn unify(&mut self, types: &TypeTable, a: NodeId, b: NodeId) -> NodeId {
        // Iterative worklist to handle pointee chains and cycles.
        let mut work = vec![(a, b)];
        let mut last = self.find(a);
        while let Some((a, b)) = work.pop() {
            last = self.unify_step(types, a, b, &mut work);
        }
        last
    }

    /// Type-less unify used internally by [`PointsToGraph::collapse_fields`]
    /// (cell folding cannot consult the type table; merged element types
    /// are reconciled conservatively by collapsing).
    fn unify_raw(&mut self, a: NodeId, b: NodeId, work: &mut Vec<(NodeId, NodeId)>) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Conflicting element types cannot be checked here; collapse types
        // when both sides carry one and they differ.
        let (keep, gone) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
        self.parent[gone.0 as usize] = keep.0;
        let gone_data = std::mem::take(&mut self.nodes[gone.0 as usize]);
        let keep_data = &mut self.nodes[keep.0 as usize];
        keep_data.flags.merge(&gone_data.flags);
        keep_data.functions.extend(gone_data.functions);
        keep_data.pools.extend(gone_data.pools);
        keep_data.alloc_sites += gone_data.alloc_sites;
        keep_data.collapsed |= gone_data.collapsed;
        // Conflicting element types cannot be reconciled without the type
        // table; collapse when both carry one and they differ.
        match (keep_data.elem_type, gone_data.elem_type) {
            (Some(t1), Some(t2)) if t1 != t2 => {
                keep_data.collapsed = true;
                keep_data.elem_type = None;
            }
            (None, Some(t)) if !keep_data.collapsed => keep_data.elem_type = Some(t),
            _ => {}
        }
        let kpo = keep_data.pool_obj;
        let both_collapsed = keep_data.fields_collapsed || gone_data.fields_collapsed;
        keep_data.fields_collapsed |= gone_data.fields_collapsed;
        for (cell, p2) in gone_data.cells {
            match self.nodes[keep.0 as usize].cells.get(&cell) {
                Some(&p1) => work.push((p1, p2)),
                None => {
                    self.nodes[keep.0 as usize].cells.insert(cell, p2);
                }
            }
        }
        match (kpo, gone_data.pool_obj) {
            (Some(p1), Some(p2)) => work.push((p1, p2)),
            (None, Some(p2)) => self.nodes[keep.0 as usize].pool_obj = Some(p2),
            _ => {}
        }
        if both_collapsed {
            self.fold_cells(keep, work);
        }
    }

    fn unify_step(
        &mut self,
        types: &TypeTable,
        a: NodeId,
        b: NodeId,
        work: &mut Vec<(NodeId, NodeId)>,
    ) -> NodeId {
        {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return ra;
            }
            // Union by index order (deterministic).
            let (keep, gone) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            self.parent[gone.0 as usize] = keep.0;
            let gone_data = std::mem::take(&mut self.nodes[gone.0 as usize]);
            let keep_data = &mut self.nodes[keep.0 as usize];
            keep_data.flags.merge(&gone_data.flags);
            keep_data.functions.extend(gone_data.functions);
            keep_data.pools.extend(gone_data.pools);
            keep_data.alloc_sites += gone_data.alloc_sites;
            keep_data.collapsed |= gone_data.collapsed;
            // Type merging.
            match (keep_data.elem_type, gone_data.elem_type) {
                (Some(t1), Some(t2)) if t1 != t2 => {
                    if types.same_or_array_of(t1, t2) {
                        // Prefer the scalar element type over the array.
                        if matches!(types.get(t1), sva_ir::Type::Array(e, _) if *e == t2) {
                            keep_data.elem_type = Some(t2);
                        }
                    } else {
                        keep_data.collapsed = true;
                        keep_data.elem_type = None;
                    }
                }
                (None, Some(t)) if !keep_data.collapsed => {
                    keep_data.elem_type = Some(t);
                }
                _ => {}
            }
            if keep_data.collapsed {
                keep_data.elem_type = None;
            }
            // Cell-wise pointee unification.
            let kpo = keep_data.pool_obj;
            let both_collapsed = keep_data.fields_collapsed || gone_data.fields_collapsed;
            keep_data.fields_collapsed |= gone_data.fields_collapsed;
            for (cell, p2) in gone_data.cells {
                match self.nodes[keep.0 as usize].cells.get(&cell) {
                    Some(&p1) => work.push((p1, p2)),
                    None => {
                        self.nodes[keep.0 as usize].cells.insert(cell, p2);
                    }
                }
            }
            match (kpo, gone_data.pool_obj) {
                (Some(p1), Some(p2)) => work.push((p1, p2)),
                (None, Some(p2)) => self.nodes[keep.0 as usize].pool_obj = Some(p2),
                _ => {}
            }
            if both_collapsed {
                self.fold_cells(keep, work);
            }
            keep
        }
    }

    /// Folds every cell of `n` into cell 0, queueing the required pointee
    /// unifications on `work`.
    fn fold_cells(&mut self, n: NodeId, work: &mut Vec<(NodeId, NodeId)>) {
        let r = self.find(n);
        self.nodes[r.0 as usize].fields_collapsed = true;
        let cells = std::mem::take(&mut self.nodes[r.0 as usize].cells);
        let mut iter = cells.into_values();
        if let Some(first) = iter.next() {
            self.nodes[r.0 as usize].cells.insert(0, first);
            for p in iter {
                work.push((first, p));
            }
        }
    }

    /// Loses field sensitivity on `n`: all cells become one.
    pub fn collapse_fields(&mut self, n: NodeId) {
        let mut work = Vec::new();
        self.fold_cells(n, &mut work);
        while let Some((a, b)) = work.pop() {
            // The unify below may queue further work internally.
            self.unify_raw(a, b, &mut work);
        }
    }

    /// The points-to successor for `cell`, creating it if absent.
    /// Field-collapsed nodes route every cell through cell 0.
    pub fn pointee_at(&mut self, n: NodeId, cell: u32) -> NodeId {
        let r = self.find(n);
        let cell = if self.nodes[r.0 as usize].fields_collapsed {
            0
        } else {
            cell
        };
        if let Some(&p) = self.nodes[r.0 as usize].cells.get(&cell) {
            return self.find(p);
        }
        let p = self.fresh();
        self.nodes[r.0 as usize].cells.insert(cell, p);
        p
    }

    /// The points-to successor for `cell`, if present.
    pub fn pointee_at_ro(&self, n: NodeId, cell: u32) -> Option<NodeId> {
        let r = self.find_ro(n);
        let cell = if self.nodes[r.0 as usize].fields_collapsed {
            0
        } else {
            cell
        };
        self.nodes[r.0 as usize]
            .cells
            .get(&cell)
            .map(|&p| self.find_ro(p))
    }

    /// Whether the node lost field sensitivity.
    pub fn fields_collapsed(&self, n: NodeId) -> bool {
        self.data_ro(n).fields_collapsed
    }

    /// All `(cell, target)` edges of a node.
    pub fn cells(&self, n: NodeId) -> Vec<(u32, NodeId)> {
        self.data_ro(n)
            .cells
            .iter()
            .map(|(c, p)| (*c, self.find_ro(*p)))
            .collect()
    }

    /// Cell-0 successor, creating it if absent (compatibility shorthand for
    /// scalar nodes).
    pub fn pointee_or_fresh(&mut self, n: NodeId) -> NodeId {
        self.pointee_at(n, 0)
    }

    /// The node's cell-0 successor, if any (compatibility shorthand).
    pub fn pointee(&self, n: NodeId) -> Option<NodeId> {
        self.pointee_at_ro(n, 0)
    }

    /// The pool-object node of a pool-descriptor node, creating it if
    /// absent (the auxiliary `pool_obj` edge).
    pub fn pool_obj_or_fresh(&mut self, n: NodeId) -> NodeId {
        let r = self.find(n);
        if let Some(p) = self.nodes[r.0 as usize].pool_obj {
            return self.find(p);
        }
        let p = self.fresh();
        self.nodes[r.0 as usize].pool_obj = Some(p);
        p
    }

    /// Observes that cells of this node have type `ty`; conflicting
    /// observations collapse the node.
    pub fn observe_type(&mut self, types: &TypeTable, n: NodeId, ty: TypeId) {
        let d = self.data(n);
        if d.collapsed {
            return;
        }
        match d.elem_type {
            None => d.elem_type = Some(ty),
            Some(t) if t == ty => {}
            Some(t) => {
                if types.same_or_array_of(t, ty) {
                    if matches!(types.get(t), sva_ir::Type::Array(e, _) if *e == ty) {
                        d.elem_type = Some(ty);
                    }
                } else {
                    d.collapsed = true;
                    d.elem_type = None;
                }
            }
        }
    }

    /// Marks the node collapsed (type information lost). Field sensitivity
    /// goes with it: without a reliable layout, cells are meaningless.
    pub fn collapse(&mut self, n: NodeId) {
        {
            let d = self.data(n);
            d.collapsed = true;
            d.elem_type = None;
        }
        self.collapse_fields(n);
    }

    /// Flags of a node.
    pub fn flags(&self, n: NodeId) -> NodeFlags {
        self.data_ro(n).flags
    }

    /// Mutates the flags of a node.
    pub fn flags_mut(&mut self, n: NodeId) -> &mut NodeFlags {
        &mut self.data(n).flags
    }

    /// The consistent cell type, if the node is type-homogeneous so far.
    pub fn elem_type(&self, n: NodeId) -> Option<TypeId> {
        self.data_ro(n).elem_type
    }

    /// True if type information was lost.
    pub fn is_collapsed(&self, n: NodeId) -> bool {
        self.data_ro(n).collapsed
    }

    /// A node is **type-homogeneous** when it retained a consistent cell
    /// type and holds no unknown values (paper §4.1: "all objects allocated
    /// in the pool are of a single (known) type or arrays of that type").
    pub fn is_th(&self, n: NodeId) -> bool {
        let d = self.data_ro(n);
        !d.collapsed && d.elem_type.is_some() && !d.flags.unknown
    }

    /// A node is **complete** when the analysis saw every operation on it
    /// (paper §4.5: otherwise only "reduced checks" are possible).
    pub fn is_complete(&self, n: NodeId) -> bool {
        let d = self.data_ro(n);
        !d.flags.incomplete && !d.flags.unknown
    }

    /// Adds a function to the node's target set.
    pub fn add_function(&mut self, n: NodeId, f: FuncId) {
        let d = self.data(n);
        d.flags.func = true;
        d.functions.insert(f);
    }

    /// The functions contained in this node.
    pub fn functions(&self, n: NodeId) -> Vec<FuncId> {
        self.data_ro(n).functions.iter().copied().collect()
    }

    /// Records a kernel pool/allocator name feeding this node.
    pub fn add_pool(&mut self, n: NodeId, pool: &str) {
        self.data(n).pools.insert(pool.to_string());
    }

    /// Kernel pools feeding this node.
    pub fn pools(&self, n: NodeId) -> Vec<String> {
        self.data_ro(n).pools.iter().cloned().collect()
    }

    /// Bumps the allocation-site counter.
    pub fn add_alloc_site(&mut self, n: NodeId) {
        self.data(n).alloc_sites += 1;
    }

    /// Allocation sites assigned to this node.
    pub fn alloc_sites(&self, n: NodeId) -> u32 {
        self.data_ro(n).alloc_sites
    }

    /// All representative node ids.
    pub fn reps(&self) -> Vec<NodeId> {
        (0..self.parent.len() as u32)
            .filter(|&i| self.parent[i as usize] == i)
            .map(NodeId)
            .collect()
    }

    /// Propagates incompleteness along points-to edges: anything reachable
    /// from an incomplete node is incomplete (unknown code may follow any
    /// pointer it is handed).
    pub fn propagate_incomplete(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for rep in self.reps() {
                let d = self.data_ro(rep);
                if !(d.flags.incomplete || d.flags.unknown) {
                    continue;
                }
                let targets: Vec<NodeId> = d.cells.values().copied().collect();
                for t in targets {
                    let p = self.find(t);
                    let pd = self.data(p);
                    if !pd.flags.incomplete {
                        pd.flags.incomplete = true;
                        changed = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn types() -> TypeTable {
        TypeTable::new()
    }

    #[test]
    fn fresh_nodes_are_distinct_reps() {
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(g.find(a), g.find(b));
        assert_eq!(g.num_reps(), 2);
    }

    #[test]
    fn unify_merges_flags_and_functions() {
        let t = types();
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        g.flags_mut(a).heap = true;
        g.flags_mut(b).global = true;
        g.add_function(b, FuncId(3));
        let r = g.unify(&t, a, b);
        assert_eq!(g.find(a), g.find(b));
        let f = g.flags(r);
        assert!(f.heap && f.global && f.func);
        assert_eq!(g.functions(r), vec![FuncId(3)]);
        assert_eq!(g.num_reps(), 1);
    }

    #[test]
    fn unify_recurses_into_pointees() {
        let t = types();
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        let pa = g.pointee_or_fresh(a);
        let pb = g.pointee_or_fresh(b);
        g.flags_mut(pa).heap = true;
        g.flags_mut(pb).stack = true;
        g.unify(&t, a, b);
        let p = g.pointee(a).unwrap();
        assert_eq!(g.find(pa), p);
        assert_eq!(g.find(pb), p);
        let f = g.flags(p);
        assert!(f.heap && f.stack);
    }

    #[test]
    fn unify_handles_cycles() {
        let t = types();
        let mut g = PointsToGraph::new();
        // a -> a (self loop), b -> b; unify(a, b) must terminate.
        let a = g.fresh();
        let b = g.fresh();
        g.data(a).cells.insert(0, a);
        g.data(b).cells.insert(0, b);
        let r = g.unify(&t, a, b);
        assert_eq!(g.pointee(r), Some(g.find_ro(r)));
    }

    #[test]
    fn type_observation_and_collapse() {
        let mut t = types();
        let i32 = t.i32();
        let i64 = t.i64();
        let arr = t.array(i32, 4);
        let mut g = PointsToGraph::new();
        let n = g.fresh();
        g.observe_type(&t, n, i32);
        assert!(g.is_th(n));
        assert_eq!(g.elem_type(n), Some(i32));
        // Array of the same element refines to the scalar.
        g.observe_type(&t, n, arr);
        assert_eq!(g.elem_type(n), Some(i32));
        assert!(g.is_th(n));
        // A conflicting type collapses.
        g.observe_type(&t, n, i64);
        assert!(!g.is_th(n));
        assert!(g.is_collapsed(n));
        assert_eq!(g.elem_type(n), None);
    }

    #[test]
    fn unify_conflicting_types_collapses() {
        let mut t = types();
        let i32 = t.i32();
        let i64 = t.i64();
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        g.observe_type(&t, a, i32);
        g.observe_type(&t, b, i64);
        let r = g.unify(&t, a, b);
        assert!(g.is_collapsed(r));
    }

    #[test]
    fn unknown_forbids_th_and_complete() {
        let mut t = types();
        let i32 = t.i32();
        let mut g = PointsToGraph::new();
        let n = g.fresh();
        g.observe_type(&t, n, i32);
        g.flags_mut(n).unknown = true;
        assert!(!g.is_th(n));
        assert!(!g.is_complete(n));
    }

    #[test]
    fn incomplete_propagates_to_pointees() {
        let _t = types();
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.pointee_or_fresh(a);
        let c = g.pointee_or_fresh(b);
        g.flags_mut(a).incomplete = true;
        g.propagate_incomplete();
        assert!(!g.is_complete(b));
        assert!(!g.is_complete(c));
    }

    #[test]
    fn pools_and_alloc_sites_merge() {
        let t = types();
        let mut g = PointsToGraph::new();
        let a = g.fresh();
        let b = g.fresh();
        g.add_pool(a, "kmalloc-64");
        g.add_pool(b, "task_cache");
        g.add_alloc_site(a);
        g.add_alloc_site(b);
        let r = g.unify(&t, a, b);
        assert_eq!(
            g.pools(r),
            vec!["kmalloc-64".to_string(), "task_cache".to_string()]
        );
        assert_eq!(g.alloc_sites(r), 2);
    }

    #[test]
    fn flag_letters_render() {
        let f = NodeFlags {
            global: true,
            heap: true,
            ..Default::default()
        };
        assert_eq!(f.letters(), "GH");
    }
}
