//! Constraint generation and interprocedural fixpoint.
//!
//! One flow-insensitive pass per function generates unification
//! constraints; indirect calls (and internal system calls) are resolved in
//! an interprocedural fixpoint that re-runs call-site binding as target
//! sets grow. Completeness is then derived: partitions exposed to
//! unanalyzed code (externals, excluded kernel modules, unanalyzable
//! manufactured addresses) are *incomplete* and will receive only reduced
//! checks (paper §4.5).

use std::collections::HashMap;

use sva_ir::{
    AllocKind, Callee, CastOp, FuncId, GlobalId, Inst, InstId, Intrinsic, Module, Operand,
    RelocTarget, SizeSpec, Type, TypeId, ValueId,
};

use crate::graph::{NodeId, PointsToGraph};

/// Threshold below which an integer constant cast to a pointer is treated
/// as an error encoding (null) rather than a manufactured address
/// (paper §4.8: "small constant values (1 and −1, for example)").
pub const SMALL_INT_PTR: i64 = 4096;

/// The field *cell* a `getelementptr` lands in (field-sensitive DSA-style
/// partitioning): arrays are element-periodic and transparent, the first
/// struct level met defines the cell, and everything nested below stays
/// inside it. A pointer already inside a field (`base_cell != 0`) stays
/// there. Used identically by the analysis and the bytecode verifier.
pub fn gep_cell(
    types: &sva_ir::TypeTable,
    base_ptr_ty: TypeId,
    base_cell: u32,
    indices: &[Operand],
) -> u32 {
    if base_cell != 0 || !types.is_ptr(base_ptr_ty) {
        return base_cell;
    }
    let mut t = types.pointee(base_ptr_ty);
    for (i, idx) in indices.iter().enumerate() {
        if i == 0 {
            continue;
        }
        match types.get(t) {
            Type::Array(e, _) => t = *e,
            Type::Struct(_) => {
                return match idx {
                    Operand::ConstInt(f, _) => *f as u32,
                    _ => 0,
                };
            }
            _ => return 0,
        }
    }
    0
}

/// Configuration of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisConfig {
    /// Functions whose bodies are *not* analyzed (the paper's "as tested"
    /// kernel excluded the memory subsystem, two utility libraries and the
    /// character drivers, §7.1). Matched by prefix against function names.
    pub excluded_prefixes: Vec<String>,
    /// Treat all of userspace as a single valid object reachable from
    /// system-call arguments (paper §4.6). On by default in [`AnalysisConfig::kernel`].
    pub userspace_object: bool,
    /// Honor call-site signature assertions when resolving indirect calls
    /// (paper §4.8).
    pub use_sig_assertions: bool,
}

impl AnalysisConfig {
    /// The configuration used for kernel analysis.
    pub fn kernel() -> Self {
        AnalysisConfig {
            excluded_prefixes: Vec::new(),
            userspace_object: true,
            use_sig_assertions: true,
        }
    }

    /// Kernel analysis with excluded subsystems (the paper's "as tested"
    /// kernel, §7.1/§7.3).
    pub fn kernel_excluding(prefixes: &[&str]) -> Self {
        AnalysisConfig {
            excluded_prefixes: prefixes.iter().map(|s| s.to_string()).collect(),
            userspace_object: true,
            use_sig_assertions: true,
        }
    }

    /// Whether `name` is excluded from analysis.
    pub fn is_excluded(&self, name: &str) -> bool {
        self.excluded_prefixes
            .iter()
            .any(|p| name.starts_with(p.as_str()))
    }
}

/// Resolution of one call site.
#[derive(Clone, Debug, Default)]
pub struct CallSiteInfo {
    /// Possible callees (function ids) after any signature filtering.
    pub targets: Vec<FuncId>,
    /// Target-set size before signature filtering (for the §4.8 numbers).
    pub targets_before_filter: usize,
    /// Whether the programmer asserted signatures at this site.
    pub sig_asserted: bool,
    /// Whether the pointer node was incomplete (external callees possible).
    pub may_call_unknown: bool,
}

/// A heap allocation site found by the analysis.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Containing function.
    pub func: FuncId,
    /// The call instruction.
    pub inst: InstId,
    /// Index into `module.allocators`.
    pub allocator: usize,
    /// The points-to node of the allocated objects.
    pub node: NodeId,
    /// How the byte size is computed from the call.
    pub size: SizeSpec,
}

/// A deallocation site.
#[derive(Clone, Debug)]
pub struct DeallocSite {
    /// Containing function.
    pub func: FuncId,
    /// The call instruction.
    pub inst: InstId,
    /// Index into `module.allocators`.
    pub allocator: usize,
    /// Node of the freed object (from the pointer argument).
    pub node: Option<NodeId>,
}

/// Everything the safety-checking compiler needs from the analysis.
#[derive(Clone, Debug, Default)]
pub struct AnalysisResult {
    /// The points-to graph.
    pub graph: PointsToGraph,
    /// Per-function, per-value node assignment with the field cell the
    /// value points into (`[func][value]`).
    pub value_nodes: Vec<Vec<Option<(NodeId, u32)>>>,
    /// Node of each global's storage.
    pub global_nodes: Vec<NodeId>,
    /// Return-value node per function (pointer-returning functions).
    pub ret_nodes: Vec<Option<NodeId>>,
    /// Resolved call sites (indirect and internal-syscall).
    pub callsites: HashMap<(FuncId, InstId), CallSiteInfo>,
    /// Registered system calls: number → handler.
    pub syscalls: HashMap<i64, FuncId>,
    /// Registered interrupt handlers: vector → handler.
    pub interrupts: HashMap<i64, FuncId>,
    /// Heap allocation sites (for `pchk.reg.obj` insertion).
    pub alloc_sites: Vec<AllocSite>,
    /// Deallocation sites (for `pchk.drop.obj` insertion).
    pub dealloc_sites: Vec<DeallocSite>,
    /// Functions whose bodies were analyzed.
    pub analyzed: Vec<bool>,
    /// The userspace pseudo-object node, if `userspace_object` was set.
    pub userspace_node: Option<NodeId>,
    /// Allocation calls that could *not* be attributed (inside excluded
    /// code): the paper's "allocation sites seen" metric denominator
    /// includes these.
    pub unseen_alloc_calls: u32,
}

impl AnalysisResult {
    /// The (representative) node a value points to, if any.
    pub fn value_node(&self, f: FuncId, v: ValueId) -> Option<NodeId> {
        self.value_nodes
            .get(f.0 as usize)
            .and_then(|vs| vs.get(v.0 as usize).copied().flatten())
            .map(|(n, _)| self.graph.find_ro(n))
    }

    /// The field cell a pointer value points into (0 for whole objects;
    /// forced to 0 on field-collapsed nodes).
    pub fn value_cell(&self, f: FuncId, v: ValueId) -> u32 {
        match self
            .value_nodes
            .get(f.0 as usize)
            .and_then(|vs| vs.get(v.0 as usize).copied().flatten())
        {
            Some((n, c)) => {
                if self.graph.fields_collapsed(n) {
                    0
                } else {
                    c
                }
            }
            None => 0,
        }
    }

    /// The node of a global's storage.
    pub fn global_node(&self, g: GlobalId) -> NodeId {
        self.graph.find_ro(self.global_nodes[g.0 as usize])
    }
}

struct Analyzer<'m> {
    m: &'m Module,
    cfg: &'m AnalysisConfig,
    g: PointsToGraph,
    value_nodes: Vec<Vec<Option<(NodeId, u32)>>>,
    global_nodes: Vec<NodeId>,
    ret_nodes: Vec<Option<NodeId>>,
    func_addr_nodes: HashMap<FuncId, NodeId>,
    extern_addr_nodes: HashMap<u32, NodeId>,
    /// Ordinary-allocator partition anchors (per allocator or size class).
    alloc_anchor: HashMap<String, NodeId>,
    analyzed: Vec<bool>,
    syscalls: HashMap<i64, FuncId>,
    interrupts: HashMap<i64, FuncId>,
    callsites: HashMap<(FuncId, InstId), CallSiteInfo>,
    alloc_sites: Vec<AllocSite>,
    dealloc_sites: Vec<DeallocSite>,
    userspace_node: Option<NodeId>,
    unseen_alloc_calls: u32,
}

/// Runs the full analysis over a module.
pub fn analyze(m: &Module, cfg: &AnalysisConfig) -> AnalysisResult {
    let mut a = Analyzer {
        m,
        cfg,
        g: PointsToGraph::new(),
        value_nodes: m.funcs.iter().map(|f| vec![None; f.num_values()]).collect(),
        global_nodes: Vec::new(),
        ret_nodes: vec![None; m.funcs.len()],
        func_addr_nodes: HashMap::new(),
        extern_addr_nodes: HashMap::new(),
        alloc_anchor: HashMap::new(),
        analyzed: m.funcs.iter().map(|f| !cfg.is_excluded(&f.name)).collect(),
        syscalls: HashMap::new(),
        interrupts: HashMap::new(),
        callsites: HashMap::new(),
        alloc_sites: Vec::new(),
        dealloc_sites: Vec::new(),
        userspace_node: None,
        unseen_alloc_calls: 0,
    };
    a.init_globals();
    a.collect_registrations();
    if cfg.userspace_object {
        let n = a.g.fresh();
        a.g.flags_mut(n).userspace = true;
        a.userspace_node = Some(n);
    }
    // Intraprocedural pass over every analyzed function.
    for fid in 0..m.funcs.len() {
        let fid = FuncId(fid as u32);
        if a.analyzed[fid.0 as usize] {
            a.scan_function(fid);
        } else {
            a.mark_excluded(fid);
        }
    }
    // Interprocedural fixpoint: indirect call targets may grow as nodes
    // merge; rebind until stable.
    let mut iterations = 0;
    loop {
        iterations += 1;
        let changed = a.bind_callsites();
        if !changed || iterations > 50 {
            break;
        }
    }
    // Userspace exposure: every node reachable from a syscall handler's
    // parameters may receive the userspace pseudo-object (paper §4.6).
    if let Some(us) = a.userspace_node {
        let handlers: Vec<FuncId> = a.syscalls.values().copied().collect();
        for h in handlers {
            if !a.analyzed[h.0 as usize] {
                continue;
            }
            let params = a.m.func(h).params.clone();
            for p in params {
                if let Some((n, _)) = a.value_nodes[h.0 as usize][p.0 as usize] {
                    // The handler argument may *be* a userspace pointer.
                    let types = &a.m.types;
                    a.g.unify(types, n, us);
                }
            }
        }
    }
    a.g.propagate_incomplete();
    AnalysisResult {
        graph: a.g,
        value_nodes: a.value_nodes,
        global_nodes: a.global_nodes,
        ret_nodes: a.ret_nodes,
        callsites: a.callsites,
        syscalls: a.syscalls,
        interrupts: a.interrupts,
        alloc_sites: a.alloc_sites,
        dealloc_sites: a.dealloc_sites,
        analyzed: a.analyzed,
        userspace_node: a.userspace_node,
        unseen_alloc_calls: a.unseen_alloc_calls,
    }
}

impl<'m> Analyzer<'m> {
    fn init_globals(&mut self) {
        for (gi, g) in self.m.globals.iter().enumerate() {
            let n = self.g.fresh();
            self.g.flags_mut(n).global = true;
            self.observe_pointee_type(n, g.ty);
            self.global_nodes.push(n);
            let _ = gi;
        }
        // Wire relocated initializers: stored pointers give the global's
        // pointee edge.
        for (gi, g) in self.m.globals.iter().enumerate() {
            if let sva_ir::GlobalInit::Relocated { relocs, .. } = &g.init {
                let gn = self.global_nodes[gi];
                for (_, target) in relocs {
                    match target {
                        RelocTarget::Func(name) => {
                            let f = self.m.func_by_name(name).expect("reloc to known func");
                            let p = self.g.pointee_or_fresh(gn);
                            self.g.add_function(p, f);
                        }
                        RelocTarget::Global(name) => {
                            let tg = self.m.global_by_name(name).expect("reloc to known global");
                            let p = self.g.pointee_or_fresh(gn);
                            let tn = self.global_nodes[tg.0 as usize];
                            self.g.unify(&self.m.types, p, tn);
                        }
                        RelocTarget::Extern(_) => {
                            let p = self.g.pointee_or_fresh(gn);
                            self.g.flags_mut(p).incomplete = true;
                            self.g.flags_mut(p).func = true;
                        }
                    }
                }
            }
        }
    }

    /// Pre-scan for `sva.register.syscall` / `sva.register.interrupt` so
    /// internal syscalls can be resolved as direct calls (paper §4.8).
    fn collect_registrations(&mut self) {
        for (fi, f) in self.m.funcs.iter().enumerate() {
            if !self.analyzed[fi] {
                continue;
            }
            for inst in &f.insts {
                if let Inst::Call {
                    callee: Callee::Intrinsic(i),
                    args,
                } = inst
                {
                    let table = match i {
                        Intrinsic::RegisterSyscall => &mut self.syscalls,
                        Intrinsic::RegisterInterrupt => &mut self.interrupts,
                        _ => continue,
                    };
                    if let (Some(Operand::ConstInt(num, _)), Some(Operand::Func(h))) =
                        (args.first(), args.get(1))
                    {
                        table.insert(*num, *h);
                    }
                }
            }
        }
    }

    fn mark_excluded(&mut self, fid: FuncId) {
        // An excluded function is unknown code: every pointer parameter it
        // receives escapes analysis, and its return is unknown. Callers
        // handle this at call sites; address-taken uses are handled by the
        // function-address node below.
        let n = self.func_addr_node(fid);
        self.g.flags_mut(n).incomplete = true;
    }

    fn func_addr_node(&mut self, f: FuncId) -> NodeId {
        if let Some(&n) = self.func_addr_nodes.get(&f) {
            return n;
        }
        let n = self.g.fresh();
        self.g.add_function(n, f);
        self.func_addr_nodes.insert(f, n);
        n
    }

    fn extern_addr_node(&mut self, e: u32) -> NodeId {
        if let Some(&n) = self.extern_addr_nodes.get(&e) {
            return n;
        }
        let n = self.g.fresh();
        self.g.flags_mut(n).func = true;
        self.g.flags_mut(n).incomplete = true;
        self.extern_addr_nodes.insert(e, n);
        n
    }

    /// Observes the pointee type `ty` on node `n`, skipping byte-like
    /// types (`i8` and `[N x i8]`): raw byte buffers carry no layout
    /// information, and letting one claim a pool would mislabel partitions
    /// holding differently-sized untyped objects as type-homogeneous.
    fn observe_pointee_type(&mut self, n: NodeId, ty: TypeId) {
        let byte_like = match self.m.types.get(ty) {
            Type::Int(8) => true,
            Type::Array(e, _) => matches!(self.m.types.get(*e), Type::Int(8)),
            _ => false,
        };
        if byte_like {
            return;
        }
        self.g.observe_type(&self.m.types, n, ty);
    }

    fn is_ptr_sized_int(&self, ty: TypeId) -> bool {
        matches!(self.m.types.get(ty), Type::Int(64))
    }

    fn set_value_node(&mut self, f: FuncId, v: ValueId, n: NodeId) -> NodeId {
        self.set_value_node_cell(f, v, n, 0).0
    }

    fn set_value_node_cell(
        &mut self,
        f: FuncId,
        v: ValueId,
        n: NodeId,
        cell: u32,
    ) -> (NodeId, u32) {
        let slot = self.value_nodes[f.0 as usize][v.0 as usize];
        match slot {
            None => {
                self.value_nodes[f.0 as usize][v.0 as usize] = Some((n, cell));
                (n, cell)
            }
            Some((prev, pcell)) => {
                let rep = self.g.unify(&self.m.types, prev, n);
                let cell = if pcell == cell {
                    cell
                } else {
                    // A value reachable through two different fields: lose
                    // field sensitivity for the node.
                    self.g.collapse_fields(rep);
                    0
                };
                let rep = self.g.find(rep);
                self.value_nodes[f.0 as usize][v.0 as usize] = Some((rep, cell));
                (rep, cell)
            }
        }
    }

    fn value_node_or_fresh(&mut self, f: FuncId, v: ValueId) -> NodeId {
        self.value_node_or_fresh_cell(f, v).0
    }

    fn value_node_or_fresh_cell(&mut self, f: FuncId, v: ValueId) -> (NodeId, u32) {
        if let Some((n, c)) = self.value_nodes[f.0 as usize][v.0 as usize] {
            return (self.g.find(n), c);
        }
        let n = self.g.fresh();
        self.value_nodes[f.0 as usize][v.0 as usize] = Some((n, 0));
        // Observe the pointee type of the value if it is a pointer.
        let ty = self.m.func(f).value_type(v);
        if self.m.types.is_ptr(ty) {
            let p = self.m.types.pointee(ty);
            self.observe_pointee_type(n, p);
        }
        (n, 0)
    }

    /// Node (and field cell) an operand points to, or `None` for
    /// null/constants.
    fn operand_node_cell(&mut self, f: FuncId, op: &Operand) -> Option<(NodeId, u32)> {
        match *op {
            Operand::Value(v) => {
                let ty = self.m.func(f).value_type(v);
                if self.m.types.is_ptr(ty) || self.is_ptr_sized_int(ty) {
                    Some(self.value_node_or_fresh_cell(f, v))
                } else {
                    self.value_nodes[f.0 as usize][v.0 as usize].map(|(n, c)| (self.g.find(n), c))
                }
            }
            Operand::Global(g) => Some((self.g.find(self.global_nodes[g.0 as usize]), 0)),
            Operand::Func(fid) => Some((self.func_addr_node(fid), 0)),
            Operand::Extern(e) => Some((self.extern_addr_node(e.0), 0)),
            Operand::ConstInt(..) | Operand::ConstF64(_) | Operand::Null(_) | Operand::Undef(_) => {
                None
            }
        }
    }

    /// Node an operand points to, ignoring the cell.
    fn operand_node(&mut self, f: FuncId, op: &Operand) -> Option<NodeId> {
        self.operand_node_cell(f, op).map(|(n, _)| n)
    }

    fn scan_function(&mut self, fid: FuncId) {
        let f = self.m.func(fid);
        let insts: Vec<(InstId, Inst)> = f
            .inst_order()
            .map(|(_, iid)| (iid, f.inst(iid).clone()))
            .collect();
        // Pre-create nodes for pointer params so calls can bind them.
        let params = f.params.clone();
        for p in params {
            let ty = f.value_type(p);
            if self.m.types.is_ptr(ty) {
                self.value_node_or_fresh(fid, p);
            }
        }
        for (iid, inst) in insts {
            self.scan_inst(fid, iid, &inst);
        }
    }

    fn result_value(&self, fid: FuncId, iid: InstId) -> Option<ValueId> {
        self.m.func(fid).result_of(iid)
    }

    fn scan_inst(&mut self, fid: FuncId, iid: InstId, inst: &Inst) {
        let types_is_ptr = |a: &Analyzer<'m>, v: ValueId| {
            let ty = a.m.func(fid).value_type(v);
            a.m.types.is_ptr(ty)
        };
        match inst {
            Inst::Alloca { ty, .. } => {
                let res = self.result_value(fid, iid).unwrap();
                let n = self.value_node_or_fresh(fid, res);
                self.g.flags_mut(n).stack = true;
                self.observe_pointee_type(n, *ty);
            }
            Inst::Gep { base, indices } => {
                // Indexing stays within the same partition; the landing
                // field defines the value's cell.
                if let Some((bn, bcell)) = self.operand_node_cell(fid, base) {
                    let res = self.result_value(fid, iid).unwrap();
                    let bty = self.m.func(fid).operand_type(base, self.m);
                    let cell = gep_cell(&self.m.types, bty, bcell, indices);
                    self.set_value_node_cell(fid, res, bn, cell);
                }
            }
            Inst::Cast { op, val, to } => {
                let res = self.result_value(fid, iid).unwrap();
                match op {
                    CastOp::Bitcast => {
                        if let Some((n, c)) = self.operand_node_cell(fid, val) {
                            let (n, _) = self.set_value_node_cell(fid, res, n, c);
                            let p = self.m.types.pointee(*to);
                            // Interior pointers carry the field's type, not
                            // the object's — only observe whole-object
                            // views.
                            if c == 0 {
                                self.observe_pointee_type(n, p);
                            }
                        }
                    }
                    CastOp::PtrToInt => {
                        // Track the integer as a potential pointer.
                        if let Some((n, c)) = self.operand_node_cell(fid, val) {
                            self.set_value_node_cell(fid, res, n, c);
                        }
                    }
                    CastOp::IntToPtr => {
                        let tracked = match val {
                            Operand::ConstInt(v, _) if v.abs() < SMALL_INT_PTR => {
                                // Error-encoding constant: treated as null
                                // (paper §4.8).
                                return;
                            }
                            Operand::Value(v) => {
                                let vty = self.m.func(fid).value_type(*v);
                                if self.is_ptr_sized_int(vty) {
                                    // Tracked pointer-sized integer (§4.8):
                                    // materialize its node and round-trip.
                                    Some(self.value_node_or_fresh_cell(fid, *v))
                                } else {
                                    None
                                }
                            }
                            _ => None,
                        };
                        match tracked {
                            Some((n, c)) => {
                                let (n, c2) = self.set_value_node_cell(fid, res, n, c);
                                let p = self.m.types.pointee(*to);
                                if c2 == 0 {
                                    self.observe_pointee_type(n, p);
                                }
                            }
                            None => {
                                // Manufactured address: unanalyzable.
                                let n = self.value_node_or_fresh(fid, res);
                                self.g.flags_mut(n).unknown = true;
                                self.g.collapse(n);
                            }
                        }
                    }
                    _ => {}
                }
            }
            Inst::Bin { lhs, rhs, .. } => {
                // Pointer-sized integer arithmetic propagates tracking
                // (offset adjustment of a ptrtoint'd pointer).
                let res = match self.result_value(fid, iid) {
                    Some(r) => r,
                    None => return,
                };
                let rty = self.m.func(fid).value_type(res);
                if !self.is_ptr_sized_int(rty) {
                    return;
                }
                // Materialize the base side's node (`ptr + offset` idiom):
                // prefer the left operand, falling back to the right. This
                // is the §4.8 pointer-sized-integer tracking.
                let pick = |a: &mut Self, o: &Operand| match o {
                    Operand::Value(v) => {
                        let vty = a.m.func(fid).value_type(*v);
                        if a.is_ptr_sized_int(vty) {
                            Some(a.value_node_or_fresh_cell(fid, *v))
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                let n = pick(self, lhs).or_else(|| pick(self, rhs));
                if let Some((n, c)) = n {
                    self.set_value_node_cell(fid, res, n, c);
                }
            }
            Inst::Load { ptr } => {
                let res = match self.result_value(fid, iid) {
                    Some(r) => r,
                    None => return,
                };
                let rty = self.m.func(fid).value_type(res);
                if let Some((pn, cell)) = self.operand_node_cell(fid, ptr) {
                    // Pointer results AND pointer-sized integers: the §4.8
                    // int-tracking treats loaded i64s as potential pointers,
                    // so they live in the cell's points-to successor.
                    if self.m.types.is_ptr(rty) || self.is_ptr_sized_int(rty) {
                        let pointee = self.g.pointee_at(pn, cell);
                        self.set_value_node(fid, res, pointee);
                    }
                }
            }
            Inst::Store { val, ptr } => {
                if let Some(vn) = self.operand_node(fid, val) {
                    // Only pointer-typed (or tracked) values create edges.
                    let vty = self.m.func(fid).operand_type(val, self.m);
                    let tracked = self.m.types.is_ptr(vty)
                        || matches!(val, Operand::Value(v)
                            if self.value_nodes[fid.0 as usize][v.0 as usize].is_some());
                    if tracked {
                        if let Some((pn, cell)) = self.operand_node_cell(fid, ptr) {
                            let pointee = self.g.pointee_at(pn, cell);
                            self.g.unify(&self.m.types, pointee, vn);
                            // The stored-to object may outlive any frame.
                            self.g.flags_mut(vn).stored = true;
                        }
                    }
                }
            }
            Inst::Phi { incomings, .. } => {
                let res = self.result_value(fid, iid).unwrap();
                let rty = self.m.func(fid).value_type(res);
                if !self.m.types.is_ptr(rty) && !self.is_ptr_sized_int(rty) {
                    return;
                }
                for (_, v) in incomings {
                    if let Some((n, c)) = self.operand_node_cell(fid, v) {
                        self.set_value_node_cell(fid, res, n, c);
                    }
                }
            }
            Inst::Select { tval, fval, .. } => {
                let res = self.result_value(fid, iid).unwrap();
                let rty = self.m.func(fid).value_type(res);
                if !self.m.types.is_ptr(rty) && !self.is_ptr_sized_int(rty) {
                    return;
                }
                for v in [tval, fval] {
                    if let Some((n, c)) = self.operand_node_cell(fid, v) {
                        self.set_value_node_cell(fid, res, n, c);
                    }
                }
            }
            Inst::AtomicRmw { ptr, .. } | Inst::CmpXchg { ptr, .. } => {
                // Integer-only atomics: just materialize the object node.
                let _ = self.operand_node(fid, ptr);
            }
            Inst::Ret { val: Some(v) } => {
                let vty = self.m.func(fid).operand_type(v, self.m);
                if self.m.types.is_ptr(vty) || self.is_ptr_sized_int(vty) {
                    if let Some(n) = self.operand_node(fid, v) {
                        self.g.flags_mut(n).stored = true;
                        match self.ret_nodes[fid.0 as usize] {
                            Some(rn) => {
                                self.g.unify(&self.m.types, rn, n);
                            }
                            None => self.ret_nodes[fid.0 as usize] = Some(n),
                        }
                    }
                }
            }
            Inst::Call { callee, args } => {
                self.scan_call(fid, iid, callee, args);
            }
            _ => {}
        }
        let _ = types_is_ptr;
    }

    fn scan_call(&mut self, fid: FuncId, iid: InstId, callee: &Callee, args: &[Operand]) {
        match callee {
            Callee::Direct(target) => {
                let tname = self.m.func(*target).name.clone();
                if let Some(ai) = self.m.allocators.iter().position(|a| a.alloc_fn == tname) {
                    self.scan_alloc_call(fid, iid, ai, args);
                    return;
                }
                if let Some(alloc) = self
                    .m
                    .allocators
                    .iter()
                    .find(|a| a.pool_create_fn.as_deref() == Some(tname.as_str()))
                {
                    // Pool creation is a partition-birth point: clone the
                    // descriptor per call site (heap-cloning style), so two
                    // caches created at different sites never merge their
                    // object pools through the descriptor allocator.
                    let pool_name = alloc.name.clone();
                    if let Some(res) = self.result_value(fid, iid) {
                        let n = self.g.fresh();
                        let n = self.set_value_node(fid, res, n);
                        self.g.add_pool(n, &format!("{pool_name}:create"));
                    }
                    return;
                }
                if let Some(ai) = self
                    .m
                    .allocators
                    .iter()
                    .position(|a| a.dealloc_fn.as_deref() == Some(tname.as_str()))
                {
                    let node = args.last().and_then(|p| self.operand_node(fid, p));
                    // Convention: the object pointer is the last argument
                    // for pool allocators (cache, obj) and the only pointer
                    // argument for ordinary ones.
                    let node = match self.m.allocators[ai].pool_arg {
                        Some(_) => node,
                        None => args.first().and_then(|p| self.operand_node(fid, p)),
                    };
                    self.dealloc_sites.push(DeallocSite {
                        func: fid,
                        inst: iid,
                        allocator: ai,
                        node,
                    });
                    return;
                }
                if self.analyzed[target.0 as usize] {
                    self.bind_direct(fid, iid, *target, args);
                } else {
                    self.escape_args(fid, args);
                    if let Some(res) = self.result_value(fid, iid) {
                        let rty = self.m.func(fid).value_type(res);
                        if self.m.types.is_ptr(rty) {
                            let n = self.value_node_or_fresh(fid, res);
                            self.g.flags_mut(n).incomplete = true;
                            // An unanalyzed allocator-ish function may hand
                            // out heap objects we cannot see.
                            self.unseen_alloc_calls +=
                                u32::from(tname.contains("alloc") || tname.contains("get_page"));
                        }
                    }
                }
            }
            Callee::External(_) => {
                self.escape_args(fid, args);
                if let Some(res) = self.result_value(fid, iid) {
                    let rty = self.m.func(fid).value_type(res);
                    if self.m.types.is_ptr(rty) {
                        let n = self.value_node_or_fresh(fid, res);
                        self.g.flags_mut(n).incomplete = true;
                    }
                }
            }
            Callee::Indirect(fp) => {
                let node = self.operand_node(fid, fp);
                let info = CallSiteInfo {
                    sig_asserted: self.m.func(fid).sig_asserted_calls.contains(&iid)
                        && self.cfg.use_sig_assertions,
                    may_call_unknown: node.map(|n| !self.g.is_complete(n)).unwrap_or(true),
                    ..Default::default()
                };
                self.callsites.insert((fid, iid), info);
                // Targets bound in the interprocedural fixpoint.
            }
            Callee::Intrinsic(i) => self.scan_intrinsic(fid, iid, *i, args),
        }
    }

    fn scan_alloc_call(&mut self, fid: FuncId, iid: InstId, ai: usize, args: &[Operand]) {
        let alloc = &self.m.allocators[ai];
        let res = match self.result_value(fid, iid) {
            Some(r) => r,
            None => return,
        };
        let obj = match alloc.kind {
            AllocKind::Pool => {
                // The pool descriptor argument's node anchors the object
                // partition: one kernel pool = one metapool (paper §4.3).
                let pool_arg = alloc.pool_arg.unwrap_or(0);
                match args.get(pool_arg).and_then(|p| self.operand_node(fid, p)) {
                    Some(desc) => self.g.pool_obj_or_fresh(desc),
                    None => self.g.fresh(),
                }
            }
            AllocKind::Ordinary => {
                // One partition per allocator — unless the backing pool
                // relationship is exposed and the size is a known constant,
                // in which case each size class stays separate (§6.2).
                let key = match (&alloc.backed_by, alloc.size) {
                    (Some(_), SizeSpec::Arg(n)) => match args.get(n) {
                        Some(Operand::ConstInt(sz, _)) => {
                            format!("{}:{}", alloc.name, size_class(*sz as u64))
                        }
                        _ => alloc.name.clone(),
                    },
                    _ => alloc.name.clone(),
                };
                match self.alloc_anchor.get(&key) {
                    Some(&n) => self.g.find(n),
                    None => {
                        let n = self.g.fresh();
                        self.alloc_anchor.insert(key.clone(), n);
                        self.g.add_pool(n, &key);
                        n
                    }
                }
            }
        };
        self.g.flags_mut(obj).heap = true;
        self.g.add_pool(obj, &alloc.name);
        self.g.add_alloc_site(obj);
        let obj = self.set_value_node(fid, res, obj);
        self.alloc_sites.push(AllocSite {
            func: fid,
            inst: iid,
            allocator: ai,
            node: obj,
            size: alloc.size,
        });
    }

    fn scan_intrinsic(&mut self, fid: FuncId, iid: InstId, i: Intrinsic, args: &[Operand]) {
        match i {
            Intrinsic::MemCpy | Intrinsic::MemMove => {
                let dst = args.first().and_then(|o| self.operand_node(fid, o));
                let src = args.get(1).and_then(|o| self.operand_node(fid, o));
                if let (Some(d), Some(s)) = (dst, src) {
                    let d_user = self.g.flags(d).userspace;
                    let s_user = self.g.flags(s).userspace;
                    if d_user || s_user {
                        // §4.8 heuristic: merge only the targets of the
                        // outgoing edges, not the objects themselves —
                        // keeping kernel and userspace objects apart. This
                        // requires precise type information on both sides;
                        // otherwise collapse each node individually.
                        let precise = !self.g.is_collapsed(d) && !self.g.is_collapsed(s);
                        if precise {
                            // Merge the targets of the copied objects'
                            // outgoing edges, cell by cell.
                            for (c, sp) in self.g.cells(s) {
                                let dp = self.g.pointee_at(d, c);
                                self.g.unify(&self.m.types, dp, sp);
                            }
                        } else {
                            self.g.collapse(d);
                            self.g.collapse(s);
                        }
                    } else {
                        // Plain copy: handled like `p = q`.
                        self.g.unify(&self.m.types, d, s);
                    }
                }
            }
            Intrinsic::PseudoAlloc => {
                // Manufactured-address registration (paper §4.7): the
                // result is a normal object, registered by the compiler.
                if let Some(res) = self.result_value(fid, iid) {
                    let n = self.value_node_or_fresh(fid, res);
                    self.g.flags_mut(n).global = true;
                }
            }
            Intrinsic::Syscall => {
                // Internal system call: resolve by constant number
                // (paper §4.8) and bind like a direct call.
                if let Some(Operand::ConstInt(num, _)) = args.first() {
                    if let Some(&handler) = self.syscalls.get(num) {
                        if self.analyzed[handler.0 as usize] {
                            self.bind_direct(fid, iid, handler, &args[1..]);
                            self.callsites.insert(
                                (fid, iid),
                                CallSiteInfo {
                                    targets: vec![handler],
                                    targets_before_filter: 1,
                                    sig_asserted: false,
                                    may_call_unknown: false,
                                },
                            );
                        }
                    }
                } else {
                    // Syscall with unknown number: all handlers possible.
                    let handlers: Vec<FuncId> = self.syscalls.values().copied().collect();
                    for h in handlers {
                        if self.analyzed[h.0 as usize] {
                            self.bind_direct(fid, iid, h, &args[1..]);
                        }
                    }
                }
            }
            _ => {
                // SVA-OS operations are implemented by the (trusted) SVM
                // and do not leak kernel pointers to unknown code; no
                // constraints needed (paper §7.3: "all SVA operations are
                // understood").
            }
        }
    }

    /// Binds arguments/return of a call to `target`'s parameters/return.
    fn bind_direct(&mut self, fid: FuncId, iid: InstId, target: FuncId, args: &[Operand]) {
        let tparams = self.m.func(target).params.clone();
        for (a, p) in args.iter().zip(tparams.iter()) {
            let pty = self.m.func(target).value_type(*p);
            let want = self.m.types.is_ptr(pty) || self.is_ptr_sized_int(pty);
            if !want {
                continue;
            }
            if let Some(an) = self.operand_node(fid, a) {
                let pn = self.value_node_or_fresh(target, *p);
                self.g.unify(&self.m.types, an, pn);
            }
        }
        if let Some(res) = self.result_value(fid, iid) {
            let rty = self.m.func(fid).value_type(res);
            if self.m.types.is_ptr(rty) || self.is_ptr_sized_int(rty) {
                let rn = self.value_node_or_fresh(fid, res);
                match self.ret_nodes[target.0 as usize] {
                    Some(tn) => {
                        self.g.unify(&self.m.types, rn, tn);
                    }
                    None => self.ret_nodes[target.0 as usize] = Some(rn),
                }
            }
        }
    }

    /// Marks argument nodes of a call into unknown code as incomplete.
    fn escape_args(&mut self, fid: FuncId, args: &[Operand]) {
        for a in args {
            if let Some(n) = self.operand_node(fid, a) {
                self.g.flags_mut(n).incomplete = true;
                self.g.flags_mut(n).stored = true;
            }
        }
    }

    /// One round of indirect-call binding; returns whether anything new
    /// was bound.
    fn bind_callsites(&mut self) -> bool {
        let sites: Vec<(FuncId, InstId)> = self.callsites.keys().copied().collect();
        let mut changed = false;
        for (fid, iid) in sites {
            let inst = self.m.func(fid).inst(iid).clone();
            let (fp, args) = match &inst {
                Inst::Call {
                    callee: Callee::Indirect(fp),
                    args,
                } => (*fp, args.clone()),
                _ => continue,
            };
            let node = match self.operand_node(fid, &fp) {
                Some(n) => n,
                None => continue,
            };
            let mut targets = self.g.functions(node);
            let before = targets.len();
            let info = self.callsites.get(&(fid, iid)).cloned().unwrap_or_default();
            if info.sig_asserted {
                // Keep only callees whose signature matches the call shape.
                let fpty = self.m.func(fid).operand_type(&fp, self.m);
                let want_ty = if self.m.types.is_ptr(fpty) {
                    Some(self.m.types.pointee(fpty))
                } else {
                    None
                };
                targets.retain(|t| {
                    let fty = self.m.func(*t).ty;
                    match want_ty {
                        Some(w) => fty == w,
                        None => self.m.func(*t).params.len() == args.len(),
                    }
                });
            }
            let old = self
                .callsites
                .get(&(fid, iid))
                .map(|i| i.targets.len())
                .unwrap_or(0);
            if targets.len() != old {
                changed = true;
                for t in &targets {
                    if self.analyzed[t.0 as usize] {
                        self.bind_direct(fid, iid, *t, &args);
                    }
                }
            }
            let may_unknown = !self.g.is_complete(node);
            let entry = self.callsites.entry((fid, iid)).or_default();
            entry.targets = targets;
            entry.targets_before_filter = before;
            entry.may_call_unknown = may_unknown;
        }
        changed
    }
}

/// Rounds a size up to its kmalloc-style size class (powers of two from 32).
pub fn size_class(sz: u64) -> u64 {
    let mut c = 32;
    while c < sz {
        c *= 2;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{AllocatorDecl, GlobalInit, Linkage};

    fn module_with_kmalloc() -> Module {
        let mut m = Module::new("t");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let i64 = m.types.i64();
        let void = m.types.void();
        let kty = m.types.func(bp, vec![i64], false);
        m.add_function("kmalloc", kty, Linkage::Public);
        let fty = m.types.func(void, vec![bp], false);
        m.add_function("kfree", fty, Linkage::Public);
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: Some("kfree".into()),
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: None,
        });
        // Give the allocator bodies (they'd normally be in the memory
        // subsystem); a trivial body suffices for the analysis.
        {
            let f = m.func_by_name("kmalloc").unwrap();
            let mut b = FunctionBuilder::new(&mut m, f);
            let n = b.null(i8);
            b.ret(Some(n));
        }
        {
            let f = m.func_by_name("kfree").unwrap();
            let mut b = FunctionBuilder::new(&mut m, f);
            b.ret(None);
        }
        m
    }

    #[test]
    fn alloca_makes_stack_node() {
        let mut m = Module::new("t");
        let i64 = m.types.i64();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("f", fty, Linkage::Public);
        m.intern_address_types();
        let slot;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64);
            slot = FunctionBuilder::value_of(s);
            let one = b.c64(1);
            b.store(one, s);
            b.ret(None);
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, slot).unwrap();
        assert!(r.graph.flags(n).stack);
        assert!(r.graph.is_th(n));
        assert_eq!(r.graph.elem_type(n), Some(i64));
        assert!(!r.graph.flags(n).stored, "storing INTO it is not escaping");
    }

    #[test]
    fn escaping_alloca_is_marked_stored() {
        let mut m = Module::new("t");
        let i64 = m.types.i64();
        let p64 = m.types.ptr(i64);
        let g = m.add_global("sink", p64, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("f", fty, Linkage::Public);
        m.intern_address_types();
        let slot;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s = b.alloca(i64);
            slot = FunctionBuilder::value_of(s);
            b.store(s, sva_ir::Operand::Global(g));
            b.ret(None);
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, slot).unwrap();
        assert!(r.graph.flags(n).stored, "address escaped into a global");
        // The global's pointee is the alloca node.
        let gp = r.graph.pointee(r.global_node(sva_ir::GlobalId(0))).unwrap();
        assert_eq!(gp, n);
    }

    #[test]
    fn kmalloc_result_is_heap_with_alloc_site() {
        let mut m = module_with_kmalloc();
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let fty = m.types.func(bp, vec![], false);
        let f = m.add_function("use", fty, Linkage::Public);
        m.intern_address_types();
        let res;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let sz = b.c64(96);
            let r = b.call_named("kmalloc", vec![sz]).unwrap();
            res = FunctionBuilder::value_of(r);
            b.ret(Some(r));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, res).unwrap();
        assert!(r.graph.flags(n).heap);
        assert_eq!(r.graph.alloc_sites(n), 1);
        assert_eq!(r.alloc_sites.len(), 1);
        assert_eq!(r.alloc_sites[0].func, f);
    }

    #[test]
    fn kmalloc_size_classes_stay_separate_with_backing() {
        let mut m = module_with_kmalloc();
        m.allocators[0].backed_by = Some("kmem_cache".into());
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("use", fty, Linkage::Public);
        m.intern_address_types();
        let (r1, r2, r3);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s1 = b.c64(64);
            let a1 = b.call_named("kmalloc", vec![s1]).unwrap();
            r1 = FunctionBuilder::value_of(a1);
            let s2 = b.c64(500);
            let a2 = b.call_named("kmalloc", vec![s2]).unwrap();
            r2 = FunctionBuilder::value_of(a2);
            let s3 = b.c64(40);
            let a3 = b.call_named("kmalloc", vec![s3]).unwrap();
            r3 = FunctionBuilder::value_of(a3);
            b.ret(None);
        }
        let _ = bp;
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n1 = r.value_node(f, r1).unwrap();
        let n2 = r.value_node(f, r2).unwrap();
        let n3 = r.value_node(f, r3).unwrap();
        assert_ne!(n1, n2, "different size classes stay separate");
        assert_eq!(n1, n3, "same size class (64) shares a partition");
    }

    #[test]
    fn without_backing_all_kmalloc_merges() {
        let mut m = module_with_kmalloc();
        let i8 = m.types.i8();
        let void = m.types.void();
        let fty = m.types.func(void, vec![], false);
        let f = m.add_function("use", fty, Linkage::Public);
        m.intern_address_types();
        let (r1, r2);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let s1 = b.c64(64);
            let a1 = b.call_named("kmalloc", vec![s1]).unwrap();
            r1 = FunctionBuilder::value_of(a1);
            let s2 = b.c64(500);
            let a2 = b.call_named("kmalloc", vec![s2]).unwrap();
            r2 = FunctionBuilder::value_of(a2);
            b.ret(None);
        }
        let _ = i8;
        let r = analyze(&m, &AnalysisConfig::kernel());
        assert_eq!(r.value_node(f, r1), r.value_node(f, r2));
    }

    #[test]
    fn small_int_to_ptr_is_null_not_unknown() {
        let mut m = Module::new("t");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let fty = m.types.func(bp, vec![], false);
        let f = m.add_function("errptr", fty, Linkage::Public);
        m.intern_address_types();
        let res;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let c = b.c64(-1);
            let p = b.inttoptr(c, i8);
            res = FunctionBuilder::value_of(p);
            b.ret(Some(p));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        // The node (if any) must not be unknown.
        if let Some(n) = r.value_node(f, res) {
            assert!(!r.graph.flags(n).unknown);
        }
    }

    #[test]
    fn large_int_to_ptr_is_unknown() {
        let mut m = Module::new("t");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let fty = m.types.func(bp, vec![], false);
        let f = m.add_function("manuf", fty, Linkage::Public);
        m.intern_address_types();
        let res;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let c = b.c64(0xE0000);
            let p = b.inttoptr(c, i8);
            res = FunctionBuilder::value_of(p);
            b.ret(Some(p));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, res).unwrap();
        assert!(r.graph.flags(n).unknown);
        assert!(!r.graph.is_complete(n));
    }

    #[test]
    fn ptrtoint_round_trip_stays_tracked() {
        let mut m = Module::new("t");
        let i64 = m.types.i64();
        let p64 = m.types.ptr(i64);
        let fty = m.types.func(p64, vec![p64], false);
        let f = m.add_function("rt", fty, Linkage::Public);
        m.intern_address_types();
        let (pin, pout);
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let p = b.param(0);
            pin = FunctionBuilder::value_of(p);
            let x = b.ptrtoint(p);
            let eight = b.c64(8);
            let y = b.add(x, eight);
            let q = b.inttoptr(y, i64);
            pout = FunctionBuilder::value_of(q);
            b.ret(Some(q));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        assert_eq!(r.value_node(f, pin), r.value_node(f, pout));
        let n = r.value_node(f, pin).unwrap();
        assert!(!r.graph.flags(n).unknown);
    }

    #[test]
    fn extern_call_makes_args_incomplete() {
        let mut m = Module::new("t");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let void = m.types.void();
        let ety = m.types.func(void, vec![bp], false);
        m.add_extern("mystery", ety);
        let fty = m.types.func(void, vec![bp], false);
        let f = m.add_function("leak", fty, Linkage::Public);
        m.intern_address_types();
        let param;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let p = b.param(0);
            param = FunctionBuilder::value_of(p);
            b.call_named("mystery", vec![p]);
            b.ret(None);
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, param).unwrap();
        assert!(!r.graph.is_complete(n));
    }

    #[test]
    fn indirect_call_targets_from_table() {
        let mut m = Module::new("t");
        let i64 = m.types.i64();
        let hty = m.types.func(i64, vec![i64], false);
        let h1 = m.add_function("h1", hty, Linkage::Internal);
        let h2 = m.add_function("h2", hty, Linkage::Internal);
        let hp = m.types.ptr(hty);
        let table_ty = m.types.array(hp, 2);
        let bytes = vec![0u8; 16];
        let g = m.add_global(
            "handlers",
            table_ty,
            GlobalInit::Relocated {
                bytes,
                relocs: vec![
                    (0, RelocTarget::Func("h1".into())),
                    (8, RelocTarget::Func("h2".into())),
                ],
            },
            true,
        );
        let fty = m.types.func(i64, vec![i64, i64], false);
        let f = m.add_function("dispatch", fty, Linkage::Public);
        m.intern_address_types();
        {
            for h in [h1, h2] {
                let mut b = FunctionBuilder::new(&mut m, h);
                let x = b.param(0);
                b.ret(Some(x));
            }
            let mut b = FunctionBuilder::new(&mut m, f);
            let idx = b.param(0);
            let arg = b.param(1);
            let slot = b.array_elem_ptr(Operand::Global(g), idx);
            let fp = b.load(slot);
            let r = b.call_indirect(fp, vec![arg]).unwrap();
            b.ret(Some(r));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let site = r
            .callsites
            .iter()
            .find(|((cf, _), _)| *cf == f)
            .map(|(_, info)| info.clone())
            .expect("callsite recorded");
        let mut t = site.targets.clone();
        t.sort();
        assert_eq!(t, vec![h1, h2]);
    }

    #[test]
    fn syscall_registration_and_internal_resolution() {
        let mut m = Module::new("t");
        let i64 = m.types.i64();
        let hty = m.types.func(i64, vec![i64], false);
        let h = m.add_function("sys_write", hty, Linkage::Internal);
        let void = m.types.void();
        let ety = m.types.func(void, vec![], false);
        let boot = m.add_function("boot", ety, Linkage::Public);
        let uty = m.types.func(i64, vec![i64], false);
        let internal = m.add_function("call_write", uty, Linkage::Internal);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, h);
            let x = b.param(0);
            b.ret(Some(x));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, boot);
            let num = b.c64(4);
            b.intrinsic(
                Intrinsic::RegisterSyscall,
                vec![num, Operand::Func(h)],
                None,
            );
            b.ret(None);
        }
        {
            let mut b = FunctionBuilder::new(&mut m, internal);
            let arg = b.param(0);
            let num = b.c64(4);
            let r = b.syscall(num, vec![arg]);
            b.ret(Some(r));
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        assert_eq!(r.syscalls.get(&4), Some(&h));
        let info = r
            .callsites
            .get(&(internal, InstId(0)))
            .expect("internal syscall resolved");
        assert_eq!(info.targets, vec![h]);
    }

    #[test]
    fn excluded_function_params_make_callers_incomplete() {
        let mut m = Module::new("t");
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let void = m.types.void();
        let ety = m.types.func(void, vec![bp], false);
        let lib = m.add_function("lib_copy", ety, Linkage::Public);
        let fty = m.types.func(void, vec![bp], false);
        let f = m.add_function("caller", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, lib);
            b.ret(None);
        }
        let param;
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let p = b.param(0);
            param = FunctionBuilder::value_of(p);
            b.call(lib, vec![p]);
            b.ret(None);
        }
        // Entire kernel: complete.
        let r = analyze(&m, &AnalysisConfig::kernel());
        let n = r.value_node(f, param).unwrap();
        assert!(r.graph.is_complete(n));
        // Excluding the library: incomplete.
        let r = analyze(&m, &AnalysisConfig::kernel_excluding(&["lib_"]));
        let n = r.value_node(f, param).unwrap();
        assert!(!r.graph.is_complete(n));
    }

    #[test]
    fn size_class_rounding() {
        assert_eq!(size_class(1), 32);
        assert_eq!(size_class(32), 32);
        assert_eq!(size_class(33), 64);
        assert_eq!(size_class(96), 128);
        assert_eq!(size_class(4096), 4096);
    }
}

#[cfg(test)]
mod cell_tests {
    use super::*;
    use sva_ir::build::FunctionBuilder;
    use sva_ir::{GlobalInit, Linkage};

    #[test]
    fn gep_cell_rules() {
        let mut t = sva_ir::TypeTable::new();
        let i32t = t.i32();
        let i64t = t.i64();
        let arr = t.array(i64t, 4);
        let s = t.struct_type("rec", vec![i64t, arr, i32t]);
        let sp = t.ptr(s);
        let sarr = t.array(s, 8);
        let sap = t.ptr(sarr);
        let p64 = t.ptr(i64t);
        let z32 = Operand::ConstInt(0, i32t);
        let one = Operand::ConstInt(1, i32t);
        let two = Operand::ConstInt(2, i32t);
        let dynv = Operand::Value(ValueId(0));
        // &p->field2 → cell 2.
        assert_eq!(gep_cell(&t, sp, 0, &[z32, two]), 2);
        // &p->field1[i] → cell 1 (nested array folds into the field).
        assert_eq!(gep_cell(&t, sp, 0, &[z32, one, dynv]), 1);
        // &arr[i].field1 → array transparent, cell 1.
        assert_eq!(gep_cell(&t, sap, 0, &[z32, dynv, one]), 1);
        // plain pointer arithmetic on i64* → cell 0.
        assert_eq!(gep_cell(&t, p64, 0, &[dynv]), 0);
        // already inside a field: stays there.
        assert_eq!(gep_cell(&t, p64, 3, &[dynv]), 3);
    }

    /// Scalar fields must not alias pointer fields of the same struct:
    /// storing a syscall-arg integer into `size` must not drag the
    /// `data` pointer's partition into the argument's partition.
    #[test]
    fn field_sensitivity_keeps_scalar_and_pointer_fields_apart() {
        let mut m = Module::new("t");
        let i8t = m.types.i8();
        let bp = m.types.ptr(i8t);
        let i64t = m.types.i64();
        // struct inode { size: i64, data: i8* }
        let inode = m.types.struct_type("inode", vec![i64t, bp]);
        let _g = m.add_global("ino", inode, GlobalInit::Zero, false);
        let buf = m.types.array(i8t, 64);
        let _g2 = m.add_global("storage", buf, GlobalInit::Zero, false);
        let void = m.types.void();
        let fty = m.types.func(void, vec![i64t], false);
        let f = m.add_function("sys_set", fty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let n = b.param(0); // untrusted size
            let g = Operand::Global(sva_ir::GlobalId(0));
            let size_p = b.field_ptr(g, 0);
            b.store(n, size_p); // scalar field takes the tracked int
            let data_p = b.field_ptr(g, 1);
            let g2 = Operand::Global(sva_ir::GlobalId(1));
            let zero = b.c32(0);
            let s0 = b.gep(g2, vec![zero, zero]);
            b.store(s0, data_p); // pointer field points at storage
            b.ret(None);
        }
        // Register as a syscall handler so the param unifies with the
        // userspace pseudo-object.
        let void2 = m.types.void();
        let boot_ty = m.types.func(void2, vec![], false);
        let boot = m.add_function("boot", boot_ty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, boot);
            let n = b.c64(7);
            b.intrinsic(Intrinsic::RegisterSyscall, vec![n, Operand::Func(f)], None);
            b.ret(None);
        }
        let r = analyze(&m, &AnalysisConfig::kernel());
        let us = r.graph.find_ro(r.userspace_node.unwrap());
        let storage = r.global_node(sva_ir::GlobalId(1));
        assert_ne!(
            storage, us,
            "the data pointer's target must not merge with userspace"
        );
        // But the scalar cell's contents did merge with userspace (the
        // tracked integer lives there).
        let ino = r.global_node(sva_ir::GlobalId(0));
        let cell0 = r.graph.pointee_at_ro(ino, 0).unwrap();
        assert_eq!(cell0, us);
        // And the pointer cell points at storage.
        let cell1 = r.graph.pointee_at_ro(ino, 1).unwrap();
        assert_eq!(cell1, storage);
    }

    /// Conflicting access patterns collapse field sensitivity, soundly
    /// folding the cells together.
    #[test]
    fn field_collapse_merges_cells() {
        let mut t = sva_ir::TypeTable::new();
        let mut g = crate::graph::PointsToGraph::new();
        let n = g.fresh();
        let a = g.pointee_at(n, 0);
        let b = g.pointee_at(n, 1);
        assert_ne!(g.find_ro(a), g.find_ro(b));
        g.collapse_fields(n);
        assert_eq!(g.find_ro(a), g.find_ro(b), "cells folded");
        // New cell lookups route through cell 0.
        let c = g.pointee_at(n, 5);
        assert_eq!(g.find_ro(c), g.find_ro(a));
        let _ = &mut t;
    }
}
