//! # Unification-based points-to analysis for SVA
//!
//! The SVA safety strategy assumes a *unification-style* pointer analysis
//! (paper §4.3, citing Steensgaard): every pointer variable points to a
//! unique node in the points-to graph, and each node has at most one
//! outgoing points-to edge. This crate implements that analysis over the
//! `sva-ir` instruction set, plus the kernel-specific refinements of §4.8:
//!
//! * small integer constants (error encodings like `1`/`-1`) cast to
//!   pointers are treated as null instead of poisoning the partition;
//! * pointer-sized integers are tracked as potential pointers, so
//!   `ptrtoint`/arithmetic/`inttoptr` round trips stay analyzable;
//! * internal system calls (a trap with a constant number) are resolved to
//!   the registered handler and analyzed as direct calls;
//! * `memcpy`-style copies to/from userspace merge only the *targets* of
//!   the copied objects' outgoing edges, keeping kernel and user objects
//!   apart;
//! * call sites can carry a programmer signature assertion that filters the
//!   indirect-call target set (enabling devirtualization).
//!
//! Outputs: the [`graph::PointsToGraph`] (partitions with
//! heap/stack/global/function flags, type-homogeneity, completeness), a
//! call graph with per-site target sets, and the static safety metrics of
//! the paper's Table 9 ([`metrics`]).

pub mod analyze;
pub mod graph;
pub mod metrics;

pub use analyze::{analyze, AnalysisConfig, AnalysisResult, CallSiteInfo};
pub use graph::{NodeFlags, NodeId, PointsToGraph};
pub use metrics::{compute_metrics, AccessKind, StaticMetrics};
