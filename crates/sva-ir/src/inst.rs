//! SVA-Core instructions, operands and intrinsics.
//!
//! The instruction set is RISC-like and fully typed (paper §3.2): arithmetic
//! and logic, comparisons producing `i1`, explicit branches, typed indexing
//! via `getelementptr`, loads and stores, calls, stack allocation, atomic
//! memory operations and a write barrier. Heap allocation is performed by
//! calling declared allocator functions (paper §4.3), while the SVA-OS and
//! safety-check operations are [`Intrinsic`]s implemented by the SVM.

use crate::module::{BlockId, ExternId, FuncId, GlobalId, ValueId};
use crate::types::TypeId;

/// Dense handle of an instruction inside a [`crate::Function`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct InstId(pub u32);

/// An operand of an instruction.
///
/// SSA values, constants and references to module-level entities are all
/// operands; only instructions and block parameters define [`ValueId`]s.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// An SSA value defined by an instruction or function parameter.
    Value(ValueId),
    /// An integer constant of the given type (stored sign-extended).
    ConstInt(i64, TypeId),
    /// A floating-point constant (bit pattern of an `f64`).
    ConstF64(u64),
    /// The null pointer of the given pointer type.
    Null(TypeId),
    /// The address of a global variable.
    Global(GlobalId),
    /// The address of a function (for indirect calls / tables).
    Func(FuncId),
    /// The address of an external (declared, undefined) function.
    Extern(ExternId),
    /// An undefined value of the given type.
    Undef(TypeId),
}

impl Operand {
    /// Convenience constructor for a typed integer constant.
    pub fn int(v: i64, ty: TypeId) -> Self {
        Operand::ConstInt(v, ty)
    }
}

/// Integer binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (traps on zero).
    UDiv,
    /// Signed division (traps on zero).
    SDiv,
    /// Unsigned remainder (traps on zero).
    URem,
    /// Signed remainder (traps on zero).
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Logical shift right.
    LShr,
    /// Arithmetic shift right.
    AShr,
    /// Floating addition.
    FAdd,
    /// Floating subtraction.
    FSub,
    /// Floating multiplication.
    FMul,
    /// Floating division.
    FDiv,
}

impl BinOp {
    /// True for the floating-point operations.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Integer comparison predicates (result type is `i1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
}

impl IPred {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IPred::Eq => "eq",
            IPred::Ne => "ne",
            IPred::ULt => "ult",
            IPred::ULe => "ule",
            IPred::UGt => "ugt",
            IPred::UGe => "uge",
            IPred::SLt => "slt",
            IPred::SLe => "sle",
            IPred::SGt => "sgt",
            IPred::SGe => "sge",
        }
    }
}

/// Explicit cast operations (paper §3.1: unsafe languages are supported via
/// explicit cast instructions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastOp {
    /// Pointer-to-pointer reinterpretation.
    Bitcast,
    /// Integer truncation to a narrower width.
    Trunc,
    /// Zero extension to a wider width.
    ZExt,
    /// Sign extension to a wider width.
    SExt,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer — the "manufactured address" source (paper §4.7).
    IntToPtr,
    /// Integer to float.
    SiToFp,
    /// Float to integer (truncating).
    FpToSi,
}

impl CastOp {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Bitcast => "bitcast",
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
        }
    }
}

/// Atomic read-modify-write operations (paper §3.2: added to support an OS
/// kernel and multi-threaded code).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AtomicOp {
    /// Atomic load-add-store; returns the *old* value.
    Add,
    /// Atomic load-sub-store; returns the old value.
    Sub,
    /// Atomic exchange; returns the old value.
    Xchg,
}

/// The callee of a [`Inst::Call`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Callee {
    /// Direct call to a function defined in this module.
    Direct(FuncId),
    /// Direct call to a declared external function.
    External(ExternId),
    /// Indirect call through a function pointer value.
    Indirect(Operand),
    /// A virtual-machine intrinsic (SVA-OS or safety-check operation).
    Intrinsic(Intrinsic),
}

/// Operations implemented by the Secure Virtual Machine rather than by
/// bytecode: the SVA-OS interface (paper §3.3, Tables 1–2), the safety
/// run-time operations inserted by the verifier (paper §4.5, Table 3) and a
/// few compiler-known memory intrinsics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    // --- Table 1: native processor state ---
    /// `llva.save.integer(void* buffer)` — save integer state; returns 1 on
    /// the original return and 0 when resumed via `llva.load.integer`.
    SaveInteger,
    /// `llva.load.integer(void* buffer)` — resume previously saved state.
    LoadInteger,
    /// `llva.save.fp(void* buffer, int always)` — save FP state (lazily
    /// unless `always != 0`).
    SaveFp,
    /// `llva.load.fp(void* buffer)` — restore FP state.
    LoadFp,

    // --- Table 2: interrupt contexts ---
    /// `llva.icontext.save(void* icp, void* isp)` — save an interrupt
    /// context as integer state.
    IcontextSave,
    /// `llva.icontext.load(void* icp, void* isp)` — load integer state into
    /// an interrupt context.
    IcontextLoad,
    /// `llva.icontext.commit(void* icp)` — commit the context to memory.
    IcontextCommit,
    /// `llva.ipush.function(void* icp, fn, arg)` — arrange for `fn(arg)` to
    /// run when the context returns (signal dispatch).
    IpushFunction,
    /// `llva.was.privileged(void* icp)` — 1 if the context was privileged.
    WasPrivileged,
    /// `sva.icontext.get()` — handle of the interrupt context that entered
    /// the kernel on this trap.
    IcontextGet,
    /// `sva.icontext.new(isp, asid)` — create an interrupt context from
    /// saved integer state (0 for an empty context) bound to an address
    /// space; the mechanism behind `copy_thread` in a ported kernel.
    IcontextNew,
    /// `sva.icontext.setentry(icp, fn, arg)` — reset a context so that
    /// resuming it enters `fn(arg)` fresh in user mode (exec).
    IcontextSetEntry,

    // --- SVA-OS privileged operations (paper §3.3, "straightforward") ---
    /// `sva_register_syscall(num, fn)` — register a system-call handler.
    RegisterSyscall,
    /// `sva_register_interrupt(num, fn)` — register an interrupt handler.
    RegisterInterrupt,
    /// `sva_io_read(port)` — read from an I/O port.
    IoRead,
    /// `sva_io_write(port, value)` — write to an I/O port.
    IoWrite,
    /// `sva_mmu_map(vpage, pframe, flags)` — establish a mapping (mediated).
    MmuMap,
    /// `sva_mmu_unmap(vpage)` — remove a mapping.
    MmuUnmap,
    /// `sva.mmu.new.space()` — create an address space, returning its id.
    MmuNewSpace,
    /// `sva.mmu.load.space(asid)` — switch the current user address space
    /// (the CR3 write of a ported kernel).
    MmuLoadSpace,
    /// `sva.mmu.copy.page(dst_asid, vpage)` — copy one page of the current
    /// space into `dst_asid` (fork's page copy, kernel-driven).
    MmuCopyPage,
    /// `sva.mmu.free.space(asid)` — destroy an address space (process reap).
    MmuFreeSpace,
    /// `sva_mmu_protect(vpage, flags)` — change protection bits.
    MmuProtect,
    /// `sva_invoke_syscall(num, a0..a3)` — user-side trap into the kernel.
    Syscall,
    /// `sva_iret(icp)` — return from an interrupt/trap context.
    Iret,
    /// `sva_cpu_id()` — current virtual CPU.
    CpuId,
    /// `sva_get_timer()` — monotonic virtual clock (cycles).
    GetTimer,

    // --- Table 3 + §4.5: safety run-time (inserted by the verifier) ---
    /// `pchk.reg.obj(MP, addr, len)` — register an object with a metapool.
    PchkRegObj,
    /// `pchk.drop.obj(MP, addr)` — remove an object from a metapool.
    PchkDropObj,
    /// `boundscheck(MP, src, derived)` — verify `derived` stays inside the
    /// object containing `src`.
    BoundsCheck,
    /// `lscheck(MP, ptr)` — verify `ptr` points into a registered object.
    LsCheck,
    /// `getbounds(MP, ptr, &start, &end)` — fetch the bounds of the object
    /// containing `ptr` into two out-parameters (paper Fig. 2 line 8).
    GetBounds,
    /// `boundscheck(start, derived, end)` — bounds check against known
    /// bounds, used when the verifier can determine the bounds expressions
    /// statically (paper Fig. 2 line 19: after a `kmalloc` of known size).
    BoundsCheckRange,
    /// `funccheck(setid, fnptr)` — indirect-call check against the call
    /// graph's target set.
    FuncCheck,
    /// `pseudo_alloc(start, end)` — register a manufactured-address range
    /// (paper §4.7); replaced by `pchk.reg.obj` by the compiler.
    PseudoAlloc,

    // --- Compiler-known memory intrinsics ---
    /// `memcpy(dst, src, len)`.
    MemCpy,
    /// `memmove(dst, src, len)`.
    MemMove,
    /// `memset(dst, byte, len)`.
    MemSet,

    // --- Violation recovery (DESIGN.md §4.3) ---
    /// `sva.recover.register()` — register the current point as the
    /// kernel's recovery context. Returns 0 on registration; when the
    /// machine later unwinds here after a contained violation it returns
    /// the nonzero packed resume code (setjmp-style, like
    /// `llva.save.integer`).
    RecoverRegister,
    /// `sva.recover.unwind(code)` — explicitly unwind to the registered
    /// recovery context with the given resume code (nonzero).
    RecoverUnwind,
    /// `sva.recover.release(pool)` — lift the quarantine on a metapool
    /// after the kernel has dealt with the violation; returns 1 if the
    /// release took effect, 0 if the pool is poisoned or unknown.
    RecoverRelease,
    /// `sva.recover.repair(subsys)` — tear down and reinitialize every
    /// pool poisoned under recovery-domain subsystem `subsys`
    /// (DESIGN.md §4.8): the poison is cleared, the violation budget
    /// resets, and the pool's lookup structures are rebuilt from the
    /// live registry. Returns the number of pools repaired.
    RecoverRepair,
    /// `sva.recover.probation(subsys, verdict)` — report a health-state
    /// transition of a subsystem on probation (DESIGN.md §4.8):
    /// verdict 0 = probation passed (back to live), 1 = re-poisoned
    /// during probation (re-degraded with doubled backoff), 2 = strike
    /// budget exhausted (permanently retired). Pure bookkeeping: bumps
    /// the VM's probation counters and emits a trace event.
    RecoverProbation,

    // --- Diagnostics ---
    /// `sva_print(val)` — write a value to the VM console (debug aid).
    Print,
    /// `sva_abort(code)` — terminate execution with an error code.
    Abort,
}

impl Intrinsic {
    /// The textual name used in assembly (`call @llva.save.integer(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::SaveInteger => "llva.save.integer",
            Intrinsic::LoadInteger => "llva.load.integer",
            Intrinsic::SaveFp => "llva.save.fp",
            Intrinsic::LoadFp => "llva.load.fp",
            Intrinsic::IcontextSave => "llva.icontext.save",
            Intrinsic::IcontextLoad => "llva.icontext.load",
            Intrinsic::IcontextCommit => "llva.icontext.commit",
            Intrinsic::IpushFunction => "llva.ipush.function",
            Intrinsic::WasPrivileged => "llva.was.privileged",
            Intrinsic::IcontextGet => "sva.icontext.get",
            Intrinsic::IcontextNew => "sva.icontext.new",
            Intrinsic::IcontextSetEntry => "sva.icontext.setentry",
            Intrinsic::RegisterSyscall => "sva.register.syscall",
            Intrinsic::RegisterInterrupt => "sva.register.interrupt",
            Intrinsic::IoRead => "sva.io.read",
            Intrinsic::IoWrite => "sva.io.write",
            Intrinsic::MmuMap => "sva.mmu.map",
            Intrinsic::MmuUnmap => "sva.mmu.unmap",
            Intrinsic::MmuNewSpace => "sva.mmu.new.space",
            Intrinsic::MmuLoadSpace => "sva.mmu.load.space",
            Intrinsic::MmuCopyPage => "sva.mmu.copy.page",
            Intrinsic::MmuFreeSpace => "sva.mmu.free.space",
            Intrinsic::MmuProtect => "sva.mmu.protect",
            Intrinsic::Syscall => "sva.syscall",
            Intrinsic::Iret => "sva.iret",
            Intrinsic::CpuId => "sva.cpu.id",
            Intrinsic::GetTimer => "sva.get.timer",
            Intrinsic::PchkRegObj => "pchk.reg.obj",
            Intrinsic::PchkDropObj => "pchk.drop.obj",
            Intrinsic::BoundsCheck => "pchk.bounds",
            Intrinsic::LsCheck => "pchk.lscheck",
            Intrinsic::GetBounds => "pchk.getbounds",
            Intrinsic::BoundsCheckRange => "pchk.bounds.range",
            Intrinsic::FuncCheck => "pchk.funccheck",
            Intrinsic::PseudoAlloc => "sva.pseudo.alloc",
            Intrinsic::MemCpy => "sva.memcpy",
            Intrinsic::MemMove => "sva.memmove",
            Intrinsic::MemSet => "sva.memset",
            Intrinsic::RecoverRegister => "sva.recover.register",
            Intrinsic::RecoverUnwind => "sva.recover.unwind",
            Intrinsic::RecoverRelease => "sva.recover.release",
            Intrinsic::RecoverRepair => "sva.recover.repair",
            Intrinsic::RecoverProbation => "sva.recover.probation",
            Intrinsic::Print => "sva.print",
            Intrinsic::Abort => "sva.abort",
        }
    }

    /// Parses an intrinsic from its textual name.
    pub fn from_name(name: &str) -> Option<Self> {
        use Intrinsic::*;
        Some(match name {
            "llva.save.integer" => SaveInteger,
            "llva.load.integer" => LoadInteger,
            "llva.save.fp" => SaveFp,
            "llva.load.fp" => LoadFp,
            "llva.icontext.save" => IcontextSave,
            "llva.icontext.load" => IcontextLoad,
            "llva.icontext.commit" => IcontextCommit,
            "llva.ipush.function" => IpushFunction,
            "llva.was.privileged" => WasPrivileged,
            "sva.icontext.get" => IcontextGet,
            "sva.icontext.new" => IcontextNew,
            "sva.icontext.setentry" => IcontextSetEntry,
            "sva.register.syscall" => RegisterSyscall,
            "sva.register.interrupt" => RegisterInterrupt,
            "sva.io.read" => IoRead,
            "sva.io.write" => IoWrite,
            "sva.mmu.map" => MmuMap,
            "sva.mmu.unmap" => MmuUnmap,
            "sva.mmu.new.space" => MmuNewSpace,
            "sva.mmu.load.space" => MmuLoadSpace,
            "sva.mmu.copy.page" => MmuCopyPage,
            "sva.mmu.free.space" => MmuFreeSpace,
            "sva.mmu.protect" => MmuProtect,
            "sva.syscall" => Syscall,
            "sva.iret" => Iret,
            "sva.cpu.id" => CpuId,
            "sva.get.timer" => GetTimer,
            "pchk.reg.obj" => PchkRegObj,
            "pchk.drop.obj" => PchkDropObj,
            "pchk.bounds" => BoundsCheck,
            "pchk.lscheck" => LsCheck,
            "pchk.getbounds" => GetBounds,
            "pchk.bounds.range" => BoundsCheckRange,
            "pchk.funccheck" => FuncCheck,
            "sva.pseudo.alloc" => PseudoAlloc,
            "sva.memcpy" => MemCpy,
            "sva.memmove" => MemMove,
            "sva.memset" => MemSet,
            "sva.recover.register" => RecoverRegister,
            "sva.recover.unwind" => RecoverUnwind,
            "sva.recover.release" => RecoverRelease,
            "sva.recover.repair" => RecoverRepair,
            "sva.recover.probation" => RecoverProbation,
            "sva.print" => Print,
            "sva.abort" => Abort,
            _ => return None,
        })
    }

    /// True for the safety-check operations that only the bytecode verifier
    /// may insert (untrusted input bytecode containing them is rejected).
    pub fn verifier_only(self) -> bool {
        matches!(
            self,
            Intrinsic::PchkRegObj
                | Intrinsic::PchkDropObj
                | Intrinsic::BoundsCheck
                | Intrinsic::BoundsCheckRange
                | Intrinsic::LsCheck
                | Intrinsic::GetBounds
                | Intrinsic::FuncCheck
        )
    }

    /// True for privileged SVA-OS operations that require kernel mode.
    pub fn privileged(self) -> bool {
        matches!(
            self,
            Intrinsic::RegisterSyscall
                | Intrinsic::RegisterInterrupt
                | Intrinsic::IoRead
                | Intrinsic::IoWrite
                | Intrinsic::MmuMap
                | Intrinsic::MmuUnmap
                | Intrinsic::MmuProtect
                | Intrinsic::MmuNewSpace
                | Intrinsic::MmuLoadSpace
                | Intrinsic::MmuCopyPage
                | Intrinsic::MmuFreeSpace
                | Intrinsic::Iret
                | Intrinsic::IcontextGet
                | Intrinsic::IcontextNew
                | Intrinsic::IcontextSetEntry
                | Intrinsic::IcontextSave
                | Intrinsic::IcontextLoad
                | Intrinsic::IcontextCommit
                | Intrinsic::IpushFunction
                | Intrinsic::WasPrivileged
                | Intrinsic::RecoverRegister
                | Intrinsic::RecoverUnwind
                | Intrinsic::RecoverRelease
                | Intrinsic::RecoverRepair
                | Intrinsic::RecoverProbation
        )
    }
}

/// An SVA-Core instruction.
///
/// Instructions that produce a value get a [`ValueId`] assigned by the
/// containing function. Terminators must appear exactly once, at the end of
/// each basic block.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// Binary arithmetic/logic on two operands of the same type.
    Bin {
        /// The operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Integer (or pointer) comparison producing `i1`.
    ICmp {
        /// The predicate.
        pred: IPred,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `cond ? tval : fval` without branching.
    Select {
        /// `i1` condition.
        cond: Operand,
        /// Value if true.
        tval: Operand,
        /// Value if false.
        fval: Operand,
    },
    /// Explicit type conversion.
    Cast {
        /// The conversion kind.
        op: CastOp,
        /// Source value.
        val: Operand,
        /// Destination type.
        to: TypeId,
    },
    /// Typed indexing: computes `&base[idx0].field[idx1]...` without
    /// touching memory. All address arithmetic goes through this instruction
    /// (paper §4.5: "all indexing calculations are performed by the
    /// getelementptr instruction").
    Gep {
        /// Base pointer.
        base: Operand,
        /// Index list; the first index scales by the pointee size.
        indices: Vec<Operand>,
    },
    /// Memory read through a typed pointer.
    Load {
        /// Pointer operand.
        ptr: Operand,
    },
    /// Memory write through a typed pointer.
    Store {
        /// Value to store.
        val: Operand,
        /// Pointer operand.
        ptr: Operand,
    },
    /// Stack allocation of `count` elements of `ty` in the current frame.
    Alloca {
        /// Element type.
        ty: TypeId,
        /// Element count (usually constant 1).
        count: Operand,
    },
    /// Function call (direct, external, indirect, or intrinsic).
    Call {
        /// The callee.
        callee: Callee,
        /// Argument operands.
        args: Vec<Operand>,
    },
    /// SSA φ-node merging values per predecessor block.
    Phi {
        /// `(predecessor, value)` pairs; must cover every predecessor.
        incomings: Vec<(BlockId, Operand)>,
        /// The merged type.
        ty: TypeId,
    },
    /// Atomic read-modify-write; returns the previous value.
    AtomicRmw {
        /// Which RMW operation.
        op: AtomicOp,
        /// Pointer to the location.
        ptr: Operand,
        /// Operand value.
        val: Operand,
    },
    /// Atomic compare-and-swap; returns the previous value.
    CmpXchg {
        /// Pointer to the location.
        ptr: Operand,
        /// Expected value.
        expected: Operand,
        /// Replacement value.
        new: Operand,
    },
    /// Memory write barrier (paper §3.2).
    Fence,
    /// Unconditional branch.
    Br {
        /// Target block.
        target: BlockId,
    },
    /// Two-way conditional branch.
    CondBr {
        /// `i1` condition.
        cond: Operand,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Multi-way branch on an integer.
    Switch {
        /// Scrutinee.
        val: Operand,
        /// Default target.
        default: BlockId,
        /// `(constant, target)` arms.
        cases: Vec<(i64, BlockId)>,
    },
    /// Function return.
    Ret {
        /// Returned value, or `None` for `void`.
        val: Option<Operand>,
    },
    /// Marks unreachable control flow; executing it is a VM fault.
    Unreachable,
}

impl Inst {
    /// True if this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. }
                | Inst::CondBr { .. }
                | Inst::Switch { .. }
                | Inst::Ret { .. }
                | Inst::Unreachable
        )
    }

    /// The blocks this terminator may transfer control to.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br { target } => vec![*target],
            Inst::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Inst::Switch { default, cases, .. } => {
                let mut v = vec![*default];
                v.extend(cases.iter().map(|(_, b)| *b));
                v
            }
            _ => Vec::new(),
        }
    }

    /// Visits every operand of the instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Inst::Bin { lhs, rhs, .. } | Inst::ICmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Select { cond, tval, fval } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Inst::Cast { val, .. } => f(val),
            Inst::Gep { base, indices } => {
                f(base);
                for i in indices {
                    f(i);
                }
            }
            Inst::Load { ptr } => f(ptr),
            Inst::Store { val, ptr } => {
                f(val);
                f(ptr);
            }
            Inst::Alloca { count, .. } => f(count),
            Inst::Call { callee, args } => {
                if let Callee::Indirect(op) = callee {
                    f(op);
                }
                for a in args {
                    f(a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
            Inst::AtomicRmw { ptr, val, .. } => {
                f(ptr);
                f(val);
            }
            Inst::CmpXchg { ptr, expected, new } => {
                f(ptr);
                f(expected);
                f(new);
            }
            Inst::Fence | Inst::Br { .. } | Inst::Unreachable => {}
            Inst::CondBr { cond, .. } => f(cond),
            Inst::Switch { val, .. } => f(val),
            Inst::Ret { val } => {
                if let Some(v) = val {
                    f(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        let t = Inst::Br { target: BlockId(0) };
        assert!(t.is_terminator());
        assert_eq!(t.successors(), vec![BlockId(0)]);
        let l = Inst::Load {
            ptr: Operand::Null(TypeId(0)),
        };
        assert!(!l.is_terminator());
        assert!(l.successors().is_empty());
    }

    #[test]
    fn switch_successors_include_default_and_cases() {
        let s = Inst::Switch {
            val: Operand::ConstInt(3, TypeId(0)),
            default: BlockId(9),
            cases: vec![(1, BlockId(1)), (2, BlockId(2))],
        };
        assert_eq!(s.successors(), vec![BlockId(9), BlockId(1), BlockId(2)]);
    }

    #[test]
    fn intrinsic_names_round_trip() {
        use Intrinsic::*;
        let all = [
            SaveInteger,
            LoadInteger,
            SaveFp,
            LoadFp,
            IcontextSave,
            IcontextLoad,
            IcontextCommit,
            IpushFunction,
            WasPrivileged,
            RegisterSyscall,
            RegisterInterrupt,
            IoRead,
            IoWrite,
            MmuMap,
            MmuUnmap,
            MmuProtect,
            MmuNewSpace,
            MmuLoadSpace,
            MmuCopyPage,
            MmuFreeSpace,
            Syscall,
            Iret,
            CpuId,
            GetTimer,
            PchkRegObj,
            PchkDropObj,
            IcontextGet,
            IcontextNew,
            IcontextSetEntry,
            BoundsCheck,
            LsCheck,
            GetBounds,
            BoundsCheckRange,
            FuncCheck,
            PseudoAlloc,
            MemCpy,
            MemMove,
            MemSet,
            Print,
            Abort,
        ];
        for i in all {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i), "{}", i.name());
        }
        assert_eq!(Intrinsic::from_name("bogus"), None);
    }

    #[test]
    fn verifier_only_flags() {
        assert!(Intrinsic::BoundsCheck.verifier_only());
        assert!(Intrinsic::PchkRegObj.verifier_only());
        assert!(!Intrinsic::Syscall.verifier_only());
        assert!(!Intrinsic::MemCpy.verifier_only());
    }

    #[test]
    fn privileged_flags() {
        assert!(Intrinsic::MmuMap.privileged());
        assert!(Intrinsic::RegisterSyscall.privileged());
        assert!(!Intrinsic::Syscall.privileged());
        assert!(!Intrinsic::Print.privileged());
    }

    #[test]
    fn operand_visitation_covers_call() {
        let c = Inst::Call {
            callee: Callee::Indirect(Operand::Value(ValueId(7))),
            args: vec![Operand::ConstInt(1, TypeId(0)), Operand::Value(ValueId(8))],
        };
        let mut seen = Vec::new();
        c.for_each_operand(|o| seen.push(*o));
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], Operand::Value(ValueId(7)));
    }
}
