//! On-disk "bytecode" encoding of SVA modules, plus digital signing.
//!
//! SVA code is shipped to end-user systems as virtual object code
//! (paper §2). When translation happens offline, the cached native code and
//! the bytecode are *digitally signed together* so the SVM can check their
//! integrity at load time (paper §3.4). This module provides:
//!
//! * [`encode_module`] / [`decode_module`] — a compact, versioned binary
//!   encoding of a whole [`Module`] including its pool annotations, and
//! * [`sign`] / [`verify_signature`] — a keyed integrity tag.
//!
//! The tag is a keyed sponge over a 64-bit mixing permutation — an
//! *integrity simulation*, not a cryptographic MAC; a production SVM would
//! use a real signature scheme. The structure (sign bytecode + native cache
//! together, verify before use) is what the paper specifies and is what the
//! SVM in `sva-vm` enforces.

use crate::inst::{AtomicOp, BinOp, Callee, CastOp, IPred, Inst, InstId, Intrinsic, Operand};
use crate::module::{
    AllocKind, AllocatorDecl, Block, BlockId, ExternId, FuncId, Function, GlobalId, GlobalInit,
    Linkage, MetaPoolDesc, Module, PoolAnnotations, RelocTarget, SizeSpec, ValueDef, ValueId,
};
use crate::types::{StructDef, Type, TypeId, TypeTable};

/// Magic bytes at the start of every bytecode file.
pub const MAGIC: &[u8; 6] = b"SVABC\x01";

/// Errors produced while decoding bytecode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic header did not match.
    BadMagic,
    /// Input ended prematurely.
    Truncated,
    /// An enum tag byte was out of range.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadString,
    /// The integrity signature did not verify.
    BadSignature,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad bytecode magic"),
            DecodeError::Truncated => write!(f, "truncated bytecode"),
            DecodeError::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            DecodeError::BadString => write!(f, "invalid utf-8 string"),
            DecodeError::BadSignature => write!(f, "bytecode signature verification failed"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }

    fn opt_str(&mut self, v: &Option<String>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::BadString)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.u32()?)),
        }
    }

    fn opt_str(&mut self) -> Result<Option<String>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            _ => Ok(Some(self.str()?)),
        }
    }
}

fn enc_operand(e: &mut Enc, op: &Operand) {
    match op {
        Operand::Value(v) => {
            e.u8(0);
            e.u32(v.0);
        }
        Operand::ConstInt(v, t) => {
            e.u8(1);
            e.i64(*v);
            e.u32(t.0);
        }
        Operand::ConstF64(bits) => {
            e.u8(2);
            e.u64(*bits);
        }
        Operand::Null(t) => {
            e.u8(3);
            e.u32(t.0);
        }
        Operand::Global(g) => {
            e.u8(4);
            e.u32(g.0);
        }
        Operand::Func(f) => {
            e.u8(5);
            e.u32(f.0);
        }
        Operand::Extern(x) => {
            e.u8(6);
            e.u32(x.0);
        }
        Operand::Undef(t) => {
            e.u8(7);
            e.u32(t.0);
        }
    }
}

fn dec_operand(d: &mut Dec) -> Result<Operand, DecodeError> {
    Ok(match d.u8()? {
        0 => Operand::Value(ValueId(d.u32()?)),
        1 => {
            let v = d.i64()?;
            Operand::ConstInt(v, TypeId(d.u32()?))
        }
        2 => Operand::ConstF64(d.u64()?),
        3 => Operand::Null(TypeId(d.u32()?)),
        4 => Operand::Global(GlobalId(d.u32()?)),
        5 => Operand::Func(FuncId(d.u32()?)),
        6 => Operand::Extern(ExternId(d.u32()?)),
        7 => Operand::Undef(TypeId(d.u32()?)),
        t => return Err(DecodeError::BadTag("operand", t)),
    })
}

fn enc_operands(e: &mut Enc, ops: &[Operand]) {
    e.u32(ops.len() as u32);
    for o in ops {
        enc_operand(e, o);
    }
}

fn dec_operands(d: &mut Dec) -> Result<Vec<Operand>, DecodeError> {
    let n = d.u32()? as usize;
    (0..n).map(|_| dec_operand(d)).collect()
}

fn enc_inst(e: &mut Enc, inst: &Inst) {
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            e.u8(0);
            e.u8(*op as u8);
            enc_operand(e, lhs);
            enc_operand(e, rhs);
        }
        Inst::ICmp { pred, lhs, rhs } => {
            e.u8(1);
            e.u8(*pred as u8);
            enc_operand(e, lhs);
            enc_operand(e, rhs);
        }
        Inst::Select { cond, tval, fval } => {
            e.u8(2);
            enc_operand(e, cond);
            enc_operand(e, tval);
            enc_operand(e, fval);
        }
        Inst::Cast { op, val, to } => {
            e.u8(3);
            e.u8(*op as u8);
            enc_operand(e, val);
            e.u32(to.0);
        }
        Inst::Gep { base, indices } => {
            e.u8(4);
            enc_operand(e, base);
            enc_operands(e, indices);
        }
        Inst::Load { ptr } => {
            e.u8(5);
            enc_operand(e, ptr);
        }
        Inst::Store { val, ptr } => {
            e.u8(6);
            enc_operand(e, val);
            enc_operand(e, ptr);
        }
        Inst::Alloca { ty, count } => {
            e.u8(7);
            e.u32(ty.0);
            enc_operand(e, count);
        }
        Inst::Call { callee, args } => {
            e.u8(8);
            match callee {
                Callee::Direct(f) => {
                    e.u8(0);
                    e.u32(f.0);
                }
                Callee::External(x) => {
                    e.u8(1);
                    e.u32(x.0);
                }
                Callee::Indirect(op) => {
                    e.u8(2);
                    enc_operand(e, op);
                }
                Callee::Intrinsic(i) => {
                    e.u8(3);
                    e.str(i.name());
                }
            }
            enc_operands(e, args);
        }
        Inst::Phi { incomings, ty } => {
            e.u8(9);
            e.u32(ty.0);
            e.u32(incomings.len() as u32);
            for (b, v) in incomings {
                e.u32(b.0);
                enc_operand(e, v);
            }
        }
        Inst::AtomicRmw { op, ptr, val } => {
            e.u8(10);
            e.u8(*op as u8);
            enc_operand(e, ptr);
            enc_operand(e, val);
        }
        Inst::CmpXchg { ptr, expected, new } => {
            e.u8(11);
            enc_operand(e, ptr);
            enc_operand(e, expected);
            enc_operand(e, new);
        }
        Inst::Fence => e.u8(12),
        Inst::Br { target } => {
            e.u8(13);
            e.u32(target.0);
        }
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            e.u8(14);
            enc_operand(e, cond);
            e.u32(then_bb.0);
            e.u32(else_bb.0);
        }
        Inst::Switch {
            val,
            default,
            cases,
        } => {
            e.u8(15);
            enc_operand(e, val);
            e.u32(default.0);
            e.u32(cases.len() as u32);
            for (c, b) in cases {
                e.i64(*c);
                e.u32(b.0);
            }
        }
        Inst::Ret { val } => {
            e.u8(16);
            match val {
                None => e.u8(0),
                Some(v) => {
                    e.u8(1);
                    enc_operand(e, v);
                }
            }
        }
        Inst::Unreachable => e.u8(17),
    }
}

fn bin_from(v: u8) -> Result<BinOp, DecodeError> {
    use BinOp::*;
    const ALL: [BinOp; 17] = [
        Add, Sub, Mul, UDiv, SDiv, URem, SRem, And, Or, Xor, Shl, LShr, AShr, FAdd, FSub, FMul,
        FDiv,
    ];
    ALL.get(v as usize)
        .copied()
        .ok_or(DecodeError::BadTag("binop", v))
}

fn pred_from(v: u8) -> Result<IPred, DecodeError> {
    use IPred::*;
    const ALL: [IPred; 10] = [Eq, Ne, ULt, ULe, UGt, UGe, SLt, SLe, SGt, SGe];
    ALL.get(v as usize)
        .copied()
        .ok_or(DecodeError::BadTag("pred", v))
}

fn cast_from(v: u8) -> Result<CastOp, DecodeError> {
    use CastOp::*;
    const ALL: [CastOp; 8] = [
        Bitcast, Trunc, ZExt, SExt, PtrToInt, IntToPtr, SiToFp, FpToSi,
    ];
    ALL.get(v as usize)
        .copied()
        .ok_or(DecodeError::BadTag("cast", v))
}

fn atomic_from(v: u8) -> Result<AtomicOp, DecodeError> {
    use AtomicOp::*;
    const ALL: [AtomicOp; 3] = [Add, Sub, Xchg];
    ALL.get(v as usize)
        .copied()
        .ok_or(DecodeError::BadTag("atomic", v))
}

fn dec_inst(d: &mut Dec) -> Result<Inst, DecodeError> {
    Ok(match d.u8()? {
        0 => Inst::Bin {
            op: bin_from(d.u8()?)?,
            lhs: dec_operand(d)?,
            rhs: dec_operand(d)?,
        },
        1 => Inst::ICmp {
            pred: pred_from(d.u8()?)?,
            lhs: dec_operand(d)?,
            rhs: dec_operand(d)?,
        },
        2 => Inst::Select {
            cond: dec_operand(d)?,
            tval: dec_operand(d)?,
            fval: dec_operand(d)?,
        },
        3 => Inst::Cast {
            op: cast_from(d.u8()?)?,
            val: dec_operand(d)?,
            to: TypeId(d.u32()?),
        },
        4 => Inst::Gep {
            base: dec_operand(d)?,
            indices: dec_operands(d)?,
        },
        5 => Inst::Load {
            ptr: dec_operand(d)?,
        },
        6 => Inst::Store {
            val: dec_operand(d)?,
            ptr: dec_operand(d)?,
        },
        7 => Inst::Alloca {
            ty: TypeId(d.u32()?),
            count: dec_operand(d)?,
        },
        8 => {
            let callee = match d.u8()? {
                0 => Callee::Direct(FuncId(d.u32()?)),
                1 => Callee::External(ExternId(d.u32()?)),
                2 => Callee::Indirect(dec_operand(d)?),
                3 => {
                    let name = d.str()?;
                    Callee::Intrinsic(
                        Intrinsic::from_name(&name).ok_or(DecodeError::BadTag("intrinsic", 0))?,
                    )
                }
                t => return Err(DecodeError::BadTag("callee", t)),
            };
            Inst::Call {
                callee,
                args: dec_operands(d)?,
            }
        }
        9 => {
            let ty = TypeId(d.u32()?);
            let n = d.u32()? as usize;
            let mut incomings = Vec::with_capacity(n);
            for _ in 0..n {
                let b = BlockId(d.u32()?);
                incomings.push((b, dec_operand(d)?));
            }
            Inst::Phi { incomings, ty }
        }
        10 => Inst::AtomicRmw {
            op: atomic_from(d.u8()?)?,
            ptr: dec_operand(d)?,
            val: dec_operand(d)?,
        },
        11 => Inst::CmpXchg {
            ptr: dec_operand(d)?,
            expected: dec_operand(d)?,
            new: dec_operand(d)?,
        },
        12 => Inst::Fence,
        13 => Inst::Br {
            target: BlockId(d.u32()?),
        },
        14 => Inst::CondBr {
            cond: dec_operand(d)?,
            then_bb: BlockId(d.u32()?),
            else_bb: BlockId(d.u32()?),
        },
        15 => {
            let val = dec_operand(d)?;
            let default = BlockId(d.u32()?);
            let n = d.u32()? as usize;
            let mut cases = Vec::with_capacity(n);
            for _ in 0..n {
                let c = d.i64()?;
                cases.push((c, BlockId(d.u32()?)));
            }
            Inst::Switch {
                val,
                default,
                cases,
            }
        }
        16 => Inst::Ret {
            val: match d.u8()? {
                0 => None,
                _ => Some(dec_operand(d)?),
            },
        },
        17 => Inst::Unreachable,
        t => return Err(DecodeError::BadTag("inst", t)),
    })
}

fn enc_type(e: &mut Enc, t: &Type) {
    match t {
        Type::Void => e.u8(0),
        Type::Int(w) => {
            e.u8(1);
            e.u8(*w);
        }
        Type::F64 => e.u8(2),
        Type::Ptr(p) => {
            e.u8(3);
            e.u32(p.0);
        }
        Type::Array(el, n) => {
            e.u8(4);
            e.u32(el.0);
            e.u64(*n);
        }
        Type::Struct(idx) => {
            e.u8(5);
            e.u32(*idx);
        }
        Type::Func {
            ret,
            params,
            vararg,
        } => {
            e.u8(6);
            e.u32(ret.0);
            e.u32(params.len() as u32);
            for p in params {
                e.u32(p.0);
            }
            e.u8(*vararg as u8);
        }
    }
}

fn dec_type(d: &mut Dec) -> Result<Type, DecodeError> {
    Ok(match d.u8()? {
        0 => Type::Void,
        1 => Type::Int(d.u8()?),
        2 => Type::F64,
        3 => Type::Ptr(TypeId(d.u32()?)),
        4 => {
            let el = TypeId(d.u32()?);
            Type::Array(el, d.u64()?)
        }
        5 => Type::Struct(d.u32()?),
        6 => {
            let ret = TypeId(d.u32()?);
            let n = d.u32()? as usize;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(TypeId(d.u32()?));
            }
            Type::Func {
                ret,
                params,
                vararg: d.u8()? != 0,
            }
        }
        t => return Err(DecodeError::BadTag("type", t)),
    })
}

/// Encodes a module into its binary bytecode form.
pub fn encode_module(m: &Module) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.buf.extend_from_slice(MAGIC);
    e.str(&m.name);

    // Types: the table is reconstructed positionally, so we re-intern in
    // declaration order on decode.
    e.u32(m.types.structs.len() as u32);
    for s in &m.types.structs {
        e.str(&s.name);
        e.u8(s.opaque as u8);
        e.u32(s.fields.len() as u32);
        for f in &s.fields {
            e.u32(f.0);
        }
    }
    e.u32(m.types.len() as u32);
    for i in 0..m.types.len() {
        enc_type(&mut e, m.types.get(TypeId(i as u32)));
    }

    e.u32(m.globals.len() as u32);
    for g in &m.globals {
        e.str(&g.name);
        e.u32(g.ty.0);
        e.u8(g.is_const as u8);
        match &g.init {
            GlobalInit::Zero => e.u8(0),
            GlobalInit::Bytes(b) => {
                e.u8(1);
                e.bytes(b);
            }
            GlobalInit::Relocated { bytes, relocs } => {
                e.u8(2);
                e.bytes(bytes);
                e.u32(relocs.len() as u32);
                for (off, t) in relocs {
                    e.u64(*off);
                    match t {
                        RelocTarget::Func(n) => {
                            e.u8(0);
                            e.str(n);
                        }
                        RelocTarget::Extern(n) => {
                            e.u8(1);
                            e.str(n);
                        }
                        RelocTarget::Global(n) => {
                            e.u8(2);
                            e.str(n);
                        }
                    }
                }
            }
        }
    }

    e.u32(m.externs.len() as u32);
    for x in &m.externs {
        e.str(&x.name);
        e.u32(x.ty.0);
    }

    e.u32(m.allocators.len() as u32);
    for a in &m.allocators {
        e.str(&a.name);
        e.u8(matches!(a.kind, AllocKind::Pool) as u8);
        e.str(&a.alloc_fn);
        e.opt_str(&a.dealloc_fn);
        e.opt_str(&a.pool_create_fn);
        e.opt_str(&a.pool_destroy_fn);
        match a.size {
            SizeSpec::Arg(n) => {
                e.u8(0);
                e.u32(n as u32);
            }
            SizeSpec::PoolObjectSize => e.u8(1),
            SizeSpec::Const(c) => {
                e.u8(2);
                e.u64(c);
            }
        }
        e.opt_str(&a.size_fn);
        e.opt_u32(a.pool_arg.map(|p| p as u32));
        e.opt_str(&a.backed_by);
    }

    e.u32(m.funcs.len() as u32);
    for f in &m.funcs {
        e.str(&f.name);
        e.u32(f.ty.0);
        e.u8(matches!(f.linkage, Linkage::Public) as u8);
        e.u32(f.value_types.len() as u32);
        for (i, vt) in f.value_types.iter().enumerate() {
            e.u32(vt.0);
            match f.value_defs[i] {
                ValueDef::Param(p) => {
                    e.u8(0);
                    e.u32(p);
                }
                ValueDef::Inst(ii) => {
                    e.u8(1);
                    e.u32(ii.0);
                }
            }
            e.opt_str(&f.value_names[i]);
        }
        e.u32(f.insts.len() as u32);
        for (i, inst) in f.insts.iter().enumerate() {
            enc_inst(&mut e, inst);
            e.opt_u32(f.inst_results[i].map(|v| v.0));
        }
        e.u32(f.blocks.len() as u32);
        for b in &f.blocks {
            e.str(&b.name);
            e.u32(b.insts.len() as u32);
            for i in &b.insts {
                e.u32(i.0);
            }
        }
        e.u32(f.sig_asserted_calls.len() as u32);
        for i in &f.sig_asserted_calls {
            e.u32(i.0);
        }
    }

    e.opt_u32(m.entry.map(|f| f.0));

    match &m.pool_annotations {
        None => e.u8(0),
        Some(pa) => {
            e.u8(1);
            e.u32(pa.metapools.len() as u32);
            for mp in &pa.metapools {
                e.str(&mp.name);
                e.u8(mp.type_homogeneous as u8);
                e.u8(mp.complete as u8);
                e.opt_u32(mp.elem_type.map(|t| t.0));
                e.u32(mp.points_to.len() as u32);
                for (c, t) in &mp.points_to {
                    e.u32(*c);
                    e.u32(*t);
                }
                e.u8(mp.fields_collapsed as u8);
                e.u8(mp.userspace as u8);
            }
            e.u32(pa.value_pools.len() as u32);
            for vp in &pa.value_pools {
                e.u32(vp.len() as u32);
                for p in vp {
                    e.opt_u32(*p);
                }
            }
            e.u32(pa.value_cells.len() as u32);
            for vc in &pa.value_cells {
                e.u32(vc.len() as u32);
                for c in vc {
                    e.u32(*c);
                }
            }
            e.u32(pa.global_pools.len() as u32);
            for p in &pa.global_pools {
                e.opt_u32(*p);
            }
            e.u32(pa.func_sets.len() as u32);
            for set in &pa.func_sets {
                e.u32(set.len() as u32);
                for n in set {
                    e.str(n);
                }
            }
            e.u32(pa.call_sets.len() as u32);
            for (f, i, s) in &pa.call_sets {
                e.u32(*f);
                e.u32(*i);
                e.u32(*s);
            }
        }
    }

    e.buf
}

/// Decodes a module from its binary bytecode form.
pub fn decode_module(data: &[u8]) -> Result<Module, DecodeError> {
    let mut d = Dec { buf: data, pos: 0 };
    if d.take(MAGIC.len())? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let name = d.str()?;
    let mut m = Module::new(&name);

    let nstructs = d.u32()? as usize;
    let mut struct_defs = Vec::with_capacity(nstructs);
    for _ in 0..nstructs {
        let name = d.str()?;
        let opaque = d.u8()? != 0;
        let n = d.u32()? as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            fields.push(TypeId(d.u32()?));
        }
        struct_defs.push(StructDef {
            name,
            fields,
            opaque,
        });
    }
    let ntypes = d.u32()? as usize;
    let mut table = TypeTable::new();
    table.structs = struct_defs;
    for i in 0..ntypes {
        let t = dec_type(&mut d)?;
        let id = table.raw_push(t);
        debug_assert_eq!(id.0 as usize, i);
    }
    table.rebuild_struct_index();
    m.types = table;

    let nglobals = d.u32()? as usize;
    for _ in 0..nglobals {
        let name = d.str()?;
        let ty = TypeId(d.u32()?);
        let is_const = d.u8()? != 0;
        let init = match d.u8()? {
            0 => GlobalInit::Zero,
            1 => GlobalInit::Bytes(d.bytes()?),
            2 => {
                let bytes = d.bytes()?;
                let n = d.u32()? as usize;
                let mut relocs = Vec::with_capacity(n);
                for _ in 0..n {
                    let off = d.u64()?;
                    let t = match d.u8()? {
                        0 => RelocTarget::Func(d.str()?),
                        1 => RelocTarget::Extern(d.str()?),
                        2 => RelocTarget::Global(d.str()?),
                        t => return Err(DecodeError::BadTag("reloc", t)),
                    };
                    relocs.push((off, t));
                }
                GlobalInit::Relocated { bytes, relocs }
            }
            t => return Err(DecodeError::BadTag("init", t)),
        };
        m.add_global(&name, ty, init, is_const);
    }

    let nexterns = d.u32()? as usize;
    for _ in 0..nexterns {
        let name = d.str()?;
        let ty = TypeId(d.u32()?);
        m.add_extern(&name, ty);
    }

    let nallocs = d.u32()? as usize;
    for _ in 0..nallocs {
        let name = d.str()?;
        let kind = if d.u8()? != 0 {
            AllocKind::Pool
        } else {
            AllocKind::Ordinary
        };
        let alloc_fn = d.str()?;
        let dealloc_fn = d.opt_str()?;
        let pool_create_fn = d.opt_str()?;
        let pool_destroy_fn = d.opt_str()?;
        let size = match d.u8()? {
            0 => SizeSpec::Arg(d.u32()? as usize),
            1 => SizeSpec::PoolObjectSize,
            2 => SizeSpec::Const(d.u64()?),
            t => return Err(DecodeError::BadTag("sizespec", t)),
        };
        let size_fn = d.opt_str()?;
        let pool_arg = d.opt_u32()?.map(|p| p as usize);
        let backed_by = d.opt_str()?;
        m.declare_allocator(AllocatorDecl {
            name,
            kind,
            alloc_fn,
            dealloc_fn,
            pool_create_fn,
            pool_destroy_fn,
            size,
            size_fn,
            pool_arg,
            backed_by,
        });
    }

    let nfuncs = d.u32()? as usize;
    for _ in 0..nfuncs {
        let fname = d.str()?;
        let fty = TypeId(d.u32()?);
        let linkage = if d.u8()? != 0 {
            Linkage::Public
        } else {
            Linkage::Internal
        };
        let mut f = Function::new(&fname, fty, linkage);
        let nvals = d.u32()? as usize;
        for _ in 0..nvals {
            let vt = TypeId(d.u32()?);
            let def = match d.u8()? {
                0 => ValueDef::Param(d.u32()?),
                1 => ValueDef::Inst(InstId(d.u32()?)),
                t => return Err(DecodeError::BadTag("valuedef", t)),
            };
            let v = f.new_value(vt, def);
            f.value_names[v.0 as usize] = d.opt_str()?;
            if let ValueDef::Param(_) = def {
                f.params.push(v);
            }
        }
        let ninsts = d.u32()? as usize;
        for _ in 0..ninsts {
            let inst = dec_inst(&mut d)?;
            f.insts.push(inst);
            f.inst_results.push(d.opt_u32()?.map(ValueId));
        }
        let nblocks = d.u32()? as usize;
        for _ in 0..nblocks {
            let bname = d.str()?;
            let n = d.u32()? as usize;
            let mut insts = Vec::with_capacity(n);
            for _ in 0..n {
                insts.push(InstId(d.u32()?));
            }
            f.blocks.push(Block { name: bname, insts });
        }
        let nsig = d.u32()? as usize;
        for _ in 0..nsig {
            f.sig_asserted_calls.push(InstId(d.u32()?));
        }
        m.push_decoded_function(f);
    }

    m.entry = d.opt_u32()?.map(FuncId);

    if d.u8()? != 0 {
        let nmp = d.u32()? as usize;
        let mut pa = PoolAnnotations::default();
        for _ in 0..nmp {
            let name = d.str()?;
            let th = d.u8()? != 0;
            let complete = d.u8()? != 0;
            let elem_type = d.opt_u32()?.map(TypeId);
            let np = d.u32()? as usize;
            let mut points_to = Vec::with_capacity(np);
            for _ in 0..np {
                let c = d.u32()?;
                let t = d.u32()?;
                points_to.push((c, t));
            }
            let fields_collapsed = d.u8()? != 0;
            let userspace = d.u8()? != 0;
            pa.metapools.push(MetaPoolDesc {
                name,
                type_homogeneous: th,
                complete,
                elem_type,
                points_to,
                fields_collapsed,
                userspace,
            });
        }
        let nf = d.u32()? as usize;
        for _ in 0..nf {
            let nv = d.u32()? as usize;
            let mut vp = Vec::with_capacity(nv);
            for _ in 0..nv {
                vp.push(d.opt_u32()?);
            }
            pa.value_pools.push(vp);
        }
        let nfc = d.u32()? as usize;
        for _ in 0..nfc {
            let nv = d.u32()? as usize;
            let mut vc = Vec::with_capacity(nv);
            for _ in 0..nv {
                vc.push(d.u32()?);
            }
            pa.value_cells.push(vc);
        }
        let ng = d.u32()? as usize;
        for _ in 0..ng {
            pa.global_pools.push(d.opt_u32()?);
        }
        let ns = d.u32()? as usize;
        for _ in 0..ns {
            let n = d.u32()? as usize;
            let mut set = Vec::with_capacity(n);
            for _ in 0..n {
                set.push(d.str()?);
            }
            pa.func_sets.push(set);
        }
        let nc = d.u32()? as usize;
        for _ in 0..nc {
            let f = d.u32()?;
            let i = d.u32()?;
            let s = d.u32()?;
            pa.call_sets.push((f, i, s));
        }
        m.pool_annotations = Some(pa);
    }

    Ok(m)
}

/// A 64-bit keyed integrity tag over `data` (see module docs: an integrity
/// *simulation*, not a cryptographic MAC).
pub fn sign(key: u64, data: &[u8]) -> u64 {
    let mut h = key ^ 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    };
    for chunk in data.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        mix(u64::from_le_bytes(b));
    }
    mix(data.len() as u64);
    mix(key);
    h
}

/// Verifies an integrity tag produced by [`sign`].
pub fn verify_signature(key: u64, data: &[u8], tag: u64) -> bool {
    sign(key, data) == tag
}

/// A bytecode file packaged with its signature, as cached on disk together
/// with translated native code (paper §3.4).
#[derive(Clone, Debug)]
pub struct SignedModule {
    /// Encoded bytecode.
    pub bytecode: Vec<u8>,
    /// Integrity tag over the bytecode.
    pub tag: u64,
}

impl SignedModule {
    /// Encodes and signs `m` with `key`.
    pub fn seal(m: &Module, key: u64) -> Self {
        let bytecode = encode_module(m);
        let tag = sign(key, &bytecode);
        SignedModule { bytecode, tag }
    }

    /// Verifies the signature and decodes the module.
    pub fn open(&self, key: u64) -> Result<Module, DecodeError> {
        if !verify_signature(key, &self.bytecode, self.tag) {
            return Err(DecodeError::BadSignature);
        }
        decode_module(&self.bytecode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;
    use crate::print::print_module;

    const SRC: &str = r#"
module "codec"
struct %node = { i64, %node* }
const global @msg : [4 x i8] = bytes x68690000
global @tbl : [2 x i64] = zero
declare @mystery : (i8*) -> i32
allocator ordinary "kmalloc" alloc=@km size=arg0
declare @km : (i64) -> i8*
func public @sum(%n: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %next]
  %next:i64 = add %i, 1:i64
  %done:i1 = icmp uge %next, %n
  condbr %done, out, loop
out:
  %t:i64 = call $sva.get.timer() : i64
  %r:i64 = add %next, %t
  ret %r
}
entry @sum
"#;

    #[test]
    fn encode_decode_round_trip() {
        let m1 = parse_module(SRC).unwrap();
        let bytes = encode_module(&m1);
        let m2 = decode_module(&bytes).unwrap();
        assert_eq!(print_module(&m1), print_module(&m2));
        assert_eq!(m2.entry, m1.entry);
        assert_eq!(m2.allocators.len(), 1);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        assert_eq!(decode_module(b"NOTSVA").unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn decode_rejects_truncation() {
        let m = parse_module(SRC).unwrap();
        let bytes = encode_module(&m);
        for cut in [7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_module(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn signature_round_trip_and_tamper() {
        let m = parse_module(SRC).unwrap();
        let sealed = SignedModule::seal(&m, 0xfeed);
        assert!(sealed.open(0xfeed).is_ok());
        // Wrong key.
        assert_eq!(sealed.open(0xdead).unwrap_err(), DecodeError::BadSignature);
        // Tampered byte.
        let mut bad = sealed.clone();
        let mid = bad.bytecode.len() / 2;
        bad.bytecode[mid] ^= 1;
        assert_eq!(bad.open(0xfeed).unwrap_err(), DecodeError::BadSignature);
    }

    #[test]
    fn annotations_survive_encoding() {
        let mut m = parse_module(SRC).unwrap();
        let i64t = m.types.i64();
        let mut pa = PoolAnnotations::default();
        pa.metapools.push(MetaPoolDesc {
            name: "MP0".into(),
            type_homogeneous: true,
            complete: false,
            elem_type: Some(i64t),
            points_to: vec![(0, 0)],
            fields_collapsed: false,
            userspace: false,
        });
        pa.value_pools = vec![vec![None, Some(0)]];
        pa.global_pools = vec![Some(0), None];
        pa.func_sets = vec![vec!["sum".into()]];
        m.pool_annotations = Some(pa);
        let m2 = decode_module(&encode_module(&m)).unwrap();
        let pa2 = m2.pool_annotations.unwrap();
        assert_eq!(pa2.metapools.len(), 1);
        assert!(pa2.metapools[0].type_homogeneous);
        assert_eq!(pa2.value_pools[0][1], Some(0));
        assert_eq!(pa2.func_sets[0][0], "sum");
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = parse_module(SRC).unwrap();
        assert_eq!(encode_module(&m), encode_module(&m));
    }

    #[test]
    fn decode_rejects_wrong_version_byte() {
        let m = parse_module(SRC).unwrap();
        let mut bytes = encode_module(&m);
        // The last magic byte is the format version; a verifier built for
        // version 1 must refuse anything else.
        bytes[MAGIC.len() - 1] ^= 0x7f;
        assert_eq!(decode_module(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn empty_module_round_trips() {
        let m1 = parse_module("module \"empty\"").unwrap();
        let m2 = decode_module(&encode_module(&m1)).unwrap();
        assert_eq!(print_module(&m1), print_module(&m2));
        assert!(m2.entry.is_none());
        assert!(m2.pool_annotations.is_none());
    }

    #[test]
    fn cells_and_call_sets_survive_encoding() {
        let mut m = parse_module(SRC).unwrap();
        let mut pa = PoolAnnotations::default();
        pa.metapools.push(MetaPoolDesc {
            name: "MP0".into(),
            type_homogeneous: false,
            complete: true,
            elem_type: None,
            points_to: vec![(0, 0), (1, 0)],
            fields_collapsed: true,
            userspace: true,
        });
        pa.value_cells = vec![vec![0, 3]];
        pa.call_sets = vec![(0, 7, 2)];
        m.pool_annotations = Some(pa);
        let pa2 = decode_module(&encode_module(&m))
            .unwrap()
            .pool_annotations
            .unwrap();
        assert_eq!(pa2.metapools[0].points_to, vec![(0, 0), (1, 0)]);
        assert!(pa2.metapools[0].fields_collapsed);
        assert!(pa2.metapools[0].userspace);
        assert_eq!(pa2.value_cells[0][1], 3);
        assert_eq!(pa2.call_sets, vec![(0, 7, 2)]);
    }

    #[test]
    fn signature_covers_annotations_not_just_code() {
        // Tampering with the *annotation* region of the bytecode must break
        // the signature too — the annotations are the proof being shipped.
        let mut m = parse_module(SRC).unwrap();
        let mut pa = PoolAnnotations::default();
        pa.metapools.push(MetaPoolDesc {
            name: "MP0".into(),
            type_homogeneous: true,
            complete: true,
            elem_type: None,
            points_to: vec![],
            fields_collapsed: false,
            userspace: false,
        });
        m.pool_annotations = Some(pa);
        let sealed = SignedModule::seal(&m, 0x1234);
        // The annotation bytes live at the tail of the image; flip one late
        // byte and the signature check must fail.
        let mut bad = sealed.clone();
        let n = bad.bytecode.len();
        bad.bytecode[n - 2] ^= 1;
        assert_eq!(bad.open(0x1234).unwrap_err(), DecodeError::BadSignature);
    }
}
