//! # SVA-Core: the Secure Virtual Architecture instruction set
//!
//! This crate implements the virtual, low-level, *typed* instruction set that
//! all code on an SVA system is expressed in (paper §3.1–§3.2). It plays the
//! role the LLVM IR played in the original system:
//!
//! * a single, compact, RISC-like, load/store instruction set,
//! * an explicit control-flow graph per function (no computed branches),
//! * an "infinite" virtual register set in SSA form,
//! * a type system covering integers, pointers, arrays, structs and
//!   functions, with explicit cast instructions for unsafe languages,
//! * explicit heap allocation/deallocation through declared allocator
//!   functions, and
//! * the SVA-OS and safety-check operations as [`Intrinsic`]s.
//!
//! The crate provides:
//!
//! * [`Module`], [`Function`] and friends — arena-based IR containers,
//! * [`build::FunctionBuilder`] — an ergonomic way to emit IR,
//! * [`parse::parse_module`] / [`print::print_module`] — the textual assembly format,
//! * [`bytecode`] — the on-disk "bytecode" encoding with digital signing,
//! * [`verify::verify_module`] — the structural and type verifier.
//!
//! Nothing in this crate depends on the pointer analysis or the run-time
//! checks; those live in `sva-analysis`, `sva-core` and `sva-rt`.

pub mod build;
pub mod bytecode;
pub mod inst;
pub mod module;
pub mod parse;
pub mod print;
pub mod types;
pub mod verify;

pub use inst::{AtomicOp, BinOp, Callee, CastOp, IPred, Inst, InstId, Intrinsic, Operand};
pub use module::{
    AllocKind, AllocatorDecl, Block, BlockId, ExternDecl, ExternId, FuncId, Function, Global,
    GlobalId, GlobalInit, Linkage, MetaPoolDesc, Module, PoolAnnotations, RelocTarget, SizeSpec,
    ValueDef, ValueId,
};
pub use types::{StructDef, Type, TypeId, TypeTable};
