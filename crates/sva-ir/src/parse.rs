//! Parser for the textual SVA assembly emitted by [`crate::print`].
//!
//! Parsing is two-pass: the first pass registers all module-level entities
//! (structs, globals, externs, allocator declarations and function
//! signatures) so bodies can reference entities defined later in the file;
//! the second pass parses function bodies, pre-creating every SSA value from
//! its explicitly printed result type before resolving operands (required
//! for φ-nodes and cross-block references).

use std::collections::HashMap;

use crate::inst::{AtomicOp, BinOp, Callee, CastOp, IPred, Inst, Intrinsic, Operand};
use crate::module::{
    AllocKind, AllocatorDecl, BlockId, FuncId, GlobalInit, Linkage, Module, RelocTarget, SizeSpec,
    ValueId,
};
use crate::types::TypeId;

/// A parse error with a human-readable message and byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where the error was detected.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
    Arrow,
    Ellipsis,
    SigAssert,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn tokens(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            let at = self.pos;
            if self.pos >= self.src.len() {
                out.push((Tok::Eof, at));
                return Ok(out);
            }
            let c = self.src[self.pos] as char;
            let tok = match c {
                'a'..='z' | 'A'..='Z' | '_' => {
                    let s = self.ident();
                    Tok::Ident(s)
                }
                '0'..='9' => Tok::Int(self.number(false, at)?),
                '-' => {
                    if self.peek(1) == Some('>') {
                        self.pos += 2;
                        Tok::Arrow
                    } else {
                        self.pos += 1;
                        Tok::Int(self.number(true, at)?)
                    }
                }
                '"' => {
                    self.pos += 1;
                    let start = self.pos;
                    while self.pos < self.src.len() && self.src[self.pos] != b'"' {
                        self.pos += 1;
                    }
                    if self.pos >= self.src.len() {
                        return Err(ParseError {
                            msg: "unterminated string".into(),
                            at,
                        });
                    }
                    let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                    self.pos += 1;
                    Tok::Str(s)
                }
                '.' => {
                    if self.peek(1) == Some('.') && self.peek(2) == Some('.') {
                        self.pos += 3;
                        Tok::Ellipsis
                    } else {
                        self.pos += 1;
                        Tok::Punct('.')
                    }
                }
                '!' => {
                    self.pos += 1;
                    let s = self.ident();
                    if s == "sigassert" {
                        Tok::SigAssert
                    } else {
                        return Err(ParseError {
                            msg: format!("unknown attribute !{s}"),
                            at,
                        });
                    }
                }
                '{' | '}' | '(' | ')' | '[' | ']' | ',' | ':' | '=' | '*' | '@' | '%' | '$' => {
                    self.pos += 1;
                    Tok::Punct(c)
                }
                other => {
                    return Err(ParseError {
                        msg: format!("unexpected character `{other}`"),
                        at,
                    })
                }
            };
            out.push((tok, at));
        }
    }

    fn peek(&self, n: usize) -> Option<char> {
        self.src.get(self.pos + n).map(|&b| b as char)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b';' || (c == b'/' && self.src.get(self.pos + 1) == Some(&b'/')) {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos] as char;
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn number(&mut self, negative: bool, at: usize) -> Result<i64, ParseError> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let v: i64 = text
            .parse::<u64>()
            .map(|u| u as i64)
            .map_err(|_| ParseError {
                msg: format!("bad number `{text}`"),
                at,
            })?;
        Ok(if negative { v.wrapping_neg() } else { v })
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].0
    }

    fn at(&self) -> usize {
        self.toks[self.i].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.i].0.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            msg: msg.into(),
            at: self.at(),
        })
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(ParseError {
                msg: format!("expected `{c}`, found {other:?}"),
                at: self.toks[self.i.saturating_sub(1)].1,
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                msg: format!("expected identifier, found {other:?}"),
                at: self.toks[self.i.saturating_sub(1)].1,
            }),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Tok::Int(v) => Ok(v),
            other => Err(ParseError {
                msg: format!("expected integer, found {other:?}"),
                at: self.toks[self.i.saturating_sub(1)].1,
            }),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => Err(ParseError {
                msg: format!("expected `{kw}`, found {other:?}"),
                at: self.toks[self.i.saturating_sub(1)].1,
            }),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Tok::Punct(p) if *p == c) {
            self.next();
            true
        } else {
            false
        }
    }

    // ---- types -----------------------------------------------------------

    fn parse_type(&mut self, m: &mut Module) -> Result<TypeId, ParseError> {
        let mut base = match self.next() {
            Tok::Ident(s) => match s.as_str() {
                "void" => m.types.void(),
                "i1" => m.types.i1(),
                "i8" => m.types.i8(),
                "i16" => m.types.i16(),
                "i32" => m.types.i32(),
                "i64" => m.types.i64(),
                "f64" => m.types.f64(),
                other => return self.err(format!("unknown type `{other}`")),
            },
            Tok::Punct('%') => {
                let name = self.expect_ident()?;
                m.types.declare_struct(&name)
            }
            Tok::Punct('[') => {
                let n = self.expect_int()?;
                self.expect_kw("x")?;
                let elem = self.parse_type(m)?;
                self.expect_punct(']')?;
                m.types.array(elem, n as u64)
            }
            Tok::Punct('(') => {
                let mut params = Vec::new();
                let mut vararg = false;
                if !self.eat_punct(')') {
                    loop {
                        if matches!(self.peek(), Tok::Ellipsis) {
                            self.next();
                            vararg = true;
                            self.expect_punct(')')?;
                            break;
                        }
                        params.push(self.parse_type(m)?);
                        if self.eat_punct(')') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                if matches!(self.peek(), Tok::Arrow) {
                    self.next();
                    let ret = self.parse_type(m)?;
                    m.types.func(ret, params, vararg)
                } else if params.len() == 1 && !vararg {
                    // Parenthesized group, e.g. `((i64) -> i64)*`.
                    params[0]
                } else {
                    return self.err("expected `->` after parameter list");
                }
            }
            other => return self.err(format!("expected type, found {other:?}")),
        };
        while self.eat_punct('*') {
            base = m.types.ptr(base);
        }
        Ok(base)
    }
}

/// Function body captured during pass 1 (token range) for pass-2 parsing.
struct PendingBody {
    func: FuncId,
    start_tok: usize,
}

/// Parses a module from its textual form.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, i: 0 };
    let mut m = Module::new("");
    let mut pending: Vec<PendingBody> = Vec::new();
    let mut entry_name: Option<String> = None;
    let mut relocs_to_fix: Vec<(usize, Vec<(u64, String)>)> = Vec::new();

    p.expect_kw("module")?;
    match p.next() {
        Tok::Str(s) => m.name = s,
        other => return p.err(format!("expected module name string, found {other:?}")),
    }

    loop {
        match p.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(kw) => match kw.as_str() {
                "struct" => {
                    p.next();
                    p.expect_punct('%')?;
                    let name = p.expect_ident()?;
                    p.expect_punct('=')?;
                    p.expect_punct('{')?;
                    let sid = m.types.declare_struct(&name);
                    if matches!(p.peek(), Tok::Ident(s) if s == "opaque") {
                        p.next();
                        p.expect_punct('}')?;
                        continue;
                    }
                    let mut fields = Vec::new();
                    if !p.eat_punct('}') {
                        loop {
                            fields.push(p.parse_type(&mut m)?);
                            if p.eat_punct('}') {
                                break;
                            }
                            p.expect_punct(',')?;
                        }
                    }
                    m.types.set_struct_body(sid, fields);
                }
                "global" | "const" => {
                    let is_const = kw == "const";
                    p.next();
                    if is_const {
                        p.expect_kw("global")?;
                    }
                    p.expect_punct('@')?;
                    let name = p.expect_ident()?;
                    p.expect_punct(':')?;
                    let ty = p.parse_type(&mut m)?;
                    p.expect_punct('=')?;
                    let init = parse_init(&mut p, &mut m, &mut relocs_to_fix)?;
                    m.add_global(&name, ty, init, is_const);
                }
                "declare" => {
                    p.next();
                    p.expect_punct('@')?;
                    let name = p.expect_ident()?;
                    p.expect_punct(':')?;
                    let ty = p.parse_type(&mut m)?;
                    m.add_extern(&name, ty);
                }
                "allocator" => {
                    p.next();
                    parse_allocator(&mut p, &mut m)?;
                }
                "entry" => {
                    p.next();
                    p.expect_punct('@')?;
                    entry_name = Some(p.expect_ident()?);
                }
                "func" => {
                    p.next();
                    let linkage = match p.expect_ident()?.as_str() {
                        "public" => Linkage::Public,
                        "internal" => Linkage::Internal,
                        other => return p.err(format!("bad linkage `{other}`")),
                    };
                    p.expect_punct('@')?;
                    let name = p.expect_ident()?;
                    p.expect_punct('(')?;
                    let mut params: Vec<(String, TypeId)> = Vec::new();
                    if !p.eat_punct(')') {
                        loop {
                            p.expect_punct('%')?;
                            let pname = match p.next() {
                                Tok::Ident(s) => s,
                                Tok::Int(v) => v.to_string(),
                                other => {
                                    return p.err(format!("bad param name {other:?}"));
                                }
                            };
                            p.expect_punct(':')?;
                            let pty = p.parse_type(&mut m)?;
                            params.push((pname, pty));
                            if p.eat_punct(')') {
                                break;
                            }
                            p.expect_punct(',')?;
                        }
                    }
                    p.expect_punct(':')?;
                    let ret = p.parse_type(&mut m)?;
                    let ptys = params.iter().map(|(_, t)| *t).collect();
                    let fnty = m.types.func(ret, ptys, false);
                    let fid = m.add_function(&name, fnty, linkage);
                    for (i, (pname, _)) in params.iter().enumerate() {
                        let v = m.func(fid).params[i];
                        // Purely numeric names equal to the value id are the
                        // printer's default; storing them would double up as
                        // `%0.0` on re-print. Likewise, the printer shows a
                        // named param as `%name.id` — strip that id suffix so
                        // print → parse → print is a fixed point.
                        if *pname != v.0.to_string() {
                            let canon = pname
                                .strip_suffix(&format!(".{}", v.0))
                                .unwrap_or(pname)
                                .to_string();
                            m.func_mut(fid).value_names[v.0 as usize] = Some(canon);
                        }
                    }
                    p.expect_punct('{')?;
                    pending.push(PendingBody {
                        func: fid,
                        start_tok: p.i,
                    });
                    // Skip to the matching closing brace (bodies contain no
                    // nested braces).
                    while !matches!(p.peek(), Tok::Punct('}') | Tok::Eof) {
                        p.next();
                    }
                    p.expect_punct('}')?;
                }
                other => return p.err(format!("unexpected keyword `{other}`")),
            },
            other => return p.err(format!("unexpected token {other:?}")),
        }
    }

    m.intern_address_types();

    // Fix up relocation targets now that every symbol is known.
    for (gidx, relocs) in relocs_to_fix {
        let resolved: Result<Vec<(u64, RelocTarget)>, ParseError> = relocs
            .into_iter()
            .map(|(off, name)| {
                let t = if m.func_by_name(&name).is_some() {
                    RelocTarget::Func(name)
                } else if m.extern_by_name(&name).is_some() {
                    RelocTarget::Extern(name)
                } else if m.global_by_name(&name).is_some() {
                    RelocTarget::Global(name)
                } else {
                    return Err(ParseError {
                        msg: format!("unknown reloc target @{name}"),
                        at: 0,
                    });
                };
                Ok((off, t))
            })
            .collect();
        let resolved = resolved?;
        match &mut m.globals[gidx].init {
            GlobalInit::Relocated { relocs, .. } => *relocs = resolved,
            _ => unreachable!("reloc fixup on non-relocated global"),
        }
    }

    for body in pending {
        parse_body(&mut p, &mut m, body)?;
    }

    if let Some(e) = entry_name {
        m.entry = m.func_by_name(&e);
        if m.entry.is_none() {
            return Err(ParseError {
                msg: format!("entry function @{e} not defined"),
                at: 0,
            });
        }
    }
    Ok(m)
}

fn parse_init(
    p: &mut Parser,
    m: &mut Module,
    relocs_to_fix: &mut Vec<(usize, Vec<(u64, String)>)>,
) -> Result<GlobalInit, ParseError> {
    match p.next() {
        Tok::Ident(s) if s == "zero" => Ok(GlobalInit::Zero),
        Tok::Ident(s) if s == "bytes" => {
            let hexstr = p.expect_ident()?;
            let hexstr = hexstr.strip_prefix('x').unwrap_or(&hexstr);
            let bytes = from_hex(hexstr).ok_or_else(|| ParseError {
                msg: "bad hex bytes".into(),
                at: p.at(),
            })?;
            if matches!(p.peek(), Tok::Ident(s) if s == "relocs") {
                p.next();
                p.expect_punct('[')?;
                let mut relocs = Vec::new();
                if !p.eat_punct(']') {
                    loop {
                        let off = p.expect_int()? as u64;
                        p.expect_punct(':')?;
                        p.expect_punct('@')?;
                        let name = p.expect_ident()?;
                        relocs.push((off, name));
                        if p.eat_punct(']') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                relocs_to_fix.push((m.globals.len(), relocs));
                Ok(GlobalInit::Relocated {
                    bytes,
                    relocs: Vec::new(),
                })
            } else {
                Ok(GlobalInit::Bytes(bytes))
            }
        }
        other => p.err(format!("expected initializer, found {other:?}")),
    }
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok())
        .collect()
}

fn parse_allocator(p: &mut Parser, m: &mut Module) -> Result<(), ParseError> {
    let kind = match p.expect_ident()?.as_str() {
        "pool" => AllocKind::Pool,
        "ordinary" => AllocKind::Ordinary,
        other => return p.err(format!("bad allocator kind `{other}`")),
    };
    let name = match p.next() {
        Tok::Str(s) => s,
        other => return p.err(format!("expected allocator name string, found {other:?}")),
    };
    let mut decl = AllocatorDecl {
        name,
        kind,
        alloc_fn: String::new(),
        dealloc_fn: None,
        pool_create_fn: None,
        pool_destroy_fn: None,
        size: SizeSpec::Const(0),
        size_fn: None,
        pool_arg: None,
        backed_by: None,
    };
    while let Tok::Ident(key) = p.peek().clone() {
        if !matches!(
            key.as_str(),
            "alloc"
                | "dealloc"
                | "create"
                | "destroy"
                | "size"
                | "size_fn"
                | "pool_arg"
                | "backed_by"
        ) {
            break;
        }
        p.next();
        p.expect_punct('=')?;
        match key.as_str() {
            "alloc" => {
                p.expect_punct('@')?;
                decl.alloc_fn = p.expect_ident()?;
            }
            "dealloc" => {
                p.expect_punct('@')?;
                decl.dealloc_fn = Some(p.expect_ident()?);
            }
            "create" => {
                p.expect_punct('@')?;
                decl.pool_create_fn = Some(p.expect_ident()?);
            }
            "destroy" => {
                p.expect_punct('@')?;
                decl.pool_destroy_fn = Some(p.expect_ident()?);
            }
            "size" => {
                let v = p.expect_ident()?;
                decl.size = if v == "pool" {
                    SizeSpec::PoolObjectSize
                } else if let Some(n) = v.strip_prefix("arg") {
                    SizeSpec::Arg(n.parse().map_err(|_| ParseError {
                        msg: format!("bad size spec `{v}`"),
                        at: p.at(),
                    })?)
                } else if let Some(c) = v.strip_prefix("const") {
                    SizeSpec::Const(c.parse().map_err(|_| ParseError {
                        msg: format!("bad size spec `{v}`"),
                        at: p.at(),
                    })?)
                } else {
                    return p.err(format!("bad size spec `{v}`"));
                };
            }
            "size_fn" => {
                p.expect_punct('@')?;
                decl.size_fn = Some(p.expect_ident()?);
            }
            "pool_arg" => {
                decl.pool_arg = Some(p.expect_int()? as usize);
            }
            "backed_by" => match p.next() {
                Tok::Str(s) => decl.backed_by = Some(s),
                other => return p.err(format!("expected string, found {other:?}")),
            },
            _ => unreachable!(),
        }
    }
    if decl.alloc_fn.is_empty() {
        return p.err("allocator missing alloc=@fn");
    }
    m.declare_allocator(decl);
    Ok(())
}

/// One instruction as parsed, before operand resolution.
struct RawInst {
    result: Option<(String, TypeId)>,
    block: usize,
    inst: RawOp,
    sig_assert: bool,
}

enum RawOperand {
    Val(String),
    Int(i64, TypeId),
    F64(u64),
    Null(TypeId),
    Sym(String),
    Undef(TypeId),
}

enum RawCallee {
    Sym(String),
    Indirect(RawOperand),
    Intrinsic(Intrinsic),
}

enum RawOp {
    Bin(BinOp, RawOperand, RawOperand),
    ICmp(IPred, RawOperand, RawOperand),
    Select(RawOperand, RawOperand, RawOperand),
    Cast(CastOp, RawOperand, TypeId),
    Gep(RawOperand, Vec<RawOperand>),
    Load(RawOperand),
    Store(RawOperand, RawOperand),
    Alloca(TypeId, RawOperand),
    Call(RawCallee, Vec<RawOperand>),
    Phi(TypeId, Vec<(String, RawOperand)>),
    AtomicRmw(AtomicOp, RawOperand, RawOperand),
    CmpXchg(RawOperand, RawOperand, RawOperand),
    Fence,
    Br(String),
    CondBr(RawOperand, String, String),
    Switch(RawOperand, String, Vec<(i64, String)>),
    Ret(Option<RawOperand>),
    Unreachable,
}

fn parse_body(p: &mut Parser, m: &mut Module, body: PendingBody) -> Result<(), ParseError> {
    p.i = body.start_tok;
    let mut raw: Vec<RawInst> = Vec::new();
    let mut block_names: Vec<String> = Vec::new();
    let mut cur_block: Option<usize> = None;

    loop {
        match p.peek().clone() {
            Tok::Punct('}') => {
                p.next();
                break;
            }
            Tok::Ident(label) => {
                // Either `label:` or an opcode keyword inside a block.
                let save = p.i;
                p.next();
                if p.eat_punct(':') {
                    block_names.push(label);
                    cur_block = Some(block_names.len() - 1);
                    continue;
                }
                p.i = save;
                let blk = cur_block.ok_or_else(|| ParseError {
                    msg: "instruction before label".into(),
                    at: p.at(),
                })?;
                let inst = parse_raw_inst(p, m, None)?;
                raw.push(RawInst {
                    result: None,
                    block: blk,
                    inst: inst.0,
                    sig_assert: inst.1,
                });
            }
            Tok::Punct('%') => {
                p.next();
                let name = match p.next() {
                    Tok::Ident(s) => s,
                    Tok::Int(v) => v.to_string(),
                    other => return p.err(format!("bad value name {other:?}")),
                };
                p.expect_punct(':')?;
                let ty = p.parse_type(m)?;
                p.expect_punct('=')?;
                let blk = cur_block.ok_or_else(|| ParseError {
                    msg: "instruction before label".into(),
                    at: p.at(),
                })?;
                let inst = parse_raw_inst(p, m, Some(ty))?;
                raw.push(RawInst {
                    result: Some((name, ty)),
                    block: blk,
                    inst: inst.0,
                    sig_assert: inst.1,
                });
            }
            other => return p.err(format!("unexpected token in body {other:?}")),
        }
    }

    // Construct the function body.
    let fid = body.func;
    let mut blocks = Vec::new();
    for name in &block_names {
        blocks.push(m.func_mut(fid).add_block(name));
    }
    let block_index: HashMap<&str, BlockId> = block_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), blocks[i]))
        .collect();

    // Pre-create all result values keyed by name; params are already there.
    let mut value_index: HashMap<String, ValueId> = HashMap::new();
    {
        let f = m.func(fid);
        for &pv in &f.params {
            match &f.value_names[pv.0 as usize] {
                Some(n) => {
                    // Accept both the bare name and the printer's
                    // `%name.id` spelling for references in the body.
                    value_index.insert(format!("{n}.{}", pv.0), pv);
                    value_index.insert(n.clone(), pv);
                }
                None => {
                    value_index.insert(pv.0.to_string(), pv);
                }
            }
        }
    }
    let mut result_values: Vec<Option<ValueId>> = Vec::new();
    for r in &raw {
        if let Some((name, ty)) = &r.result {
            let v = m
                .func_mut(fid)
                .new_value(*ty, crate::module::ValueDef::Param(u32::MAX));
            // The def is patched below when the instruction is pushed.
            value_index.insert(name.clone(), v);
            result_values.push(Some(v));
        } else {
            result_values.push(None);
        }
    }

    let lookup_block = |name: &str| -> Result<BlockId, ParseError> {
        block_index.get(name).copied().ok_or_else(|| ParseError {
            msg: format!("unknown block `{name}`"),
            at: 0,
        })
    };

    let resolve = |m: &Module, op: RawOperand| -> Result<Operand, ParseError> {
        Ok(match op {
            RawOperand::Val(n) => {
                Operand::Value(*value_index.get(&n).ok_or_else(|| ParseError {
                    msg: format!("unknown value %{n}"),
                    at: 0,
                })?)
            }
            RawOperand::Int(v, t) => Operand::ConstInt(v, t),
            RawOperand::F64(bits) => Operand::ConstF64(bits),
            RawOperand::Null(t) => Operand::Null(t),
            RawOperand::Undef(t) => Operand::Undef(t),
            RawOperand::Sym(n) => {
                if let Some(f) = m.func_by_name(&n) {
                    Operand::Func(f)
                } else if let Some(e) = m.extern_by_name(&n) {
                    Operand::Extern(e)
                } else if let Some(g) = m.global_by_name(&n) {
                    Operand::Global(g)
                } else {
                    return Err(ParseError {
                        msg: format!("unknown symbol @{n}"),
                        at: 0,
                    });
                }
            }
        })
    };

    for (ri, r) in raw.into_iter().enumerate() {
        let inst = match r.inst {
            RawOp::Bin(op, a, b) => Inst::Bin {
                op,
                lhs: resolve(m, a)?,
                rhs: resolve(m, b)?,
            },
            RawOp::ICmp(pred, a, b) => Inst::ICmp {
                pred,
                lhs: resolve(m, a)?,
                rhs: resolve(m, b)?,
            },
            RawOp::Select(c, t, f2) => Inst::Select {
                cond: resolve(m, c)?,
                tval: resolve(m, t)?,
                fval: resolve(m, f2)?,
            },
            RawOp::Cast(op, v, to) => Inst::Cast {
                op,
                val: resolve(m, v)?,
                to,
            },
            RawOp::Gep(base, idxs) => {
                let base = resolve(m, base)?;
                let mut indices = Vec::new();
                for i in idxs {
                    indices.push(resolve(m, i)?);
                }
                Inst::Gep { base, indices }
            }
            RawOp::Load(ptr) => Inst::Load {
                ptr: resolve(m, ptr)?,
            },
            RawOp::Store(v, ptr) => Inst::Store {
                val: resolve(m, v)?,
                ptr: resolve(m, ptr)?,
            },
            RawOp::Alloca(ty, n) => Inst::Alloca {
                ty,
                count: resolve(m, n)?,
            },
            RawOp::Call(callee, args) => {
                let callee = match callee {
                    RawCallee::Sym(n) => {
                        if let Some(f) = m.func_by_name(&n) {
                            Callee::Direct(f)
                        } else if let Some(e) = m.extern_by_name(&n) {
                            Callee::External(e)
                        } else {
                            return Err(ParseError {
                                msg: format!("unknown callee @{n}"),
                                at: 0,
                            });
                        }
                    }
                    RawCallee::Indirect(op) => Callee::Indirect(resolve(m, op)?),
                    RawCallee::Intrinsic(i) => Callee::Intrinsic(i),
                };
                let mut a = Vec::new();
                for x in args {
                    a.push(resolve(m, x)?);
                }
                Inst::Call { callee, args: a }
            }
            RawOp::Phi(ty, incs) => {
                let mut incomings = Vec::new();
                for (b, v) in incs {
                    incomings.push((lookup_block(&b)?, resolve(m, v)?));
                }
                Inst::Phi { incomings, ty }
            }
            RawOp::AtomicRmw(op, ptr, v) => Inst::AtomicRmw {
                op,
                ptr: resolve(m, ptr)?,
                val: resolve(m, v)?,
            },
            RawOp::CmpXchg(ptr, e, n) => Inst::CmpXchg {
                ptr: resolve(m, ptr)?,
                expected: resolve(m, e)?,
                new: resolve(m, n)?,
            },
            RawOp::Fence => Inst::Fence,
            RawOp::Br(t) => Inst::Br {
                target: lookup_block(&t)?,
            },
            RawOp::CondBr(c, t, e) => Inst::CondBr {
                cond: resolve(m, c)?,
                then_bb: lookup_block(&t)?,
                else_bb: lookup_block(&e)?,
            },
            RawOp::Switch(v, d, cases) => {
                let mut cs = Vec::new();
                for (c, b) in cases {
                    cs.push((c, lookup_block(&b)?));
                }
                Inst::Switch {
                    val: resolve(m, v)?,
                    default: lookup_block(&d)?,
                    cases: cs,
                }
            }
            RawOp::Ret(v) => Inst::Ret {
                val: v.map(|x| resolve(m, x)).transpose()?,
            },
            RawOp::Unreachable => Inst::Unreachable,
        };
        let f = m.func_mut(fid);
        let iid = crate::inst::InstId(f.insts.len() as u32);
        f.insts.push(inst);
        f.inst_results.push(result_values[ri]);
        if let Some(v) = result_values[ri] {
            f.value_defs[v.0 as usize] = crate::module::ValueDef::Inst(iid);
        }
        f.blocks[blocks[r.block].0 as usize].insts.push(iid);
        if r.sig_assert {
            f.sig_asserted_calls.push(iid);
        }
    }
    Ok(())
}

fn parse_raw_operand(p: &mut Parser, m: &mut Module) -> Result<RawOperand, ParseError> {
    match p.next() {
        Tok::Punct('%') => match p.next() {
            Tok::Ident(s) => Ok(RawOperand::Val(s)),
            Tok::Int(v) => Ok(RawOperand::Val(v.to_string())),
            other => p.err(format!("bad value reference {other:?}")),
        },
        Tok::Punct('@') => Ok(RawOperand::Sym(p.expect_ident()?)),
        Tok::Int(v) => {
            p.expect_punct(':')?;
            let ty = p.parse_type(m)?;
            Ok(RawOperand::Int(v, ty))
        }
        Tok::Ident(s) if s == "null" => {
            p.expect_punct(':')?;
            let ty = p.parse_type(m)?;
            Ok(RawOperand::Null(ty))
        }
        Tok::Ident(s) if s == "undef" => {
            p.expect_punct(':')?;
            let ty = p.parse_type(m)?;
            Ok(RawOperand::Undef(ty))
        }
        Tok::Ident(s) if s.starts_with("fp") => {
            let hexpart = &s[2..];
            let bits = u64::from_str_radix(hexpart, 16).map_err(|_| ParseError {
                msg: format!("bad fp literal {s}"),
                at: p.at(),
            })?;
            Ok(RawOperand::F64(bits))
        }
        other => p.err(format!("expected operand, found {other:?}")),
    }
}

fn parse_raw_inst(
    p: &mut Parser,
    m: &mut Module,
    _result_ty: Option<TypeId>,
) -> Result<(RawOp, bool), ParseError> {
    let opcode = p.expect_ident()?;
    let binops: &[(&str, BinOp)] = &[
        ("add", BinOp::Add),
        ("sub", BinOp::Sub),
        ("mul", BinOp::Mul),
        ("udiv", BinOp::UDiv),
        ("sdiv", BinOp::SDiv),
        ("urem", BinOp::URem),
        ("srem", BinOp::SRem),
        ("and", BinOp::And),
        ("or", BinOp::Or),
        ("xor", BinOp::Xor),
        ("shl", BinOp::Shl),
        ("lshr", BinOp::LShr),
        ("ashr", BinOp::AShr),
        ("fadd", BinOp::FAdd),
        ("fsub", BinOp::FSub),
        ("fmul", BinOp::FMul),
        ("fdiv", BinOp::FDiv),
    ];
    let raw = if let Some((_, op)) = binops.iter().find(|(n, _)| *n == opcode) {
        let a = parse_raw_operand(p, m)?;
        p.expect_punct(',')?;
        let b = parse_raw_operand(p, m)?;
        RawOp::Bin(*op, a, b)
    } else {
        match opcode.as_str() {
            "icmp" => {
                let pred = match p.expect_ident()?.as_str() {
                    "eq" => IPred::Eq,
                    "ne" => IPred::Ne,
                    "ult" => IPred::ULt,
                    "ule" => IPred::ULe,
                    "ugt" => IPred::UGt,
                    "uge" => IPred::UGe,
                    "slt" => IPred::SLt,
                    "sle" => IPred::SLe,
                    "sgt" => IPred::SGt,
                    "sge" => IPred::SGe,
                    other => return p.err(format!("bad predicate `{other}`")),
                };
                let a = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let b = parse_raw_operand(p, m)?;
                RawOp::ICmp(pred, a, b)
            }
            "select" => {
                let c = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let t = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let f = parse_raw_operand(p, m)?;
                RawOp::Select(c, t, f)
            }
            "cast" => {
                let op = match p.expect_ident()?.as_str() {
                    "bitcast" => CastOp::Bitcast,
                    "trunc" => CastOp::Trunc,
                    "zext" => CastOp::ZExt,
                    "sext" => CastOp::SExt,
                    "ptrtoint" => CastOp::PtrToInt,
                    "inttoptr" => CastOp::IntToPtr,
                    "sitofp" => CastOp::SiToFp,
                    "fptosi" => CastOp::FpToSi,
                    other => return p.err(format!("bad cast op `{other}`")),
                };
                let v = parse_raw_operand(p, m)?;
                p.expect_kw("to")?;
                let to = p.parse_type(m)?;
                RawOp::Cast(op, v, to)
            }
            "gep" => {
                let base = parse_raw_operand(p, m)?;
                p.expect_punct('[')?;
                let mut idxs = Vec::new();
                if !p.eat_punct(']') {
                    loop {
                        idxs.push(parse_raw_operand(p, m)?);
                        if p.eat_punct(']') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                RawOp::Gep(base, idxs)
            }
            "load" => RawOp::Load(parse_raw_operand(p, m)?),
            "store" => {
                let v = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let ptr = parse_raw_operand(p, m)?;
                RawOp::Store(v, ptr)
            }
            "alloca" => {
                let ty = p.parse_type(m)?;
                p.expect_punct(',')?;
                let n = parse_raw_operand(p, m)?;
                RawOp::Alloca(ty, n)
            }
            "call" | "callind" => {
                let callee = if opcode == "callind" {
                    RawCallee::Indirect(parse_raw_operand(p, m)?)
                } else {
                    match p.next() {
                        Tok::Punct('@') => RawCallee::Sym(p.expect_ident()?),
                        Tok::Punct('$') => {
                            let name = p.expect_ident()?;
                            let i = Intrinsic::from_name(&name).ok_or_else(|| ParseError {
                                msg: format!("unknown intrinsic ${name}"),
                                at: p.at(),
                            })?;
                            RawCallee::Intrinsic(i)
                        }
                        other => return p.err(format!("bad callee {other:?}")),
                    }
                };
                p.expect_punct('(')?;
                let mut args = Vec::new();
                if !p.eat_punct(')') {
                    loop {
                        args.push(parse_raw_operand(p, m)?);
                        if p.eat_punct(')') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                // Optional redundant `: ty` suffix after intrinsic calls.
                if matches!(callee, RawCallee::Intrinsic(_)) && p.eat_punct(':') {
                    let _ = p.parse_type(m)?;
                }
                RawOp::Call(callee, args)
            }
            "phi" => {
                let ty = p.parse_type(m)?;
                p.expect_punct('[')?;
                let mut incs = Vec::new();
                if !p.eat_punct(']') {
                    loop {
                        let b = p.expect_ident()?;
                        p.expect_punct(':')?;
                        let v = parse_raw_operand(p, m)?;
                        incs.push((b, v));
                        if p.eat_punct(']') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                RawOp::Phi(ty, incs)
            }
            "atomicrmw" => {
                let op = match p.expect_ident()?.as_str() {
                    "add" => AtomicOp::Add,
                    "sub" => AtomicOp::Sub,
                    "xchg" => AtomicOp::Xchg,
                    other => return p.err(format!("bad atomic op `{other}`")),
                };
                let ptr = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let v = parse_raw_operand(p, m)?;
                RawOp::AtomicRmw(op, ptr, v)
            }
            "cmpxchg" => {
                let ptr = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let e = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let n = parse_raw_operand(p, m)?;
                RawOp::CmpXchg(ptr, e, n)
            }
            "fence" => RawOp::Fence,
            "br" => RawOp::Br(p.expect_ident()?),
            "condbr" => {
                let c = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let t = p.expect_ident()?;
                p.expect_punct(',')?;
                let e = p.expect_ident()?;
                RawOp::CondBr(c, t, e)
            }
            "switch" => {
                let v = parse_raw_operand(p, m)?;
                p.expect_punct(',')?;
                let d = p.expect_ident()?;
                p.expect_punct('[')?;
                let mut cases = Vec::new();
                if !p.eat_punct(']') {
                    loop {
                        let c = p.expect_int()?;
                        p.expect_punct(':')?;
                        let b = p.expect_ident()?;
                        cases.push((c, b));
                        if p.eat_punct(']') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                RawOp::Switch(v, d, cases)
            }
            "ret" => {
                // `ret` with no operand ends the line; detect by lookahead.
                let has_val = matches!(p.peek(), Tok::Punct('%') | Tok::Punct('@') | Tok::Int(_))
                    || matches!(p.peek(), Tok::Ident(s) if s == "null" || s == "undef" || s.starts_with("fp"));
                if has_val {
                    RawOp::Ret(Some(parse_raw_operand(p, m)?))
                } else {
                    RawOp::Ret(None)
                }
            }
            "unreachable" => RawOp::Unreachable,
            other => return p.err(format!("unknown opcode `{other}`")),
        }
    };
    let sig = if matches!(p.peek(), Tok::SigAssert) {
        p.next();
        true
    } else {
        false
    };
    Ok((raw, sig))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::print_module;

    #[test]
    fn parse_minimal_function() {
        let src = r#"
module "m"
func public @id(%x: i32) : i32 {
entry:
  ret %x
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.name, "m");
        let f = m.func_by_name("id").unwrap();
        assert_eq!(m.func(f).blocks.len(), 1);
    }

    #[test]
    fn parse_arith_and_branches() {
        let src = r#"
module "m"
func public @max(%a: i32, %b: i32) : i32 {
entry:
  %c:i1 = icmp sgt %a, %b
  condbr %c, t, e
t:
  ret %a
e:
  ret %b
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func(m.func_by_name("max").unwrap());
        assert_eq!(f.blocks.len(), 3);
        assert!(matches!(
            f.inst(crate::inst::InstId(1)),
            Inst::CondBr { .. }
        ));
    }

    #[test]
    fn parse_phi_forward_reference() {
        let src = r#"
module "m"
func public @count(%n: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %next]
  %next:i64 = add %i, 1:i64
  %done:i1 = icmp uge %next, %n
  condbr %done, out, loop
out:
  ret %next
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func(m.func_by_name("count").unwrap());
        assert_eq!(f.blocks.len(), 3);
        match f.inst(crate::inst::InstId(1)) {
            Inst::Phi { incomings, .. } => assert_eq!(incomings.len(), 2),
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn parse_globals_structs_externs() {
        let src = r#"
module "m"
struct %pair = { i64, i32* }
const global @msg : [4 x i8] = bytes x68690000
global @table : [2 x i64] = zero
declare @mystery : (i8*) -> i32
func public @main() : i32 {
entry:
  %p:i8* = gep @msg [0:i32, 0:i32]
  %r:i32 = call @mystery(%p)
  ret %r
}
"#;
        let m = parse_module(src).unwrap();
        assert!(m.global_by_name("msg").is_some());
        assert!(m.extern_by_name("mystery").is_some());
        assert!(m.types.struct_by_name("pair").is_some());
        match &m.global(m.global_by_name("msg").unwrap()).init {
            GlobalInit::Bytes(b) => assert_eq!(b, &vec![0x68, 0x69, 0, 0]),
            other => panic!("bad init {other:?}"),
        }
    }

    #[test]
    fn parse_allocator_decls() {
        let src = r#"
module "m"
declare @kmalloc : (i64) -> i8*
declare @kfree : (i8*) -> void
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0 backed_by="kmem_cache"
func public @f() : void {
entry:
  ret
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.allocators.len(), 1);
        let a = &m.allocators[0];
        assert_eq!(a.kind, AllocKind::Ordinary);
        assert_eq!(a.size, SizeSpec::Arg(0));
        assert_eq!(a.backed_by.as_deref(), Some("kmem_cache"));
    }

    #[test]
    fn parse_intrinsic_call() {
        let src = r#"
module "m"
func public @t() : i64 {
entry:
  %v:i64 = call $sva.get.timer() : i64
  ret %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func(m.func_by_name("t").unwrap());
        match f.inst(crate::inst::InstId(0)) {
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::GetTimer),
                ..
            } => {}
            other => panic!("expected intrinsic call, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_print_parse_print() {
        let src = r#"
module "rt"
struct %node = { i64, %node* }
global @head : %node* = zero
func public @sum() : i64 {
entry:
  %h:%node* = load @head
  br loop
loop:
  %acc:i64 = phi i64 [entry: 0:i64, body: %acc2]
  %cur:%node* = phi %node* [entry: %h, body: %nxt]
  %isnull:i1 = icmp eq %cur, null:%node*
  condbr %isnull, out, body
body:
  %vp:i64* = gep %cur [0:i32, 0:i32]
  %v:i64 = load %vp
  %acc2:i64 = add %acc, %v
  %np:%node** = gep %cur [0:i32, 1:i32]
  %nxt:%node* = load %np
  br loop
out:
  ret %acc
}
"#;
        let m1 = parse_module(src).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2, "printer/parser fixed point");
    }

    #[test]
    fn error_reports_unknown_value() {
        let src = r#"
module "m"
func public @f() : i32 {
entry:
  ret %nope
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.msg.contains("unknown value"), "{err}");
    }

    #[test]
    fn error_reports_unknown_opcode() {
        let src = r#"
module "m"
func public @f() : void {
entry:
  frobnicate
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.msg.contains("unknown opcode"), "{err}");
    }

    #[test]
    fn parse_switch_and_select() {
        let src = r#"
module "m"
func public @classify(%x: i64) : i64 {
entry:
  switch %x, dflt [0: zero, 1: one]
zero:
  ret 100:i64
one:
  ret 200:i64
dflt:
  %big:i1 = icmp sgt %x, 10:i64
  %r:i64 = select %big, 1:i64, 2:i64
  ret %r
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func(m.func_by_name("classify").unwrap());
        assert_eq!(f.blocks.len(), 4);
    }
}
