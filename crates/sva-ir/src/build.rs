//! Ergonomic IR construction.
//!
//! [`FunctionBuilder`] is how front ends (and the mini-kernel in
//! `sva-kernel`) emit SVA-Core code. It tracks a current insertion block,
//! computes result types (including `getelementptr` type walking), and
//! offers shorthand for constants, casts and intrinsic calls.

use crate::inst::{AtomicOp, BinOp, Callee, CastOp, IPred, Inst, InstId, Intrinsic, Operand};
use crate::module::{BlockId, FuncId, Function, Module, ValueId};
use crate::types::{Type, TypeId};

/// Builder appending instructions to one function of a module.
pub struct FunctionBuilder<'m> {
    /// The module being built.
    pub module: &'m mut Module,
    /// The function being built.
    pub func: FuncId,
    cur: Option<BlockId>,
}

impl<'m> FunctionBuilder<'m> {
    /// Starts building `func`; creates and positions at an `entry` block if
    /// the function has none yet.
    pub fn new(module: &'m mut Module, func: FuncId) -> Self {
        let mut b = FunctionBuilder {
            module,
            func,
            cur: None,
        };
        if b.f().blocks.is_empty() {
            let entry = b.f_mut().add_block("entry");
            b.cur = Some(entry);
        } else {
            b.cur = Some(BlockId(0));
        }
        b
    }

    fn f(&self) -> &Function {
        self.module.func(self.func)
    }

    fn f_mut(&mut self) -> &mut Function {
        self.module.func_mut(self.func)
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if the builder is not positioned (after a terminator with no
    /// [`FunctionBuilder::switch_to`]).
    pub fn cur_block(&self) -> BlockId {
        self.cur.expect("builder not positioned at a block")
    }

    /// Creates a new (empty) block without moving the insertion point.
    pub fn block(&mut self, name: &str) -> BlockId {
        self.f_mut().add_block(name)
    }

    /// Moves the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The `i`-th parameter as an operand.
    pub fn param(&self, i: usize) -> Operand {
        Operand::Value(self.f().params[i])
    }

    /// Names a value (printing aid only).
    pub fn name_value(&mut self, op: Operand, name: &str) {
        if let Operand::Value(v) = op {
            self.f_mut().value_names[v.0 as usize] = Some(name.to_string());
        }
    }

    fn emit(&mut self, inst: Inst, result_ty: Option<TypeId>) -> (InstId, Option<Operand>) {
        let cur = self.cur_block();
        let (iid, res) = self.f_mut().push_inst(cur, inst, result_ty);
        (iid, res.map(Operand::Value))
    }

    // ---- constants -------------------------------------------------------

    /// `i1` constant.
    pub fn c1(&mut self, v: bool) -> Operand {
        let t = self.module.types.i1();
        Operand::ConstInt(v as i64, t)
    }

    /// `i8` constant.
    pub fn c8(&mut self, v: i64) -> Operand {
        let t = self.module.types.i8();
        Operand::ConstInt(v, t)
    }

    /// `i16` constant.
    pub fn c16(&mut self, v: i64) -> Operand {
        let t = self.module.types.i16();
        Operand::ConstInt(v, t)
    }

    /// `i32` constant.
    pub fn c32(&mut self, v: i64) -> Operand {
        let t = self.module.types.i32();
        Operand::ConstInt(v, t)
    }

    /// `i64` constant.
    pub fn c64(&mut self, v: i64) -> Operand {
        let t = self.module.types.i64();
        Operand::ConstInt(v, t)
    }

    /// Null pointer of pointee type `to`.
    pub fn null(&mut self, to: TypeId) -> Operand {
        let p = self.module.types.ptr(to);
        Operand::Null(p)
    }

    /// Null `i8*`.
    pub fn null_byte_ptr(&mut self) -> Operand {
        let p = self.module.types.byte_ptr();
        Operand::Null(p)
    }

    // ---- arithmetic ------------------------------------------------------

    /// Emits a binary operation; result type is the lhs type.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> Operand {
        let ty = self.operand_ty(&lhs);
        self.emit(Inst::Bin { op, lhs, rhs }, Some(ty)).1.unwrap()
    }

    /// `add`.
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Add, a, b)
    }

    /// `sub`.
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Sub, a, b)
    }

    /// `mul`.
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Mul, a, b)
    }

    /// `udiv`.
    pub fn udiv(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::UDiv, a, b)
    }

    /// `and`.
    pub fn and(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::And, a, b)
    }

    /// `or`.
    pub fn or(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Or, a, b)
    }

    /// `xor`.
    pub fn xor(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Xor, a, b)
    }

    /// `shl`.
    pub fn shl(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::Shl, a, b)
    }

    /// `lshr`.
    pub fn lshr(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::LShr, a, b)
    }

    /// `urem`.
    pub fn urem(&mut self, a: Operand, b: Operand) -> Operand {
        self.bin(BinOp::URem, a, b)
    }

    /// Integer comparison (`i1` result).
    pub fn icmp(&mut self, pred: IPred, lhs: Operand, rhs: Operand) -> Operand {
        let t = self.module.types.i1();
        self.emit(Inst::ICmp { pred, lhs, rhs }, Some(t)).1.unwrap()
    }

    /// `select` (result type = tval's type).
    pub fn select(&mut self, cond: Operand, tval: Operand, fval: Operand) -> Operand {
        let ty = self.operand_ty(&tval);
        self.emit(Inst::Select { cond, tval, fval }, Some(ty))
            .1
            .unwrap()
    }

    // ---- casts -----------------------------------------------------------

    /// Emits a cast of any kind.
    pub fn cast(&mut self, op: CastOp, val: Operand, to: TypeId) -> Operand {
        self.emit(Inst::Cast { op, val, to }, Some(to)).1.unwrap()
    }

    /// Zero-extends to `to`.
    pub fn zext(&mut self, val: Operand, to: TypeId) -> Operand {
        self.cast(CastOp::ZExt, val, to)
    }

    /// Sign-extends to `to`.
    pub fn sext(&mut self, val: Operand, to: TypeId) -> Operand {
        self.cast(CastOp::SExt, val, to)
    }

    /// Truncates to `to`.
    pub fn trunc(&mut self, val: Operand, to: TypeId) -> Operand {
        self.cast(CastOp::Trunc, val, to)
    }

    /// Bit-casts a pointer to pointee type `to`.
    pub fn bitcast_ptr(&mut self, val: Operand, to_pointee: TypeId) -> Operand {
        let p = self.module.types.ptr(to_pointee);
        self.cast(CastOp::Bitcast, val, p)
    }

    /// Pointer to `i64`.
    pub fn ptrtoint(&mut self, val: Operand) -> Operand {
        let t = self.module.types.i64();
        self.cast(CastOp::PtrToInt, val, t)
    }

    /// `i64` to pointer of pointee type `to`.
    pub fn inttoptr(&mut self, val: Operand, to_pointee: TypeId) -> Operand {
        let p = self.module.types.ptr(to_pointee);
        self.cast(CastOp::IntToPtr, val, p)
    }

    // ---- memory ----------------------------------------------------------

    /// Computes the result type of a GEP from the base type and indices.
    pub fn gep_result_type(&self, base_ty: TypeId, indices: &[Operand]) -> TypeId {
        let types = &self.module.types;
        let mut cur = match types.get(base_ty) {
            Type::Ptr(p) => *p,
            _ => panic!("gep base is not a pointer"),
        };
        for (n, idx) in indices.iter().enumerate() {
            if n == 0 {
                // The first index steps over whole elements of the pointee.
                continue;
            }
            cur = match types.get(cur) {
                Type::Array(e, _) => *e,
                Type::Struct(_) => {
                    let field = match idx {
                        Operand::ConstInt(v, _) => *v as usize,
                        _ => panic!("struct gep index must be constant"),
                    };
                    types.struct_fields(cur)[field]
                }
                other => panic!("gep walks into non-aggregate {other:?}"),
            };
        }
        types
            .probe(&Type::Ptr(cur))
            .unwrap_or_else(|| panic!("gep result pointer type not interned"))
    }

    /// Emits `getelementptr base, indices` (interning the result type).
    pub fn gep(&mut self, base: Operand, indices: Vec<Operand>) -> Operand {
        let base_ty = self.operand_ty(&base);
        // Make sure the result pointer type exists before the read-only walk.
        {
            let types = &mut self.module.types;
            let mut cur = types.pointee(base_ty);
            for (n, idx) in indices.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cur = match types.get(cur).clone() {
                    Type::Array(e, _) => e,
                    Type::Struct(_) => {
                        let field = match idx {
                            Operand::ConstInt(v, _) => *v as usize,
                            _ => panic!("struct gep index must be constant"),
                        };
                        types.struct_fields(cur)[field]
                    }
                    other => panic!("gep walks into non-aggregate {other:?}"),
                };
            }
            types.ptr(cur);
        }
        let ty = self.gep_result_type(base_ty, &indices);
        self.emit(Inst::Gep { base, indices }, Some(ty)).1.unwrap()
    }

    /// `&base->field` for a pointer-to-struct: `gep base, [0, field]`.
    pub fn field_ptr(&mut self, base: Operand, field: usize) -> Operand {
        let i32 = self.module.types.i32();
        let zero = Operand::ConstInt(0, i32);
        let idx = Operand::ConstInt(field as i64, i32);
        self.gep(base, vec![zero, idx])
    }

    /// `&base[idx]` for a pointer-to-element: `gep base, [idx]`.
    pub fn index_ptr(&mut self, base: Operand, idx: Operand) -> Operand {
        self.gep(base, vec![idx])
    }

    /// `&arr[0][idx]` for a pointer-to-array: `gep base, [0, idx]`.
    pub fn array_elem_ptr(&mut self, base: Operand, idx: Operand) -> Operand {
        let i32 = self.module.types.i32();
        self.gep(base, vec![Operand::ConstInt(0, i32), idx])
    }

    /// Emits a typed load.
    pub fn load(&mut self, ptr: Operand) -> Operand {
        let pty = self.operand_ty(&ptr);
        let vty = self.module.types.pointee(pty);
        self.emit(Inst::Load { ptr }, Some(vty)).1.unwrap()
    }

    /// Emits a typed store.
    pub fn store(&mut self, val: Operand, ptr: Operand) {
        self.emit(Inst::Store { val, ptr }, None);
    }

    /// Stack-allocates one element of `ty`; returns the `ty*`.
    pub fn alloca(&mut self, ty: TypeId) -> Operand {
        let one = self.c32(1);
        self.alloca_n(ty, one)
    }

    /// Stack-allocates `count` elements of `ty`.
    pub fn alloca_n(&mut self, ty: TypeId, count: Operand) -> Operand {
        let p = self.module.types.ptr(ty);
        self.emit(Inst::Alloca { ty, count }, Some(p)).1.unwrap()
    }

    /// Atomic read-modify-write.
    pub fn atomic_rmw(&mut self, op: AtomicOp, ptr: Operand, val: Operand) -> Operand {
        let pty = self.operand_ty(&ptr);
        let vty = self.module.types.pointee(pty);
        self.emit(Inst::AtomicRmw { op, ptr, val }, Some(vty))
            .1
            .unwrap()
    }

    /// Atomic compare-and-swap; returns the old value.
    pub fn cmpxchg(&mut self, ptr: Operand, expected: Operand, new: Operand) -> Operand {
        let pty = self.operand_ty(&ptr);
        let vty = self.module.types.pointee(pty);
        self.emit(Inst::CmpXchg { ptr, expected, new }, Some(vty))
            .1
            .unwrap()
    }

    /// Memory write barrier.
    pub fn fence(&mut self) {
        self.emit(Inst::Fence, None);
    }

    // ---- calls -----------------------------------------------------------

    /// Direct call to a defined function; returns the result operand for
    /// non-void callees.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> Option<Operand> {
        let fty = self.module.func(callee).ty;
        let ret = self.fn_ret(fty);
        self.emit(
            Inst::Call {
                callee: Callee::Direct(callee),
                args,
            },
            ret,
        )
        .1
    }

    /// Direct call by function name.
    ///
    /// # Panics
    ///
    /// Panics if no function or extern with that name exists.
    pub fn call_named(&mut self, name: &str, args: Vec<Operand>) -> Option<Operand> {
        if let Some(f) = self.module.func_by_name(name) {
            return self.call(f, args);
        }
        if let Some(e) = self.module.extern_by_name(name) {
            let ety = self.module.externs[e.0 as usize].ty;
            let ret = self.fn_ret(ety);
            return self
                .emit(
                    Inst::Call {
                        callee: Callee::External(e),
                        args,
                    },
                    ret,
                )
                .1;
        }
        panic!("no function named `{name}`");
    }

    /// Indirect call through a function-pointer operand of type `fn_ty*`.
    pub fn call_indirect(&mut self, fnptr: Operand, args: Vec<Operand>) -> Option<Operand> {
        let pty = self.operand_ty(&fnptr);
        let fty = self.module.types.pointee(pty);
        let ret = self.fn_ret(fty);
        self.emit(
            Inst::Call {
                callee: Callee::Indirect(fnptr),
                args,
            },
            ret,
        )
        .1
    }

    /// Marks the most recent call instruction with the §4.8 "callee
    /// signatures match this call" assertion.
    pub fn assert_call_signature(&mut self) {
        let cur = self.cur_block();
        let last = *self.f().blocks[cur.0 as usize]
            .insts
            .last()
            .expect("no instruction to annotate");
        assert!(
            matches!(self.f().inst(last), Inst::Call { .. }),
            "signature assertion must follow a call"
        );
        self.f_mut().sig_asserted_calls.push(last);
    }

    /// Intrinsic call with explicit result type (`None` for void).
    pub fn intrinsic(
        &mut self,
        i: Intrinsic,
        args: Vec<Operand>,
        ret: Option<TypeId>,
    ) -> Option<Operand> {
        self.emit(
            Inst::Call {
                callee: Callee::Intrinsic(i),
                args,
            },
            ret,
        )
        .1
    }

    /// `sva.syscall(num, args...)` returning `i64`.
    pub fn syscall(&mut self, num: Operand, args: Vec<Operand>) -> Operand {
        let i64 = self.module.types.i64();
        let mut all = vec![num];
        all.extend(args);
        self.intrinsic(Intrinsic::Syscall, all, Some(i64)).unwrap()
    }

    fn fn_ret(&self, fty: TypeId) -> Option<TypeId> {
        match self.module.types.get(fty) {
            Type::Func { ret, .. } => {
                if matches!(self.module.types.get(*ret), Type::Void) {
                    None
                } else {
                    Some(*ret)
                }
            }
            _ => panic!("call through non-function type"),
        }
    }

    // ---- control flow ----------------------------------------------------

    /// φ-node of type `ty`.
    pub fn phi(&mut self, ty: TypeId, incomings: Vec<(BlockId, Operand)>) -> Operand {
        self.emit(Inst::Phi { incomings, ty }, Some(ty)).1.unwrap()
    }

    /// Unconditional branch; unsets the insertion point.
    pub fn br(&mut self, target: BlockId) {
        self.emit(Inst::Br { target }, None);
        self.cur = None;
    }

    /// Conditional branch; unsets the insertion point.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.emit(
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            },
            None,
        );
        self.cur = None;
    }

    /// Multi-way switch; unsets the insertion point.
    pub fn switch(&mut self, val: Operand, default: BlockId, cases: Vec<(i64, BlockId)>) {
        self.emit(
            Inst::Switch {
                val,
                default,
                cases,
            },
            None,
        );
        self.cur = None;
    }

    /// Return; unsets the insertion point.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.emit(Inst::Ret { val }, None);
        self.cur = None;
    }

    /// Unreachable terminator; unsets the insertion point.
    pub fn unreachable(&mut self) {
        self.emit(Inst::Unreachable, None);
        self.cur = None;
    }

    // ---- misc ------------------------------------------------------------

    /// The type of any operand in this function.
    pub fn operand_ty(&self, op: &Operand) -> TypeId {
        self.f().operand_type(op, self.module)
    }

    /// Returns the [`ValueId`] behind a value operand.
    ///
    /// # Panics
    ///
    /// Panics if the operand is not [`Operand::Value`].
    pub fn value_of(op: Operand) -> ValueId {
        match op {
            Operand::Value(v) => v,
            _ => panic!("operand is not an SSA value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{GlobalInit, Linkage};

    fn fixture() -> Module {
        Module::new("bt")
    }

    #[test]
    fn build_simple_function() {
        let mut m = fixture();
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![i32, i32], false);
        let f = m.add_function("max", fnty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let (x, y) = (b.param(0), b.param(1));
        let bb_then = b.block("then");
        let bb_else = b.block("else");
        let c = b.icmp(IPred::SGt, x, y);
        b.cond_br(c, bb_then, bb_else);
        b.switch_to(bb_then);
        b.ret(Some(x));
        b.switch_to(bb_else);
        b.ret(Some(y));
        let func = m.func(f);
        assert_eq!(func.blocks.len(), 3);
        assert_eq!(func.blocks[0].insts.len(), 2);
    }

    #[test]
    fn gep_type_walking() {
        let mut m = fixture();
        let i32 = m.types.i32();
        let i64 = m.types.i64();
        let arr = m.types.array(i32, 8);
        let s = m.types.struct_type("pair", vec![i64, arr]);
        let sp = m.types.ptr(s);
        let void = m.types.void();
        let fnty = m.types.func(void, vec![sp, i64], false);
        let f = m.add_function("touch", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let idx = b.param(1);
        // &p->field1[idx]
        let zero = b.c32(0);
        let one = b.c32(1);
        let ep = b.gep(p, vec![zero, one, idx]);
        let ety = b.operand_ty(&ep);
        assert_eq!(m.types.pointee(ety), i32);
    }

    #[test]
    fn load_store_types() {
        let mut m = fixture();
        let i64 = m.types.i64();
        let void = m.types.void();
        let p64 = m.types.ptr(i64);
        let fnty = m.types.func(void, vec![p64], false);
        let f = m.add_function("bump", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let p = b.param(0);
        let v = b.load(p);
        assert_eq!(b.operand_ty(&v), i64);
        let one = b.c64(1);
        let v2 = b.add(v, one);
        b.store(v2, p);
        b.ret(None);
    }

    #[test]
    fn alloca_and_field_ptr() {
        let mut m = fixture();
        let i32 = m.types.i32();
        let i8 = m.types.i8();
        let s = m.types.struct_type("two", vec![i8, i32]);
        let void = m.types.void();
        let fnty = m.types.func(void, vec![], false);
        let f = m.add_function("local", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let slot = b.alloca(s);
        let fp = b.field_ptr(slot, 1);
        let fpt = b.operand_ty(&fp);
        assert_eq!(m.types.pointee(fpt), i32);
    }

    #[test]
    fn call_and_intrinsic_results() {
        let mut m = fixture();
        let i64 = m.types.i64();
        let fnty = m.types.func(i64, vec![], false);
        let callee = m.add_function("gettick", fnty, Linkage::Internal);
        let void = m.types.void();
        let mainty = m.types.func(void, vec![], false);
        let f = m.add_function("main", mainty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, callee);
            let t = b.intrinsic(Intrinsic::GetTimer, vec![], Some(i64)).unwrap();
            b.ret(Some(t));
        }
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let r = b.call(callee, vec![]).unwrap();
            assert_eq!(b.operand_ty(&r), i64);
            b.ret(None);
        }
    }

    #[test]
    fn global_access_and_array_elem_ptr() {
        let mut m = fixture();
        let i32 = m.types.i32();
        let arr = m.types.array(i32, 16);
        let g = m.add_global("tbl", arr, GlobalInit::Zero, false);
        let void = m.types.void();
        let i64 = m.types.i64();
        let fnty = m.types.func(void, vec![i64], false);
        let f = m.add_function("poke", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let idx = b.param(0);
        let ep = b.array_elem_ptr(Operand::Global(g), idx);
        let one = b.c32(1);
        b.store(one, ep);
        b.ret(None);
        let ety = b.operand_ty(&ep);
        assert_eq!(m.types.pointee(ety), i32);
    }

    #[test]
    fn syscall_builder_shape() {
        let mut m = fixture();
        let i64 = m.types.i64();
        let fnty = m.types.func(i64, vec![], false);
        let f = m.add_function("user", fnty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let n = b.c64(39);
        let r = b.syscall(n, vec![]);
        b.ret(Some(r));
        let func = m.func(f);
        let call = func.inst(InstId(0));
        match call {
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::Syscall),
                args,
            } => {
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected syscall, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not positioned")]
    fn emitting_after_terminator_panics() {
        let mut m = fixture();
        let void = m.types.void();
        let fnty = m.types.func(void, vec![], false);
        let f = m.add_function("stop", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        let _ = b.c32(0); // fine: constants don't emit
        b.fence(); // must panic: no insertion block
    }
}
