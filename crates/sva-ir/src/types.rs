//! The SVA type system: hash-consed types with target-independent layout.
//!
//! Every instruction in SVA is typed (paper §3.1). Types are interned in a
//! [`TypeTable`] owned by the [`crate::Module`]; a [`TypeId`] is a cheap,
//! copyable handle. The table also computes the layout (size and alignment)
//! used by `getelementptr`, `alloca`, the interpreter memory model and the
//! metapool runtime's type-homogeneity rules.

use std::collections::HashMap;
use std::fmt;

/// Handle to an interned [`Type`] inside a [`TypeTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TypeId(pub u32);

/// A named struct definition.
///
/// Structs are nominal: two structs with identical fields but different names
/// are distinct types. Recursive types are expressed by declaring the struct
/// name first (fields empty, `opaque == true`) and filling the body later
/// with [`TypeTable::set_struct_body`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StructDef {
    /// Struct name, unique within the module (e.g. `"task_struct"`).
    pub name: String,
    /// Field types, in declaration order.
    pub fields: Vec<TypeId>,
    /// True while the body has not been provided yet.
    pub opaque: bool,
}

/// An SVA type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The empty type; only valid as a function return type.
    Void,
    /// An integer of the given bit width: 1, 8, 16, 32 or 64.
    Int(u8),
    /// A 64-bit IEEE float (the paper's FP state; one width suffices).
    F64,
    /// A pointer to another type.
    Ptr(TypeId),
    /// A fixed-length array.
    Array(TypeId, u64),
    /// A named struct; the index points into [`TypeTable::structs`].
    Struct(u32),
    /// A function type: return type, parameter types, varargs flag.
    Func {
        /// Return type (possibly [`Type::Void`]).
        ret: TypeId,
        /// Declared parameter types.
        params: Vec<TypeId>,
        /// Whether extra arguments are accepted.
        vararg: bool,
    },
}

/// Interner and layout oracle for [`Type`]s.
#[derive(Clone, Debug, Default)]
pub struct TypeTable {
    types: Vec<Type>,
    intern: HashMap<Type, TypeId>,
    /// Struct definitions referenced by [`Type::Struct`].
    pub structs: Vec<StructDef>,
    struct_by_name: HashMap<String, u32>,
}

/// Target-independent layout of a type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Layout {
    /// Size in bytes.
    pub size: u64,
    /// Alignment in bytes (power of two).
    pub align: u64,
}

impl Layout {
    fn new(size: u64, align: u64) -> Self {
        Layout { size, align }
    }
}

/// Pointer size of the virtual target, in bytes.
///
/// SVA is a 64-bit virtual architecture in this implementation; the original
/// system targeted 32-bit x86 but nothing in the design depends on the width.
pub const PTR_SIZE: u64 = 8;

impl TypeTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `ty`, returning its id. Identical types share one id.
    pub fn intern(&mut self, ty: Type) -> TypeId {
        if let Some(&id) = self.intern.get(&ty) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(ty.clone());
        self.intern.insert(ty, id);
        id
    }

    /// Returns the type behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    /// Read-only probe: returns the id of `ty` if it is already interned.
    pub fn probe(&self, ty: &Type) -> Option<TypeId> {
        self.intern.get(ty).copied()
    }

    /// Pushes a type positionally (bytecode decoding only): ids must be
    /// appended in their original order.
    pub fn raw_push(&mut self, ty: Type) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.intern.insert(ty.clone(), id);
        self.types.push(ty);
        id
    }

    /// Rebuilds the name → struct index after bulk-loading `structs`
    /// (bytecode decoding only).
    pub fn rebuild_struct_index(&mut self) {
        self.struct_by_name = self
            .structs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i as u32))
            .collect();
    }

    /// Number of interned types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if no types are interned.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The `void` type.
    pub fn void(&mut self) -> TypeId {
        self.intern(Type::Void)
    }

    /// The 1-bit boolean type.
    pub fn i1(&mut self) -> TypeId {
        self.intern(Type::Int(1))
    }

    /// The 8-bit integer type.
    pub fn i8(&mut self) -> TypeId {
        self.intern(Type::Int(8))
    }

    /// The 16-bit integer type.
    pub fn i16(&mut self) -> TypeId {
        self.intern(Type::Int(16))
    }

    /// The 32-bit integer type.
    pub fn i32(&mut self) -> TypeId {
        self.intern(Type::Int(32))
    }

    /// The 64-bit integer type.
    pub fn i64(&mut self) -> TypeId {
        self.intern(Type::Int(64))
    }

    /// The 64-bit float type.
    pub fn f64(&mut self) -> TypeId {
        self.intern(Type::F64)
    }

    /// A pointer to `to`.
    pub fn ptr(&mut self, to: TypeId) -> TypeId {
        self.intern(Type::Ptr(to))
    }

    /// A raw byte pointer (`i8*`), SVA's analogue of C's `void*`.
    pub fn byte_ptr(&mut self) -> TypeId {
        let i8 = self.i8();
        self.ptr(i8)
    }

    /// An array `[n x elem]`.
    pub fn array(&mut self, elem: TypeId, n: u64) -> TypeId {
        self.intern(Type::Array(elem, n))
    }

    /// A function type.
    pub fn func(&mut self, ret: TypeId, params: Vec<TypeId>, vararg: bool) -> TypeId {
        self.intern(Type::Func {
            ret,
            params,
            vararg,
        })
    }

    /// Declares a named struct (opaque until a body is set) and returns its
    /// type id. Declaring an existing name returns the existing type.
    pub fn declare_struct(&mut self, name: &str) -> TypeId {
        if let Some(&idx) = self.struct_by_name.get(name) {
            return self.intern(Type::Struct(idx));
        }
        let idx = self.structs.len() as u32;
        self.structs.push(StructDef {
            name: name.to_string(),
            fields: Vec::new(),
            opaque: true,
        });
        self.struct_by_name.insert(name.to_string(), idx);
        self.intern(Type::Struct(idx))
    }

    /// Defines (or redefines) the body of a declared struct.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct type of this table.
    pub fn set_struct_body(&mut self, id: TypeId, fields: Vec<TypeId>) {
        match *self.get(id) {
            Type::Struct(idx) => {
                let def = &mut self.structs[idx as usize];
                def.fields = fields;
                def.opaque = false;
            }
            _ => panic!("set_struct_body on non-struct type"),
        }
    }

    /// Declares a struct and sets its body in one step.
    pub fn struct_type(&mut self, name: &str, fields: Vec<TypeId>) -> TypeId {
        let id = self.declare_struct(name);
        self.set_struct_body(id, fields);
        id
    }

    /// Looks up a struct type by name.
    pub fn struct_by_name(&self, name: &str) -> Option<TypeId> {
        let idx = *self.struct_by_name.get(name)?;
        // Struct types are always interned when declared, so this lookup
        // cannot miss; re-derive the id without `&mut self`.
        self.intern.get(&Type::Struct(idx)).copied()
    }

    /// Returns the fields of a struct type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct type.
    pub fn struct_fields(&self, id: TypeId) -> &[TypeId] {
        match *self.get(id) {
            Type::Struct(idx) => &self.structs[idx as usize].fields,
            _ => panic!("struct_fields on non-struct type"),
        }
    }

    /// Returns the struct name for a struct type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct type.
    pub fn struct_name(&self, id: TypeId) -> &str {
        match *self.get(id) {
            Type::Struct(idx) => &self.structs[idx as usize].name,
            _ => panic!("struct_name on non-struct type"),
        }
    }

    /// True if `id` is any integer type.
    pub fn is_int(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Int(_))
    }

    /// True if `id` is a pointer type.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.get(id), Type::Ptr(_))
    }

    /// The pointee of a pointer type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a pointer type.
    pub fn pointee(&self, id: TypeId) -> TypeId {
        match *self.get(id) {
            Type::Ptr(p) => p,
            _ => panic!("pointee of non-pointer type"),
        }
    }

    /// Computes the layout of a type.
    ///
    /// Layout rules mirror a conventional C ABI: integers and floats align to
    /// their size (i1 occupies one byte), pointers are [`PTR_SIZE`] bytes,
    /// arrays multiply, structs pad fields to their alignment and round the
    /// total size up to the struct alignment.
    ///
    /// # Panics
    ///
    /// Panics on `void`, function types, or opaque structs — none of which
    /// have an in-memory layout.
    pub fn layout(&self, id: TypeId) -> Layout {
        match *self.get(id) {
            Type::Void => panic!("void has no layout"),
            Type::Int(1) | Type::Int(8) => Layout::new(1, 1),
            Type::Int(16) => Layout::new(2, 2),
            Type::Int(32) => Layout::new(4, 4),
            Type::Int(64) => Layout::new(8, 8),
            Type::Int(w) => panic!("unsupported integer width {w}"),
            Type::F64 => Layout::new(8, 8),
            Type::Ptr(_) => Layout::new(PTR_SIZE, PTR_SIZE),
            Type::Array(elem, n) => {
                let e = self.layout(elem);
                Layout::new(e.size * n, e.align)
            }
            Type::Struct(idx) => {
                let def = &self.structs[idx as usize];
                assert!(!def.opaque, "opaque struct `{}` has no layout", def.name);
                let mut size = 0u64;
                let mut align = 1u64;
                for &f in &def.fields {
                    let fl = self.layout(f);
                    size = round_up(size, fl.align) + fl.size;
                    align = align.max(fl.align);
                }
                Layout::new(round_up(size, align), align)
            }
            Type::Func { .. } => panic!("function types have no layout"),
        }
    }

    /// Byte offset of struct field `idx` within struct type `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, id: TypeId, idx: usize) -> u64 {
        let fields = self.struct_fields(id).to_vec();
        assert!(idx < fields.len(), "field index out of range");
        let mut off = 0u64;
        for (i, f) in fields.iter().enumerate() {
            let fl = self.layout(*f);
            off = round_up(off, fl.align);
            if i == idx {
                return off;
            }
            off += fl.size;
        }
        unreachable!()
    }

    /// Size in bytes, shorthand for `layout(id).size`.
    pub fn size_of(&self, id: TypeId) -> u64 {
        self.layout(id).size
    }

    /// Renders a type as text (e.g. `i32**`, `[4 x %task]`).
    pub fn display(&self, id: TypeId) -> TypeDisplay<'_> {
        TypeDisplay { table: self, id }
    }

    /// Structural equality helper for "same type or array thereof", the
    /// relation used by type-homogeneity (paper §4.1 T2).
    pub fn same_or_array_of(&self, a: TypeId, b: TypeId) -> bool {
        if a == b {
            return true;
        }
        match (self.get(a), self.get(b)) {
            (Type::Array(ea, _), _) if *ea == b => true,
            (_, Type::Array(eb, _)) if *eb == a => true,
            _ => false,
        }
    }
}

/// Rounds `v` up to the next multiple of `align` (power of two or 1).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align) * align
}

/// [`fmt::Display`] adapter produced by [`TypeTable::display`].
pub struct TypeDisplay<'a> {
    table: &'a TypeTable,
    id: TypeId,
}

impl fmt::Display for TypeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.table.get(self.id) {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::F64 => write!(f, "f64"),
            Type::Ptr(p) => write!(f, "{}*", self.table.display(*p)),
            Type::Array(e, n) => write!(f, "[{} x {}]", n, self.table.display(*e)),
            Type::Struct(idx) => write!(f, "%{}", self.table.structs[*idx as usize].name),
            Type::Func {
                ret,
                params,
                vararg,
            } => {
                // Wrapped in parens so `((i64) -> i64)*` (pointer to
                // function) is unambiguous against `(i64) -> i64*`
                // (function returning a pointer).
                write!(f, "((")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.table.display(*p))?;
                }
                if *vararg {
                    if !params.is_empty() {
                        write!(f, ", ")?;
                    }
                    write!(f, "...")?;
                }
                write!(f, ") -> {})", self.table.display(*ret))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut t = TypeTable::new();
        let a = t.i32();
        let b = t.i32();
        assert_eq!(a, b);
        let p1 = t.ptr(a);
        let p2 = t.ptr(b);
        assert_eq!(p1, p2);
        assert_ne!(a, p1);
    }

    #[test]
    fn primitive_layouts() {
        let mut t = TypeTable::new();
        let cases = [
            (t.i1(), 1, 1),
            (t.i8(), 1, 1),
            (t.i16(), 2, 2),
            (t.i32(), 4, 4),
            (t.i64(), 8, 8),
            (t.f64(), 8, 8),
        ];
        for (ty, size, align) in cases {
            let l = t.layout(ty);
            assert_eq!((l.size, l.align), (size, align));
        }
        let i8 = t.i8();
        let p = t.ptr(i8);
        assert_eq!(t.layout(p).size, PTR_SIZE);
    }

    #[test]
    fn struct_layout_padding() {
        let mut t = TypeTable::new();
        let (i8, i32, i64) = (t.i8(), t.i32(), t.i64());
        // { i8, i32, i8, i64 } -> offsets 0, 4, 8, 16; size 24; align 8.
        let s = t.struct_type("padded", vec![i8, i32, i8, i64]);
        assert_eq!(t.field_offset(s, 0), 0);
        assert_eq!(t.field_offset(s, 1), 4);
        assert_eq!(t.field_offset(s, 2), 8);
        assert_eq!(t.field_offset(s, 3), 16);
        let l = t.layout(s);
        assert_eq!((l.size, l.align), (24, 8));
    }

    #[test]
    fn array_layout() {
        let mut t = TypeTable::new();
        let i32 = t.i32();
        let a = t.array(i32, 10);
        let l = t.layout(a);
        assert_eq!((l.size, l.align), (40, 4));
    }

    #[test]
    fn recursive_struct_via_pointer() {
        let mut t = TypeTable::new();
        let node = t.declare_struct("node");
        let node_ptr = t.ptr(node);
        let i64 = t.i64();
        t.set_struct_body(node, vec![i64, node_ptr]);
        let l = t.layout(node);
        assert_eq!((l.size, l.align), (16, 8));
    }

    #[test]
    fn struct_nominal_identity() {
        let mut t = TypeTable::new();
        let i32 = t.i32();
        let a = t.struct_type("a", vec![i32]);
        let b = t.struct_type("b", vec![i32]);
        assert_ne!(a, b);
        assert_eq!(t.struct_by_name("a"), Some(a));
        assert_eq!(t.struct_by_name("missing"), None);
    }

    #[test]
    fn display_round() {
        let mut t = TypeTable::new();
        let i32 = t.i32();
        let p = t.ptr(i32);
        let pp = t.ptr(p);
        assert_eq!(t.display(pp).to_string(), "i32**");
        let arr = t.array(p, 4);
        assert_eq!(t.display(arr).to_string(), "[4 x i32*]");
        let v = t.void();
        let fnty = t.func(v, vec![i32], true);
        assert_eq!(t.display(fnty).to_string(), "((i32, ...) -> void)");
    }

    #[test]
    fn same_or_array_of_relation() {
        let mut t = TypeTable::new();
        let i32 = t.i32();
        let arr = t.array(i32, 8);
        let i64 = t.i64();
        assert!(t.same_or_array_of(i32, i32));
        assert!(t.same_or_array_of(arr, i32));
        assert!(t.same_or_array_of(i32, arr));
        assert!(!t.same_or_array_of(i64, arr));
    }

    #[test]
    #[should_panic(expected = "opaque struct")]
    fn opaque_struct_layout_panics() {
        let mut t = TypeTable::new();
        let s = t.declare_struct("fwd");
        let _ = t.layout(s);
    }

    #[test]
    fn round_up_behaviour() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
    }
}
