//! Textual assembly printer for SVA modules.
//!
//! The format is LLVM-flavoured but self-contained; [`crate::parse`] reads
//! it back. Printing then parsing yields a structurally identical module
//! (covered by round-trip tests in `parse.rs`).

use std::fmt::Write as _;

use crate::inst::{Callee, Inst, Operand};
use crate::module::{AllocKind, Function, GlobalInit, Module, RelocTarget, SizeSpec, ValueId};
use crate::types::TypeId;

/// Renders a whole module as text.
pub fn print_module(m: &Module) -> String {
    let mut out = print_module_header(m);
    for f in &m.funcs {
        print_function(&mut out, m, f);
        out.push('\n');
    }
    out
}

/// Renders everything *except* function bodies: the module line, struct
/// layouts, globals (including initializers), extern declarations,
/// allocator descriptors and the entry designation. This is the module's
/// "surface" — the part function indices, global addresses and dispatch
/// tables are derived from — and snapshot migration fingerprints it to
/// decide whether two builds are layout-compatible.
pub fn print_module_header(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    out.push('\n');

    for def in &m.types.structs {
        let _ = write!(out, "struct %{} = {{ ", def.name);
        if def.opaque {
            let _ = write!(out, "opaque ");
        } else {
            for (i, f) in def.fields.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}", m.types.display(*f));
            }
            out.push(' ');
        }
        let _ = writeln!(out, "}}");
    }
    if !m.types.structs.is_empty() {
        out.push('\n');
    }

    for g in &m.globals {
        let konst = if g.is_const { "const " } else { "" };
        let _ = write!(
            out,
            "{}global @{} : {} = ",
            konst,
            g.name,
            m.types.display(g.ty)
        );
        match &g.init {
            GlobalInit::Zero => {
                let _ = writeln!(out, "zero");
            }
            GlobalInit::Bytes(b) => {
                let _ = writeln!(out, "bytes x{}", hex(b));
            }
            GlobalInit::Relocated { bytes, relocs } => {
                let _ = write!(out, "bytes x{} relocs [", hex(bytes));
                for (i, (off, t)) in relocs.iter().enumerate() {
                    if i > 0 {
                        let _ = write!(out, ", ");
                    }
                    let name = match t {
                        RelocTarget::Func(n) | RelocTarget::Extern(n) | RelocTarget::Global(n) => n,
                    };
                    let _ = write!(out, "{off}: @{name}");
                }
                let _ = writeln!(out, "]");
            }
        }
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }

    for e in &m.externs {
        let _ = writeln!(out, "declare @{} : {}", e.name, m.types.display(e.ty));
    }
    if !m.externs.is_empty() {
        out.push('\n');
    }

    for a in &m.allocators {
        let kind = match a.kind {
            AllocKind::Pool => "pool",
            AllocKind::Ordinary => "ordinary",
        };
        let _ = write!(
            out,
            "allocator {} \"{}\" alloc=@{}",
            kind, a.name, a.alloc_fn
        );
        if let Some(d) = &a.dealloc_fn {
            let _ = write!(out, " dealloc=@{d}");
        }
        if let Some(c) = &a.pool_create_fn {
            let _ = write!(out, " create=@{c}");
        }
        if let Some(d) = &a.pool_destroy_fn {
            let _ = write!(out, " destroy=@{d}");
        }
        match a.size {
            SizeSpec::Arg(n) => {
                let _ = write!(out, " size=arg{n}");
            }
            SizeSpec::PoolObjectSize => {
                let _ = write!(out, " size=pool");
            }
            SizeSpec::Const(c) => {
                let _ = write!(out, " size=const{c}");
            }
        }
        if let Some(sf) = &a.size_fn {
            let _ = write!(out, " size_fn=@{sf}");
        }
        if let Some(p) = a.pool_arg {
            let _ = write!(out, " pool_arg={p}");
        }
        if let Some(b) = &a.backed_by {
            let _ = write!(out, " backed_by=\"{b}\"");
        }
        out.push('\n');
    }
    if !m.allocators.is_empty() {
        out.push('\n');
    }

    if let Some(e) = m.entry {
        let _ = writeln!(out, "entry @{}\n", m.func(e).name);
    }
    out
}

/// Renders a single function as text, exactly as it appears inside
/// [`print_module`]'s output. The text is deterministic for a given
/// module, which makes it usable as a canonical per-function identity
/// (snapshot migration hashes it to detect body changes across builds).
pub fn print_function_text(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    print_function(&mut out, m, f);
    out
}

fn hex(b: &[u8]) -> String {
    let mut s = String::with_capacity(b.len() * 2);
    for byte in b {
        let _ = write!(s, "{byte:02x}");
    }
    s
}

fn vname(f: &Function, v: ValueId) -> String {
    match &f.value_names[v.0 as usize] {
        Some(n) => format!("%{n}.{}", v.0),
        None => format!("%{}", v.0),
    }
}

/// Renders one operand (with enough type info to re-parse it).
pub fn operand_str(m: &Module, f: &Function, op: &Operand) -> String {
    match op {
        Operand::Value(v) => vname(f, *v),
        Operand::ConstInt(v, ty) => format!("{}:{}", v, m.types.display(*ty)),
        Operand::ConstF64(bits) => format!("fp{:016x}", bits),
        Operand::Null(ty) => format!("null:{}", m.types.display(*ty)),
        Operand::Global(g) => format!("@{}", m.global(*g).name),
        Operand::Func(fid) => format!("@{}", m.func(*fid).name),
        Operand::Extern(e) => format!("@{}", m.externs[e.0 as usize].name),
        Operand::Undef(ty) => format!("undef:{}", m.types.display(*ty)),
    }
}

fn print_function(out: &mut String, m: &Module, f: &Function) {
    let linkage = match f.linkage {
        crate::module::Linkage::Public => "public",
        crate::module::Linkage::Internal => "internal",
    };
    let ret = match m.types.get(f.ty) {
        crate::types::Type::Func { ret, .. } => *ret,
        _ => unreachable!(),
    };
    let _ = write!(out, "func {} @{}(", linkage, f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ", ");
        }
        let _ = write!(
            out,
            "{}: {}",
            vname(f, *p),
            m.types.display(f.value_type(*p))
        );
    }
    let _ = writeln!(out, ") : {} {{", m.types.display(ret));
    for (bi, b) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "{}:", b.name);
        for &iid in &b.insts {
            let inst = f.inst(iid);
            let _ = write!(out, "  ");
            if let Some(r) = f.result_of(iid) {
                // The result type is printed explicitly so the parser can
                // create all SSA values before resolving operands.
                let _ = write!(
                    out,
                    "{}:{} = ",
                    vname(f, r),
                    m.types.display(f.value_type(r))
                );
            }
            print_inst(out, m, f, inst, f.result_of(iid).map(|v| f.value_type(v)));
            if f.sig_asserted_calls.contains(&iid) {
                let _ = write!(out, " !sigassert");
            }
            out.push('\n');
        }
        let _ = bi;
    }
    let _ = writeln!(out, "}}");
}

fn print_inst(out: &mut String, m: &Module, f: &Function, inst: &Inst, result_ty: Option<TypeId>) {
    let op = |o: &Operand| operand_str(m, f, o);
    let blk = |b: &crate::module::BlockId| f.blocks[b.0 as usize].name.clone();
    match inst {
        Inst::Bin { op: o, lhs, rhs } => {
            let _ = write!(out, "{} {}, {}", o.mnemonic(), op(lhs), op(rhs));
        }
        Inst::ICmp { pred, lhs, rhs } => {
            let _ = write!(out, "icmp {} {}, {}", pred.mnemonic(), op(lhs), op(rhs));
        }
        Inst::Select { cond, tval, fval } => {
            let _ = write!(out, "select {}, {}, {}", op(cond), op(tval), op(fval));
        }
        Inst::Cast { op: c, val, to } => {
            let _ = write!(
                out,
                "cast {} {} to {}",
                c.mnemonic(),
                op(val),
                m.types.display(*to)
            );
        }
        Inst::Gep { base, indices } => {
            let _ = write!(out, "gep {} [", op(base));
            for (i, idx) in indices.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}", op(idx));
            }
            let _ = write!(out, "]");
        }
        Inst::Load { ptr } => {
            let _ = write!(out, "load {}", op(ptr));
        }
        Inst::Store { val, ptr } => {
            let _ = write!(out, "store {}, {}", op(val), op(ptr));
        }
        Inst::Alloca { ty, count } => {
            let _ = write!(out, "alloca {}, {}", m.types.display(*ty), op(count));
        }
        Inst::Call { callee, args } => {
            match callee {
                Callee::Direct(fid) => {
                    let _ = write!(out, "call @{}(", m.func(*fid).name);
                }
                Callee::External(e) => {
                    let _ = write!(out, "call @{}(", m.externs[e.0 as usize].name);
                }
                Callee::Indirect(p) => {
                    let _ = write!(out, "callind {}(", op(p));
                }
                Callee::Intrinsic(i) => {
                    let _ = write!(out, "call ${}(", i.name());
                }
            }
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}", op(a));
            }
            let _ = write!(out, ")");
        }
        Inst::Phi { incomings, ty } => {
            let _ = write!(out, "phi {} [", m.types.display(*ty));
            for (i, (b, v)) in incomings.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}: {}", blk(b), op(v));
            }
            let _ = write!(out, "]");
        }
        Inst::AtomicRmw { op: o, ptr, val } => {
            let name = match o {
                crate::inst::AtomicOp::Add => "add",
                crate::inst::AtomicOp::Sub => "sub",
                crate::inst::AtomicOp::Xchg => "xchg",
            };
            let _ = write!(out, "atomicrmw {} {}, {}", name, op(ptr), op(val));
        }
        Inst::CmpXchg { ptr, expected, new } => {
            let _ = write!(out, "cmpxchg {}, {}, {}", op(ptr), op(expected), op(new));
        }
        Inst::Fence => {
            let _ = write!(out, "fence");
        }
        Inst::Br { target } => {
            let _ = write!(out, "br {}", blk(target));
        }
        Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            let _ = write!(
                out,
                "condbr {}, {}, {}",
                op(cond),
                blk(then_bb),
                blk(else_bb)
            );
        }
        Inst::Switch {
            val,
            default,
            cases,
        } => {
            let _ = write!(out, "switch {}, {} [", op(val), blk(default));
            for (i, (c, b)) in cases.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ", ");
                }
                let _ = write!(out, "{}: {}", c, blk(b));
            }
            let _ = write!(out, "]");
        }
        Inst::Ret { val } => match val {
            Some(v) => {
                let _ = write!(out, "ret {}", op(v));
            }
            None => {
                let _ = write!(out, "ret");
            }
        },
        Inst::Unreachable => {
            let _ = write!(out, "unreachable");
        }
    }
    // Intrinsic calls additionally record their result type so the parser
    // can reconstruct it (intrinsics have no declared function type).
    if let Inst::Call {
        callee: Callee::Intrinsic(_),
        ..
    } = inst
    {
        if let Some(rty) = result_ty {
            let _ = write!(out, " : {}", m.types.display(rty));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::inst::{IPred, Intrinsic};
    use crate::module::Linkage;

    #[test]
    fn prints_function_shell() {
        let mut m = Module::new("demo");
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![i32], false);
        let f = m.add_function("id", fnty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let x = b.param(0);
        b.ret(Some(x));
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("func public @id(%0: i32) : i32 {"));
        assert!(text.contains("ret %0"));
    }

    #[test]
    fn prints_intrinsic_with_result_type() {
        let mut m = Module::new("demo");
        let i64 = m.types.i64();
        let fnty = m.types.func(i64, vec![], false);
        let f = m.add_function("t", fnty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let v = b.intrinsic(Intrinsic::GetTimer, vec![], Some(i64)).unwrap();
        b.ret(Some(v));
        let text = print_module(&m);
        assert!(text.contains("call $sva.get.timer() : i64"), "{text}");
    }

    #[test]
    fn prints_control_flow_names() {
        let mut m = Module::new("demo");
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![i32], false);
        let f = m.add_function("abs", fnty, Linkage::Public);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        let x = b.param(0);
        let neg = b.block("neg");
        let pos = b.block("pos");
        let z = b.c32(0);
        let c = b.icmp(IPred::SLt, x, z);
        b.cond_br(c, neg, pos);
        b.switch_to(neg);
        let z2 = b.c32(0);
        let n = b.sub(z2, x);
        b.ret(Some(n));
        b.switch_to(pos);
        b.ret(Some(x));
        let text = print_module(&m);
        assert!(text.contains("condbr %1, neg, pos"), "{text}");
    }

    #[test]
    fn print_parse_fixed_point_on_rich_module() {
        // Round-trip stability over every module-level construct: struct
        // types, const globals, relocated globals, externs, full allocator
        // declarations, `!sigassert` call sites and fn-pointer types.
        let src = r#"
module "rich"
struct %pair = { i64, i8* }
const global @greet : [3 x i8] = bytes x414243
global @vec : [2 x i64] = zero
global @fp : ((i64) -> i64)* = bytes x0000000000000000 relocs [0: @inc]
declare @ext : (i8*) -> i32
func internal @inc(%x: i64) : i64 {
entry:
  %r:i64 = add %x, 1:i64
  ret %r
}
func public @palloc(%pool: i8*, %n: i64) : i8* {
entry:
  ret %pool
}
func public @main(%n: i64) : i64 {
entry:
  %f:((i64) -> i64)* = load @fp
  %r:i64 = callind %f(%n) !sigassert
  ret %r
}
allocator pool "palloc" alloc=@palloc create=@inc destroy=@inc size=pool pool_arg=0 backed_by="kmem"
entry @main
"#;
        let m1 = crate::parse::parse_module(src).expect("parse");
        let t1 = print_module(&m1);
        let m2 = crate::parse::parse_module(&t1).expect("reparse printed text");
        let t2 = print_module(&m2);
        assert_eq!(t1, t2, "printer must be a fixed point of the parser");
        // The surface details must actually survive, not merely re-balance.
        for needle in [
            "struct %pair",
            "const global @greet",
            "relocs [0: @inc]",
            "declare @ext",
            "!sigassert",
            "size=pool",
            "pool_arg=0",
            "backed_by=\"kmem\"",
            "entry @main",
        ] {
            assert!(t1.contains(needle), "missing `{needle}` in:\n{t1}");
        }
    }

    #[test]
    fn prints_byte_initializers_as_hex() {
        let mut m = Module::new("demo");
        let i8t = m.types.i8();
        let arr = m.types.array(i8t, 4);
        m.add_global(
            "blob",
            arr,
            crate::module::GlobalInit::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
            true,
        );
        m.intern_address_types();
        let text = print_module(&m);
        assert!(text.contains("bytes xdeadbeef"), "{text}");
    }

    #[test]
    fn prints_variadic_and_void_function_types() {
        let mut m = Module::new("demo");
        let void = m.types.void();
        let i64t = m.types.i64();
        let fnty = m.types.func(void, vec![i64t], true);
        let f = m.add_function("log", fnty, Linkage::Internal);
        m.intern_address_types();
        let mut b = FunctionBuilder::new(&mut m, f);
        b.ret(None);
        let text = print_module(&m);
        let m2 = crate::parse::parse_module(&text).expect("reparse");
        assert_eq!(print_module(&m2), text);
        assert!(text.contains("func internal @log"), "{text}");
    }
}
