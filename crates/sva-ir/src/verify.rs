//! Structural and type verification of SVA modules.
//!
//! Every instruction in the SVA instruction set is type-checked (paper
//! §3.1). This verifier enforces:
//!
//! * CFG well-formedness — nonempty blocks, exactly one terminator at the
//!   end of each block, in-range branch targets;
//! * SSA dominance — every use of a value is reached only along paths where
//!   the value has been defined (computed as a forward must-be-defined
//!   dataflow, equivalent to dominance checking for SSA form);
//! * φ discipline — φ-nodes appear only at the head of a block and carry
//!   exactly one incoming value per CFG predecessor;
//! * per-instruction typing — operand/result types for arithmetic,
//!   comparisons, casts, `getelementptr` walks, loads/stores, calls and
//!   returns;
//! * intrinsic hygiene — untrusted bytecode must not contain the
//!   verifier-inserted safety-check operations ([`Intrinsic::verifier_only`]).
//!
//! The metapool (pool-annotation) type checking of paper §5 is layered on
//! top of this in `sva-core`; this module is only about the base IR.

use std::collections::HashSet;

use crate::inst::{BinOp, Callee, CastOp, Inst, InstId, Intrinsic, Operand};
use crate::module::{BlockId, Function, Module, ValueId};
use crate::types::{Type, TypeId};

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the error occurred (or `None` for module-level).
    pub func: Option<String>,
    /// Offending instruction, if known.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.func, self.inst) {
            (Some(fname), Some(i)) => write!(f, "[{}::inst{}] {}", fname, i.0, self.msg),
            (Some(fname), None) => write!(f, "[{}] {}", fname, self.msg),
            _ => write!(f, "[module] {}", self.msg),
        }
    }
}

/// Verification options.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyOptions {
    /// Whether verifier-inserted safety intrinsics (`pchk.*`) are allowed.
    /// Untrusted input bytecode must be verified with `false`; bytecode that
    /// already passed through the SVM verifier is re-checked with `true`.
    pub allow_check_intrinsics: bool,
}

/// Verifies a whole module; returns all errors found (empty = valid).
pub fn verify_module(m: &Module) -> Vec<VerifyError> {
    verify_module_with(m, VerifyOptions::default())
}

/// Verifies a whole module with explicit options.
pub fn verify_module_with(m: &Module, opts: VerifyOptions) -> Vec<VerifyError> {
    let mut errs = Vec::new();
    for f in &m.funcs {
        verify_function(m, f, opts, &mut errs);
    }
    errs
}

struct Ctx<'a> {
    m: &'a Module,
    f: &'a Function,
    opts: VerifyOptions,
    errs: &'a mut Vec<VerifyError>,
}

impl Ctx<'_> {
    fn err(&mut self, inst: Option<InstId>, msg: impl Into<String>) {
        self.errs.push(VerifyError {
            func: Some(self.f.name.clone()),
            inst,
            msg: msg.into(),
        });
    }

    fn operand_ty(&self, op: &Operand) -> Option<TypeId> {
        match *op {
            Operand::Value(v) => {
                if (v.0 as usize) < self.f.value_types.len() {
                    Some(self.f.value_type(v))
                } else {
                    None
                }
            }
            _ => Some(self.f.operand_type(op, self.m)),
        }
    }
}

fn verify_function(m: &Module, f: &Function, opts: VerifyOptions, errs: &mut Vec<VerifyError>) {
    let mut ctx = Ctx { m, f, opts, errs };

    if f.blocks.is_empty() {
        ctx.err(None, "function has no blocks");
        return;
    }

    // --- block shape and branch-target validity ---
    let nblocks = f.blocks.len() as u32;
    for (bi, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            ctx.err(None, format!("block `{}` is empty", b.name));
            continue;
        }
        for (pos, &iid) in b.insts.iter().enumerate() {
            if (iid.0 as usize) >= f.insts.len() {
                ctx.err(
                    None,
                    format!("block `{}` references bad inst {}", b.name, iid.0),
                );
                continue;
            }
            let inst = f.inst(iid);
            let last = pos + 1 == b.insts.len();
            if inst.is_terminator() != last {
                ctx.err(
                    Some(iid),
                    format!(
                        "terminator placement error in `{}` (pos {} of {})",
                        b.name,
                        pos,
                        b.insts.len()
                    ),
                );
            }
            for succ in inst.successors() {
                if succ.0 >= nblocks {
                    ctx.err(
                        Some(iid),
                        format!("branch to out-of-range block {}", succ.0),
                    );
                }
            }
            if let Inst::Phi { .. } = inst {
                // φ must be contiguous at the head of the block.
                let head = b.insts[..pos]
                    .iter()
                    .all(|&i| matches!(f.inst(i), Inst::Phi { .. }));
                if !head {
                    ctx.err(Some(iid), format!("phi not at head of block `{}`", b.name));
                }
            }
        }
        let _ = bi;
    }
    if !ctx.errs.is_empty() {
        // Structural breakage makes the dataflow below unreliable; report
        // the structural errors alone.
        return;
    }

    // --- predecessors ---
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        let term = f.inst(*b.insts.last().unwrap());
        for s in term.successors() {
            preds[s.0 as usize].push(BlockId(bi as u32));
        }
    }

    // --- must-be-defined dataflow for SSA dominance of uses ---
    let nvals = f.num_values();
    let words = nvals.div_ceil(64);
    let full = vec![u64::MAX; words];
    let mut entry_in = vec![0u64; words];
    for &p in &f.params {
        entry_in[p.0 as usize / 64] |= 1 << (p.0 as usize % 64);
    }
    let mut outs: Vec<Vec<u64>> = vec![full.clone(); f.blocks.len()];
    let bit = |set: &[u64], v: ValueId| set[v.0 as usize / 64] >> (v.0 as usize % 64) & 1 == 1;
    let set_bit = |set: &mut [u64], v: ValueId| set[v.0 as usize / 64] |= 1 << (v.0 as usize % 64);

    let mut changed = true;
    while changed {
        changed = false;
        for (bi, b) in f.blocks.iter().enumerate() {
            let mut cur = if bi == 0 {
                entry_in.clone()
            } else if preds[bi].is_empty() {
                // Unreachable block: treat everything as defined (no error).
                full.clone()
            } else {
                let mut acc = full.clone();
                for p in &preds[bi] {
                    for (w, word) in acc.iter_mut().enumerate() {
                        *word &= outs[p.0 as usize][w];
                    }
                }
                acc
            };
            for &iid in &b.insts {
                if let Some(r) = f.result_of(iid) {
                    set_bit(&mut cur, r);
                }
            }
            if cur != outs[bi] {
                outs[bi] = cur;
                changed = true;
            }
        }
    }

    // --- per-instruction checks ---
    for (bi, b) in f.blocks.iter().enumerate() {
        // Recompute the running defined-set for use checking.
        let mut cur = if bi == 0 {
            entry_in.clone()
        } else if preds[bi].is_empty() {
            full.clone()
        } else {
            let mut acc = full.clone();
            for p in &preds[bi] {
                for (w, word) in acc.iter_mut().enumerate() {
                    *word &= outs[p.0 as usize][w];
                }
            }
            acc
        };
        for &iid in &b.insts {
            let inst = f.inst(iid).clone();

            // Use-before-def (φ incoming values are checked against the
            // incoming predecessor's out-set instead).
            if !matches!(inst, Inst::Phi { .. }) {
                inst.for_each_operand(|op| {
                    if let Operand::Value(v) = op {
                        if (v.0 as usize) >= nvals {
                            ctx.err(Some(iid), format!("operand references bad value %{}", v.0));
                        } else if !bit(&cur, *v) {
                            ctx.err(
                                Some(iid),
                                format!("use of %{} not dominated by its definition", v.0),
                            );
                        }
                    }
                });
            }

            check_inst_types(&mut ctx, iid, &inst);

            match &inst {
                Inst::Phi { incomings, ty } => {
                    let mut seen: HashSet<u32> = HashSet::new();
                    let expected: HashSet<u32> = preds[bi].iter().map(|p| p.0).collect();
                    for (pb, val) in incomings {
                        if !seen.insert(pb.0) {
                            ctx.err(
                                Some(iid),
                                format!("duplicate phi predecessor block {}", pb.0),
                            );
                        }
                        if !expected.contains(&pb.0) {
                            ctx.err(
                                Some(iid),
                                format!("phi names non-predecessor block {}", pb.0),
                            );
                        }
                        if let Operand::Value(v) = val {
                            if (v.0 as usize) < nvals
                                && (pb.0 as usize) < outs.len()
                                && !bit(&outs[pb.0 as usize], *v)
                            {
                                ctx.err(
                                    Some(iid),
                                    format!(
                                        "phi incoming %{} not defined on edge from block {}",
                                        v.0, pb.0
                                    ),
                                );
                            }
                        }
                        if let Some(t) = ctx.operand_ty(val) {
                            if t != *ty {
                                ctx.err(Some(iid), "phi incoming type mismatch");
                            }
                        }
                    }
                    for missing in expected.iter().filter(|p| !seen.contains(p)) {
                        ctx.err(
                            Some(iid),
                            format!("phi missing predecessor block {missing}"),
                        );
                    }
                }
                Inst::Call {
                    callee: Callee::Intrinsic(i),
                    ..
                } if i.verifier_only() && !ctx.opts.allow_check_intrinsics => {
                    ctx.err(
                        Some(iid),
                        format!(
                            "untrusted bytecode contains verifier-only intrinsic `{}`",
                            i.name()
                        ),
                    );
                }
                _ => {}
            }

            if let Some(r) = f.result_of(iid) {
                set_bit(&mut cur, r);
            }
        }
    }
}

fn check_inst_types(ctx: &mut Ctx<'_>, iid: InstId, inst: &Inst) {
    let m = ctx.m;
    let f = ctx.f;
    let result_ty = f.result_of(iid).map(|v| f.value_type(v));
    match inst {
        Inst::Bin { op, lhs, rhs } => {
            let (lt, rt) = (ctx.operand_ty(lhs), ctx.operand_ty(rhs));
            if let (Some(lt), Some(rt)) = (lt, rt) {
                if lt != rt {
                    ctx.err(Some(iid), "binary operand types differ");
                } else if op.is_float() {
                    if !matches!(m.types.get(lt), Type::F64) {
                        ctx.err(Some(iid), "float op on non-float operands");
                    }
                } else if !m.types.is_int(lt) {
                    ctx.err(Some(iid), "integer op on non-integer operands");
                }
                if result_ty != Some(lt) {
                    ctx.err(Some(iid), "binary result type mismatch");
                }
                if matches!(op, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem) {
                    if let Operand::ConstInt(0, _) = rhs {
                        ctx.err(Some(iid), "constant division by zero");
                    }
                }
            }
        }
        Inst::ICmp { lhs, rhs, .. } => {
            let (lt, rt) = (ctx.operand_ty(lhs), ctx.operand_ty(rhs));
            if let (Some(lt), Some(rt)) = (lt, rt) {
                if lt != rt {
                    ctx.err(Some(iid), "icmp operand types differ");
                } else if !m.types.is_int(lt) && !m.types.is_ptr(lt) {
                    ctx.err(Some(iid), "icmp on non-integer, non-pointer operands");
                }
            }
            if let Some(rt) = result_ty {
                if !matches!(m.types.get(rt), Type::Int(1)) {
                    ctx.err(Some(iid), "icmp result must be i1");
                }
            }
        }
        Inst::Select { cond, tval, fval } => {
            if let Some(ct) = ctx.operand_ty(cond) {
                if !matches!(m.types.get(ct), Type::Int(1)) {
                    ctx.err(Some(iid), "select condition must be i1");
                }
            }
            let (tt, ft) = (ctx.operand_ty(tval), ctx.operand_ty(fval));
            if let (Some(tt), Some(ft)) = (tt, ft) {
                if tt != ft {
                    ctx.err(Some(iid), "select arm types differ");
                }
                if result_ty != Some(tt) {
                    ctx.err(Some(iid), "select result type mismatch");
                }
            }
        }
        Inst::Cast { op, val, to } => {
            let from = match ctx.operand_ty(val) {
                Some(t) => t,
                None => return,
            };
            let (fk, tk) = (m.types.get(from).clone(), m.types.get(*to).clone());
            let ok = match op {
                CastOp::Bitcast => matches!(fk, Type::Ptr(_)) && matches!(tk, Type::Ptr(_)),
                CastOp::Trunc => int_widths(&fk, &tk).is_some_and(|(a, b)| a > b),
                CastOp::ZExt | CastOp::SExt => int_widths(&fk, &tk).is_some_and(|(a, b)| a < b),
                CastOp::PtrToInt => matches!(fk, Type::Ptr(_)) && matches!(tk, Type::Int(_)),
                CastOp::IntToPtr => matches!(fk, Type::Int(_)) && matches!(tk, Type::Ptr(_)),
                CastOp::SiToFp => matches!(fk, Type::Int(_)) && matches!(tk, Type::F64),
                CastOp::FpToSi => matches!(fk, Type::F64) && matches!(tk, Type::Int(_)),
            };
            if !ok {
                ctx.err(
                    Some(iid),
                    format!(
                        "invalid {} from {} to {}",
                        op.mnemonic(),
                        m.types.display(from),
                        m.types.display(*to)
                    ),
                );
            }
            if result_ty != Some(*to) {
                ctx.err(Some(iid), "cast result type mismatch");
            }
        }
        Inst::Gep { base, indices } => {
            let bt = match ctx.operand_ty(base) {
                Some(t) => t,
                None => return,
            };
            if !m.types.is_ptr(bt) {
                ctx.err(Some(iid), "gep base is not a pointer");
                return;
            }
            if indices.is_empty() {
                ctx.err(Some(iid), "gep with no indices");
                return;
            }
            let mut cur = m.types.pointee(bt);
            for (n, idx) in indices.iter().enumerate() {
                if let Some(it) = ctx.operand_ty(idx) {
                    if !m.types.is_int(it) {
                        ctx.err(Some(iid), "gep index is not an integer");
                    }
                }
                if n == 0 {
                    continue;
                }
                match m.types.get(cur).clone() {
                    Type::Array(e, _) => cur = e,
                    Type::Struct(_) => match idx {
                        Operand::ConstInt(v, _) => {
                            let fields = m.types.struct_fields(cur);
                            if (*v as usize) < fields.len() {
                                cur = fields[*v as usize];
                            } else {
                                ctx.err(Some(iid), "gep struct field index out of range");
                                return;
                            }
                        }
                        _ => {
                            ctx.err(Some(iid), "gep struct index must be constant");
                            return;
                        }
                    },
                    _ => {
                        ctx.err(Some(iid), "gep walks into non-aggregate type");
                        return;
                    }
                }
            }
            if let Some(rt) = result_ty {
                if !m.types.is_ptr(rt) || m.types.pointee(rt) != cur {
                    ctx.err(Some(iid), "gep result type mismatch");
                }
            }
        }
        Inst::Load { ptr } => {
            if let Some(pt) = ctx.operand_ty(ptr) {
                if !m.types.is_ptr(pt) {
                    ctx.err(Some(iid), "load through non-pointer");
                } else if result_ty != Some(m.types.pointee(pt)) {
                    ctx.err(Some(iid), "load result type mismatch");
                }
            }
        }
        Inst::Store { val, ptr } => {
            if let (Some(vt), Some(pt)) = (ctx.operand_ty(val), ctx.operand_ty(ptr)) {
                if !m.types.is_ptr(pt) {
                    ctx.err(Some(iid), "store through non-pointer");
                } else if m.types.pointee(pt) != vt {
                    ctx.err(Some(iid), "store value/pointee type mismatch");
                }
            }
        }
        Inst::Alloca { ty, count } => {
            if let Some(ct) = ctx.operand_ty(count) {
                if !m.types.is_int(ct) {
                    ctx.err(Some(iid), "alloca count is not an integer");
                }
            }
            if let Some(rt) = result_ty {
                if !m.types.is_ptr(rt) || m.types.pointee(rt) != *ty {
                    ctx.err(Some(iid), "alloca result type mismatch");
                }
            }
        }
        Inst::Call { callee, args } => {
            let fty = match callee {
                Callee::Direct(fid) => Some(m.func(*fid).ty),
                Callee::External(e) => Some(m.externs[e.0 as usize].ty),
                Callee::Indirect(op) => match ctx.operand_ty(op) {
                    Some(pt) if m.types.is_ptr(pt) => Some(m.types.pointee(pt)),
                    Some(_) => {
                        ctx.err(Some(iid), "indirect call through non-pointer");
                        None
                    }
                    None => None,
                },
                Callee::Intrinsic(_) => None,
            };
            if let Some(fty) = fty {
                match m.types.get(fty).clone() {
                    Type::Func {
                        ret,
                        params,
                        vararg,
                    } => {
                        if args.len() < params.len() || (!vararg && args.len() != params.len()) {
                            ctx.err(
                                Some(iid),
                                format!(
                                    "call arity mismatch: {} args for {} params",
                                    args.len(),
                                    params.len()
                                ),
                            );
                        }
                        for (a, p) in args.iter().zip(params.iter()) {
                            if let Some(at) = ctx.operand_ty(a) {
                                if at != *p {
                                    ctx.err(Some(iid), "call argument type mismatch");
                                }
                            }
                        }
                        let void = matches!(m.types.get(ret), Type::Void);
                        match (void, result_ty) {
                            (true, Some(_)) => ctx.err(Some(iid), "void call has a result"),
                            (false, Some(rt)) if rt != ret => {
                                ctx.err(Some(iid), "call result type mismatch")
                            }
                            _ => {}
                        }
                    }
                    _ => ctx.err(Some(iid), "call through non-function type"),
                }
            } else if let Callee::Intrinsic(i) = callee {
                check_intrinsic_arity(ctx, iid, *i, args.len());
            }
        }
        Inst::AtomicRmw { ptr, val, .. } => {
            if let (Some(pt), Some(vt)) = (ctx.operand_ty(ptr), ctx.operand_ty(val)) {
                if !m.types.is_ptr(pt) || m.types.pointee(pt) != vt {
                    ctx.err(Some(iid), "atomicrmw pointer/value type mismatch");
                } else if !m.types.is_int(vt) {
                    ctx.err(Some(iid), "atomicrmw on non-integer");
                }
            }
        }
        Inst::CmpXchg { ptr, expected, new } => {
            if let (Some(pt), Some(et), Some(nt)) = (
                ctx.operand_ty(ptr),
                ctx.operand_ty(expected),
                ctx.operand_ty(new),
            ) {
                if !m.types.is_ptr(pt) || m.types.pointee(pt) != et || et != nt {
                    ctx.err(Some(iid), "cmpxchg type mismatch");
                }
            }
        }
        Inst::CondBr { cond, .. } => {
            if let Some(ct) = ctx.operand_ty(cond) {
                if !matches!(m.types.get(ct), Type::Int(1)) {
                    ctx.err(Some(iid), "condbr condition must be i1");
                }
            }
        }
        Inst::Switch { val, .. } => {
            if let Some(vt) = ctx.operand_ty(val) {
                if !m.types.is_int(vt) {
                    ctx.err(Some(iid), "switch on non-integer");
                }
            }
        }
        Inst::Ret { val } => {
            let ret = match m.types.get(f.ty) {
                Type::Func { ret, .. } => *ret,
                _ => return,
            };
            let void = matches!(m.types.get(ret), Type::Void);
            match (void, val) {
                (true, Some(_)) => ctx.err(Some(iid), "ret with value in void function"),
                (false, None) => ctx.err(Some(iid), "ret without value in non-void function"),
                (false, Some(v)) => {
                    if let Some(vt) = ctx.operand_ty(v) {
                        if vt != ret {
                            ctx.err(Some(iid), "ret value type mismatch");
                        }
                    }
                }
                _ => {}
            }
        }
        Inst::Phi { .. } | Inst::Fence | Inst::Br { .. } | Inst::Unreachable => {}
    }
}

fn int_widths(a: &Type, b: &Type) -> Option<(u8, u8)> {
    match (a, b) {
        (Type::Int(x), Type::Int(y)) => Some((*x, *y)),
        _ => None,
    }
}

fn check_intrinsic_arity(ctx: &mut Ctx<'_>, iid: InstId, i: Intrinsic, nargs: usize) {
    use Intrinsic::*;
    let min = match i {
        SaveInteger | LoadInteger | LoadFp | IcontextCommit | WasPrivileged | Iret | Print
        | Abort | PseudoAlloc => 1,
        SaveFp | IcontextSave | IcontextLoad | RegisterSyscall | RegisterInterrupt | IoWrite
        | MmuUnmap | MmuCopyPage | PchkDropObj | LsCheck | IcontextNew => 2,
        IpushFunction | IcontextSetEntry | MmuMap | MmuProtect | PchkRegObj | BoundsCheck
        | BoundsCheckRange | MemCpy | MemMove | MemSet => 3,
        GetBounds => 4,
        FuncCheck => 2,
        IoRead | Syscall | MmuLoadSpace | MmuFreeSpace | RecoverUnwind | RecoverRepair => 1,
        RecoverProbation => 2,
        // `RecoverRelease` has two forms: with a pool argument it lifts
        // that pool's quarantine (legacy boot handler), with none it pops
        // the innermost recovery domain (DESIGN.md §4.5).
        CpuId | GetTimer | IcontextGet | MmuNewSpace | RecoverRegister | RecoverRelease => 0,
    };
    if nargs < min {
        ctx.err(
            Some(iid),
            format!(
                "intrinsic `{}` needs at least {} args, got {}",
                i.name(),
                min,
                nargs
            ),
        );
    }
    // PseudoAlloc actually takes (start, end).
    if matches!(i, PseudoAlloc) && nargs == 1 {
        ctx.err(Some(iid), "pseudo_alloc needs (start, end)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::FunctionBuilder;
    use crate::module::Linkage;
    use crate::parse::parse_module;

    fn verify_src(src: &str) -> Vec<VerifyError> {
        let m = parse_module(src).unwrap();
        verify_module(&m)
    }

    #[test]
    fn valid_module_passes() {
        let errs = verify_src(
            r#"
module "ok"
func public @max(%a: i32, %b: i32) : i32 {
entry:
  %c:i1 = icmp sgt %a, %b
  condbr %c, t, e
t:
  ret %a
e:
  ret %b
}
"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn loop_with_phi_passes() {
        let errs = verify_src(
            r#"
module "ok"
func public @count(%n: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %next]
  %next:i64 = add %i, 1:i64
  %done:i1 = icmp uge %next, %n
  condbr %done, out, loop
out:
  ret %next
}
"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn detects_type_mismatch_in_bin() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%a: i32, %b: i64) : i32 {
entry:
  %c:i32 = add %a, %b
  ret %c
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("operand types differ")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_missing_terminator() {
        let mut m = Module::new("bad");
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![], false);
        let f = m.add_function("f", fnty, Linkage::Public);
        m.intern_address_types();
        {
            let mut b = FunctionBuilder::new(&mut m, f);
            let x = b.c32(1);
            let y = b.c32(2);
            let _ = b.add(x, y); // no terminator emitted
        }
        let errs = verify_module(&m);
        assert!(
            errs.iter().any(|e| e.msg.contains("terminator placement")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_use_before_def_across_blocks() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%p: i1) : i64 {
entry:
  condbr %p, a, b
a:
  %x:i64 = add 1:i64, 2:i64
  br join
b:
  br join
join:
  ret %x
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("not dominated")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_phi_missing_predecessor() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%p: i1) : i64 {
entry:
  condbr %p, a, b
a:
  br join
b:
  br join
join:
  %x:i64 = phi i64 [a: 1:i64]
  ret %x
}
"#,
        );
        assert!(
            errs.iter()
                .any(|e| e.msg.contains("phi missing predecessor")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_bad_cast() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%a: i32) : i64 {
entry:
  %b:i64 = cast trunc %a to i64
  ret %b
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("invalid trunc")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_store_type_mismatch() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%p: i64*) : void {
entry:
  store 7:i32, %p
  ret
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("store value/pointee")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_verifier_only_intrinsics_in_untrusted_code() {
        let errs = verify_src(
            r#"
module "bad"
func public @f(%p: i8*) : void {
entry:
  call $pchk.lscheck(0:i64, %p)
  ret
}
"#,
        );
        assert!(
            errs.iter()
                .any(|e| e.msg.contains("verifier-only intrinsic")),
            "{errs:?}"
        );
        // ... but the same module passes when checks are allowed.
        let m = parse_module(
            r#"
module "ok"
func public @f(%p: i8*) : void {
entry:
  call $pchk.lscheck(0:i64, %p)
  ret
}
"#,
        )
        .unwrap();
        let errs2 = verify_module_with(
            &m,
            VerifyOptions {
                allow_check_intrinsics: true,
            },
        );
        assert!(errs2.is_empty(), "{errs2:?}");
    }

    #[test]
    fn detects_call_arity_mismatch() {
        let errs = verify_src(
            r#"
module "bad"
func public @callee(%a: i32) : i32 {
entry:
  ret %a
}
func public @caller() : i32 {
entry:
  %r:i32 = call @callee()
  ret %r
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("arity mismatch")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_gep_struct_index_out_of_range() {
        let errs = verify_src(
            r#"
module "bad"
struct %s = { i32, i64 }
func public @f(%p: %s*) : void {
entry:
  %q:i64* = gep %p [0:i32, 5:i32]
  ret
}
"#,
        );
        assert!(
            errs.iter()
                .any(|e| e.msg.contains("field index out of range")),
            "{errs:?}"
        );
    }

    #[test]
    fn detects_ret_mismatch() {
        let errs = verify_src(
            r#"
module "bad"
func public @f() : i64 {
entry:
  ret
}
"#,
        );
        assert!(
            errs.iter().any(|e| e.msg.contains("ret without value")),
            "{errs:?}"
        );
    }
}
