//! IR containers: [`Module`], [`Function`], [`Block`], globals and the
//! kernel allocator declarations.
//!
//! An SVA object file ("Module", paper §3.1) holds functions, global
//! variables, type and external-function declarations, and a symbol table.
//! Modules additionally carry the *allocator declarations* the kernel makes
//! during porting (paper §4.3–§4.4) and, after the safety-checking compiler
//! has run, the metapool *pool annotations* — the encoded "proof" checked by
//! the bytecode verifier (paper §5).

use std::collections::HashMap;

use crate::inst::{Inst, InstId, Operand};
use crate::types::{Type, TypeId, TypeTable};

/// Handle of an SSA value within one [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ValueId(pub u32);

/// Handle of a basic block within one [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

/// Handle of a function defined in a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FuncId(pub u32);

/// Handle of a global variable in a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GlobalId(pub u32);

/// Handle of an external (declared but not defined) function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ExternId(pub u32);

/// Linkage of a function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Linkage {
    /// Visible to other modules and callable from outside (an "entry point").
    Public,
    /// Only reachable from within this module.
    Internal,
}

/// What defined an SSA value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// A basic block: a straight-line instruction list ending in a terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Label, unique within the function.
    pub name: String,
    /// Instruction list in execution order.
    pub insts: Vec<InstId>,
}

/// A function definition.
///
/// Values, blocks and instructions live in dense per-function arenas indexed
/// by [`ValueId`], [`BlockId`] and [`InstId`].
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name, unique within the module.
    pub name: String,
    /// Function type (must be [`Type::Func`]).
    pub ty: TypeId,
    /// Parameter values, in order.
    pub params: Vec<ValueId>,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Instruction arena.
    pub insts: Vec<Inst>,
    /// Result value of each instruction (parallel to `insts`).
    pub inst_results: Vec<Option<ValueId>>,
    /// Type of each value (indexed by [`ValueId`]).
    pub value_types: Vec<TypeId>,
    /// Definition site of each value (indexed by [`ValueId`]).
    pub value_defs: Vec<ValueDef>,
    /// Optional names for values (printing only).
    pub value_names: Vec<Option<String>>,
    /// Linkage.
    pub linkage: Linkage,
    /// Call sites carrying the programmer's "all callees match this call
    /// signature" assertion (paper §4.8) — candidates for devirtualization.
    pub sig_asserted_calls: Vec<InstId>,
}

impl Function {
    /// Creates an empty function of type `ty` (parameters are added from the
    /// function type by [`crate::build::FunctionBuilder`] or the parser).
    pub fn new(name: &str, ty: TypeId, linkage: Linkage) -> Self {
        Function {
            name: name.to_string(),
            ty,
            params: Vec::new(),
            blocks: Vec::new(),
            insts: Vec::new(),
            inst_results: Vec::new(),
            value_types: Vec::new(),
            value_defs: Vec::new(),
            value_names: Vec::new(),
            linkage,
            sig_asserted_calls: Vec::new(),
        }
    }

    /// Allocates a new SSA value of type `ty`.
    pub fn new_value(&mut self, ty: TypeId, def: ValueDef) -> ValueId {
        let id = ValueId(self.value_types.len() as u32);
        self.value_types.push(ty);
        self.value_defs.push(def);
        self.value_names.push(None);
        id
    }

    /// Appends an instruction to `block`, assigning a result value of type
    /// `result_ty` when `result_ty` is not `None`.
    pub fn push_inst(
        &mut self,
        block: BlockId,
        inst: Inst,
        result_ty: Option<TypeId>,
    ) -> (InstId, Option<ValueId>) {
        let iid = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        let result = result_ty.map(|ty| self.new_value(ty, ValueDef::Inst(iid)));
        self.inst_results.push(result);
        self.blocks[block.0 as usize].insts.push(iid);
        (iid, result)
    }

    /// Adds an instruction to the arena *without* placing it in any block
    /// (instrumentation passes splice it into block lists themselves).
    pub fn add_inst_detached(
        &mut self,
        inst: Inst,
        result_ty: Option<TypeId>,
    ) -> (InstId, Option<ValueId>) {
        let iid = InstId(self.insts.len() as u32);
        self.insts.push(inst);
        let result = result_ty.map(|ty| self.new_value(ty, ValueDef::Inst(iid)));
        self.inst_results.push(result);
        (iid, result)
    }

    /// Adds an empty basic block.
    pub fn add_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.to_string(),
            insts: Vec::new(),
        });
        id
    }

    /// Returns the instruction behind `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Returns the result value of an instruction, if any.
    pub fn result_of(&self, id: InstId) -> Option<ValueId> {
        self.inst_results[id.0 as usize]
    }

    /// Type of a value.
    pub fn value_type(&self, v: ValueId) -> TypeId {
        self.value_types[v.0 as usize]
    }

    /// Number of SSA values.
    pub fn num_values(&self) -> usize {
        self.value_types.len()
    }

    /// The type of an operand, given the module type table (constants carry
    /// their own type; module-level operands are pointers to their entity).
    pub fn operand_type(&self, op: &Operand, module: &Module) -> TypeId {
        match *op {
            Operand::Value(v) => self.value_type(v),
            Operand::ConstInt(_, ty) | Operand::Null(ty) | Operand::Undef(ty) => ty,
            Operand::ConstF64(_) => module
                .types
                .intern_lookup(&Type::F64)
                .expect("f64 interned"),
            Operand::Global(g) => module.global_ptr_type(g),
            Operand::Func(f) => module.func_ptr_type(f),
            Operand::Extern(e) => module.extern_ptr_type(e),
        }
    }

    /// Iterates over `(BlockId, InstId)` pairs in layout order.
    pub fn inst_order(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().map(move |&i| (BlockId(bi as u32), i)))
    }
}

/// A relocation inside a global initializer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelocTarget {
    /// Address of a defined function.
    Func(String),
    /// Address of an external function.
    Extern(String),
    /// Address of another global.
    Global(String),
}

/// Initializer of a global variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// Raw bytes (must match the type's size).
    Bytes(Vec<u8>),
    /// Raw bytes plus pointer-sized relocations at given byte offsets.
    /// Used for function-pointer tables and linked global data.
    Relocated {
        /// Base bytes (length = type size).
        bytes: Vec<u8>,
        /// `(offset, target)` pairs; each patches a pointer-sized slot.
        relocs: Vec<(u64, RelocTarget)>,
    },
}

/// A global variable definition.
#[derive(Clone, Debug)]
pub struct Global {
    /// Symbol name, unique within the module.
    pub name: String,
    /// The *value* type of the global (its address has type `ty*`).
    pub ty: TypeId,
    /// Initializer.
    pub init: GlobalInit,
    /// Whether stores to the global are illegal.
    pub is_const: bool,
}

/// An external function declaration (unknown code, paper §4.5: partitions
/// reaching externals become "incomplete").
#[derive(Clone, Debug)]
pub struct ExternDecl {
    /// Symbol name.
    pub name: String,
    /// Function type.
    pub ty: TypeId,
}

/// Whether an allocator is a pool allocator or an ordinary one (paper §4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// A pool allocator (`kmem_cache_alloc`-style): the first argument
    /// designates a pool descriptor created by `pool_create`.
    Pool,
    /// An ordinary allocator (`kmalloc`-style): one logical pool for all of
    /// its memory.
    Ordinary,
}

/// How to compute the byte size of an allocation from the call arguments
/// (paper §4.4: "each allocator must provide a function that returns the
/// size of an allocation given the arguments").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SizeSpec {
    /// The size is the `n`-th argument (0-based) of the allocation call.
    Arg(usize),
    /// The size is the pool descriptor's object size (pool allocators).
    PoolObjectSize,
    /// A fixed size in bytes.
    Const(u64),
}

/// A kernel allocator declaration made during porting (paper §4.3–§4.4, §6.2).
#[derive(Clone, Debug)]
pub struct AllocatorDecl {
    /// Human-readable allocator name (`"kmem_cache"`, `"kmalloc"`, ...).
    pub name: String,
    /// Pool or ordinary.
    pub kind: AllocKind,
    /// Name of the allocation function.
    pub alloc_fn: String,
    /// Name of the deallocation function, if any.
    pub dealloc_fn: Option<String>,
    /// Pool-creation function (pool allocators only).
    pub pool_create_fn: Option<String>,
    /// Pool-destruction function (pool allocators only).
    pub pool_destroy_fn: Option<String>,
    /// Size of an allocation as a function of the call arguments.
    pub size: SizeSpec,
    /// For [`SizeSpec::PoolObjectSize`]: the kernel function that returns
    /// the object size given the pool descriptor (paper §4.4: "each
    /// allocator must provide a function that returns the size of an
    /// allocation given the arguments").
    pub size_fn: Option<String>,
    /// Which argument of `alloc_fn` is the pool descriptor (pool allocators).
    pub pool_arg: Option<usize>,
    /// For ordinary allocators internally implemented over a pool allocator
    /// (e.g. `kmalloc` over `kmem_cache_alloc`, paper §6.2): the name of the
    /// underlying allocator. Exposing this avoids merging all the ordinary
    /// allocator's metapools into one.
    pub backed_by: Option<String>,
}

/// Descriptor of one metapool in the encoded annotations.
#[derive(Clone, Debug, PartialEq)]
pub struct MetaPoolDesc {
    /// Symbolic name (`"MP0"`, `"MP_task"`, ...).
    pub name: String,
    /// Whether the partition is type-homogeneous (paper §4.1 T2).
    pub type_homogeneous: bool,
    /// Whether the partition is complete (not exposed to unknown code).
    pub complete: bool,
    /// Inferred element type for TH pools.
    pub elem_type: Option<TypeId>,
    /// The metapools that pointers stored *inside* this pool's objects
    /// point to, one entry per field cell (field-sensitive partitions:
    /// `(cell, target pool)`).
    pub points_to: Vec<(u32, u32)>,
    /// Field sensitivity lost: every access routes through cell 0.
    pub fields_collapsed: bool,
    /// Whether the userspace pseudo-object must be registered in this pool
    /// at boot (paper §4.6).
    pub userspace: bool,
}

/// The metapool annotations emitted by the safety-checking compiler and
/// validated by the bytecode verifier (paper §5: the "encoded proof").
#[derive(Clone, Debug, Default)]
pub struct PoolAnnotations {
    /// All metapools; a metapool id is an index into this vector.
    pub metapools: Vec<MetaPoolDesc>,
    /// Per-function, per-value metapool assignment for pointer-typed values.
    /// Indexed `[func.0][value.0]`.
    pub value_pools: Vec<Vec<Option<u32>>>,
    /// Field cell each pointer value points into (parallel to
    /// `value_pools`; empty rows mean all-zero).
    pub value_cells: Vec<Vec<u32>>,
    /// Metapool of each global's storage.
    pub global_pools: Vec<Option<u32>>,
    /// Indirect-call target sets, referenced by `funccheck` set ids.
    pub func_sets: Vec<Vec<String>>,
    /// Call-site → target-set binding: `(func, inst, set)` triples.
    pub call_sets: Vec<(u32, u32, u32)>,
}

impl PoolAnnotations {
    /// The annotated metapool of a value, if any.
    pub fn value_pool(&self, f: FuncId, v: ValueId) -> Option<u32> {
        self.value_pools
            .get(f.0 as usize)
            .and_then(|vs| vs.get(v.0 as usize).copied().flatten())
    }

    /// The annotated field cell of a value (0 when unrecorded).
    pub fn value_cell(&self, f: FuncId, v: ValueId) -> u32 {
        self.value_cells
            .get(f.0 as usize)
            .and_then(|vs| vs.get(v.0 as usize).copied())
            .unwrap_or(0)
    }

    /// The points-to edge of `(pool, cell)` (cell 0 when collapsed).
    pub fn edge(&self, pool: u32, cell: u32) -> Option<u32> {
        let d = self.metapools.get(pool as usize)?;
        let cell = if d.fields_collapsed { 0 } else { cell };
        d.points_to
            .iter()
            .find(|(c, _)| *c == cell)
            .map(|(_, t)| *t)
    }
}

/// An SVA object file: functions, globals, type and external declarations,
/// a symbol table, allocator declarations and (optionally) pool annotations.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The interned type table.
    pub types: TypeTable,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Defined functions.
    pub funcs: Vec<Function>,
    /// External declarations.
    pub externs: Vec<ExternDecl>,
    /// Kernel allocator declarations.
    pub allocators: Vec<AllocatorDecl>,
    /// The kernel "entry" function where global registrations go
    /// (paper §4.3), if designated.
    pub entry: Option<FuncId>,
    /// Metapool annotations (present after the safety-checking compiler).
    pub pool_annotations: Option<PoolAnnotations>,
    func_index: HashMap<String, FuncId>,
    global_index: HashMap<String, GlobalId>,
    extern_index: HashMap<String, ExternId>,
}

impl TypeTable {
    /// Looks up an already-interned type without mutating the table.
    pub fn intern_lookup(&self, ty: &Type) -> Option<TypeId> {
        // TypeTable keeps `intern` private; expose a read-only probe here so
        // Module helpers can resolve primitive types without `&mut`.
        self.probe(ty)
    }
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Adds a function; its parameter values are created from the function
    /// type. Returns the new id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken or `ty` is not a function type.
    pub fn add_function(&mut self, name: &str, ty: TypeId, linkage: Linkage) -> FuncId {
        assert!(
            !self.func_index.contains_key(name) && !self.extern_index.contains_key(name),
            "duplicate function `{name}`"
        );
        let params = match self.types.get(ty) {
            Type::Func { params, .. } => params.clone(),
            _ => panic!("add_function with non-function type"),
        };
        let mut f = Function::new(name, ty, linkage);
        for (i, pty) in params.iter().enumerate() {
            let v = f.new_value(*pty, ValueDef::Param(i as u32));
            f.params.push(v);
        }
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        self.func_index.insert(name.to_string(), id);
        id
    }

    /// Declares an external function.
    pub fn add_extern(&mut self, name: &str, ty: TypeId) -> ExternId {
        if let Some(&e) = self.extern_index.get(name) {
            return e;
        }
        let id = ExternId(self.externs.len() as u32);
        self.externs.push(ExternDecl {
            name: name.to_string(),
            ty,
        });
        self.extern_index.insert(name.to_string(), id);
        id
    }

    /// Adds a global variable.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn add_global(
        &mut self,
        name: &str,
        ty: TypeId,
        init: GlobalInit,
        is_const: bool,
    ) -> GlobalId {
        assert!(
            !self.global_index.contains_key(name),
            "duplicate global `{name}`"
        );
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_string(),
            ty,
            init,
            is_const,
        });
        self.global_index.insert(name.to_string(), id);
        id
    }

    /// Registers a kernel allocator declaration.
    pub fn declare_allocator(&mut self, decl: AllocatorDecl) {
        self.allocators.push(decl);
    }

    /// Finds a defined function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_index.get(name).copied()
    }

    /// Finds a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_index.get(name).copied()
    }

    /// Finds an external declaration by name.
    pub fn extern_by_name(&self, name: &str) -> Option<ExternId> {
        self.extern_index.get(name).copied()
    }

    /// The allocator declaration whose alloc function is `name`, if any.
    pub fn allocator_for_alloc_fn(&self, name: &str) -> Option<&AllocatorDecl> {
        self.allocators.iter().find(|a| a.alloc_fn == name)
    }

    /// The allocator declaration whose dealloc function is `name`, if any.
    pub fn allocator_for_dealloc_fn(&self, name: &str) -> Option<&AllocatorDecl> {
        self.allocators
            .iter()
            .find(|a| a.dealloc_fn.as_deref() == Some(name))
    }

    /// Shorthand for `&self.funcs[id.0]`.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Shorthand for `&self.globals[id.0]`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// The pointer type of a global's address. Requires `Ptr(g.ty)` to have
    /// been interned; module construction does this eagerly.
    pub fn global_ptr_type(&self, g: GlobalId) -> TypeId {
        let ty = self.globals[g.0 as usize].ty;
        self.types
            .intern_lookup(&Type::Ptr(ty))
            .expect("global pointer type interned")
    }

    /// The pointer type of a defined function's address.
    pub fn func_ptr_type(&self, f: FuncId) -> TypeId {
        let ty = self.funcs[f.0 as usize].ty;
        self.types
            .intern_lookup(&Type::Ptr(ty))
            .expect("function pointer type interned")
    }

    /// The pointer type of an external function's address.
    pub fn extern_ptr_type(&self, e: ExternId) -> TypeId {
        let ty = self.externs[e.0 as usize].ty;
        self.types
            .intern_lookup(&Type::Ptr(ty))
            .expect("extern pointer type interned")
    }

    /// Ensures pointer types exist for every function/global/extern address
    /// (called by builders after module construction).
    pub fn intern_address_types(&mut self) {
        let mut tys: Vec<TypeId> = Vec::new();
        tys.extend(self.funcs.iter().map(|f| f.ty));
        tys.extend(self.globals.iter().map(|g| g.ty));
        tys.extend(self.externs.iter().map(|e| e.ty));
        for ty in tys {
            self.types.ptr(ty);
        }
    }

    /// Pushes a fully-constructed function (bytecode decoding only) and
    /// indexes its name.
    pub fn push_decoded_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.func_index.insert(f.name.clone(), id);
        self.funcs.push(f);
        id
    }

    /// Renames a function, keeping the index consistent (used by cloning).
    pub fn rename_function(&mut self, id: FuncId, new_name: &str) {
        assert!(
            !self.func_index.contains_key(new_name),
            "duplicate function `{new_name}`"
        );
        let old = std::mem::replace(&mut self.funcs[id.0 as usize].name, new_name.to_string());
        self.func_index.remove(&old);
        self.func_index.insert(new_name.to_string(), id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Callee, Intrinsic};

    fn mk_module() -> (Module, FuncId) {
        let mut m = Module::new("t");
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![i32, i32], false);
        let f = m.add_function("add2", fnty, Linkage::Public);
        m.intern_address_types();
        (m, f)
    }

    #[test]
    fn function_params_get_values() {
        let (m, f) = mk_module();
        let func = m.func(f);
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.value_defs[0], ValueDef::Param(0));
        assert_eq!(func.value_defs[1], ValueDef::Param(1));
    }

    #[test]
    fn push_inst_assigns_results() {
        let (mut m, f) = mk_module();
        let i32 = m.types.i32();
        let func = m.func_mut(f);
        let entry = func.add_block("entry");
        let (iid, res) = func.push_inst(
            entry,
            Inst::Bin {
                op: crate::inst::BinOp::Add,
                lhs: Operand::Value(func.params[0]),
                rhs: Operand::Value(func.params[1]),
            },
            Some(i32),
        );
        let res = res.unwrap();
        assert_eq!(func.result_of(iid), Some(res));
        assert_eq!(func.value_type(res), i32);
        assert_eq!(func.value_defs[res.0 as usize], ValueDef::Inst(iid));
        let (_, none) = func.push_inst(
            entry,
            Inst::Ret {
                val: Some(Operand::Value(res)),
            },
            None,
        );
        assert!(none.is_none());
        assert_eq!(func.blocks[0].insts.len(), 2);
    }

    #[test]
    fn name_lookup() {
        let (mut m, f) = mk_module();
        assert_eq!(m.func_by_name("add2"), Some(f));
        assert_eq!(m.func_by_name("nope"), None);
        let i8 = m.types.i8();
        let bp = m.types.ptr(i8);
        let ety = m.types.func(bp, vec![], false);
        let e = m.add_extern("mystery", ety);
        assert_eq!(m.extern_by_name("mystery"), Some(e));
        // Re-declaring returns the same id.
        assert_eq!(m.add_extern("mystery", ety), e);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let (mut m, _) = mk_module();
        let i32 = m.types.i32();
        let fnty = m.types.func(i32, vec![], false);
        m.add_function("add2", fnty, Linkage::Internal);
    }

    #[test]
    fn allocator_lookup() {
        let (mut m, _) = mk_module();
        m.declare_allocator(AllocatorDecl {
            name: "kmalloc".into(),
            kind: AllocKind::Ordinary,
            alloc_fn: "kmalloc".into(),
            dealloc_fn: Some("kfree".into()),
            pool_create_fn: None,
            pool_destroy_fn: None,
            size: SizeSpec::Arg(0),
            size_fn: None,
            pool_arg: None,
            backed_by: Some("kmem_cache".into()),
        });
        assert!(m.allocator_for_alloc_fn("kmalloc").is_some());
        assert!(m.allocator_for_dealloc_fn("kfree").is_some());
        assert!(m.allocator_for_alloc_fn("kfree").is_none());
    }

    #[test]
    fn global_init_and_ptr_type() {
        let (mut m, _) = mk_module();
        let i32 = m.types.i32();
        let arr = m.types.array(i32, 4);
        let g = m.add_global("table", arr, GlobalInit::Zero, false);
        m.intern_address_types();
        let pt = m.global_ptr_type(g);
        assert!(m.types.is_ptr(pt));
        assert_eq!(m.types.pointee(pt), arr);
    }

    #[test]
    fn rename_function_updates_index() {
        let (mut m, f) = mk_module();
        m.rename_function(f, "add2_clone0");
        assert_eq!(m.func_by_name("add2_clone0"), Some(f));
        assert_eq!(m.func_by_name("add2"), None);
    }

    #[test]
    fn operand_types_resolve() {
        let (mut m, f) = mk_module();
        let i64 = m.types.i64();
        let g = m.add_global("g", i64, GlobalInit::Zero, false);
        m.intern_address_types();
        let func = m.func(f);
        let t = func.operand_type(&Operand::Global(g), &m);
        assert!(m.types.is_ptr(t));
        let c = func.operand_type(&Operand::ConstInt(3, i64), &m);
        assert_eq!(c, i64);
    }

    #[test]
    fn intrinsic_call_is_plain_inst() {
        let (mut m, f) = mk_module();
        let func = m.func_mut(f);
        let b = func.add_block("entry");
        let (iid, _) = func.push_inst(
            b,
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::Print),
                args: vec![],
            },
            None,
        );
        assert!(matches!(func.inst(iid), Inst::Call { .. }));
    }
}
