//! # SVA — Secure Virtual Architecture
//!
//! Umbrella crate re-exporting the full SVA system: a reproduction of
//! *"Secure Virtual Architecture: A Safe Execution Environment for Commodity
//! Operating Systems"* (Criswell, Lenharth, Dhurjati, Adve — SOSP 2007).
//!
//! The pieces:
//!
//! * [`ir`] — the SVA-Core typed SSA virtual instruction set;
//! * [`rt`] — the metapool run-time (splay trees, run-time checks);
//! * [`analysis`] — unification-based points-to analysis;
//! * [`core`] — the safety-checking compiler and bytecode verifier
//!   (the paper's primary contribution);
//! * [`vm`] — the Secure Virtual Machine with the SVA-OS operations;
//! * [`trace`] — zero-overhead-when-off tracing, metrics and profiling;
//! * [`kernel`] — a miniature commodity kernel written in SVA IR;
//! * [`exploits`] — reproductions of the five Linux 2.4.22 exploits;
//! * [`inject`] — deterministic machine-level fault-injection plans.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full inventory.

pub use sva_analysis as analysis;
pub use sva_core as core;
pub use sva_exploits as exploits;
pub use sva_inject as inject;
pub use sva_ir as ir;
pub use sva_kernel as kernel;
pub use sva_rt as rt;
pub use sva_trace as trace;
pub use sva_vm as vm;
