//! Fuzz smoke: the bytecode decoder, verifier, a fueled VM and the
//! snapshot-migration layer must never panic the host, no matter what
//! bytes they are fed. Structured errors are fine — `unwrap`-style
//! crashes are not (proptest turns any panic into a test failure and
//! shrinks the input).

use proptest::prelude::*;

use sva::ir::build::FunctionBuilder;
use sva::ir::bytecode::{decode_module, encode_module};
use sva::ir::parse::parse_module;
use sva::ir::{Linkage, Module, Operand};
use sva::vm::{
    migrate_bundle, plan, reencode_at, CrashBundle, CrashReason, KernelKind, Vm, VmConfig, VmError,
};

/// Decode → verify → load → run, swallowing every structured error. The
/// verifier gates execution exactly like the production loader does
/// (unverifiable bytecode is rejected, never run), but decoding and
/// verification themselves must survive arbitrary input.
fn exercise(bytes: &[u8]) {
    let Ok(m) = decode_module(bytes) else { return };
    if !sva::ir::verify::verify_module(&m).is_empty() {
        return;
    }
    let names: Vec<String> = m.funcs.iter().map(|f| f.name.clone()).take(4).collect();
    for kind in [KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let Ok(mut vm) = Vm::new(
            m.clone(),
            VmConfig {
                kind,
                fuel: 20_000,
                ..Default::default()
            },
        ) else {
            continue;
        };
        for name in &names {
            let _ = vm.call(name, &[1, 0x4000]);
        }
    }
}

/// A tiny but well-formed module whose encoding the mutation tests start
/// from — flipped bytes then explore the decoder's deep paths.
fn seed_module(k: u64) -> Module {
    let mut m = Module::new("fuzz_seed");
    let i64t = m.types.i64();
    let fnty = m.types.func(i64t, vec![i64t], false);
    let f = m.add_function("seed", fnty, Linkage::Public);
    m.intern_address_types();
    let mut b = FunctionBuilder::new(&mut m, f);
    let p = b.param(0);
    let c = Operand::ConstInt(k as i64, i64t);
    let t = b.add(p, c);
    let t2 = b.mul(t, p);
    b.ret(Some(t2));
    m
}

// --- snapshot / bundle migration (DESIGN.md §4.10) ------------------------

/// A mid-run machine image at the given opt level — the well-formed
/// SVA1 artifact the mutation tests corrupt. Built once per opt level;
/// the guest is a counted loop so the cut lands inside a live frame.
fn migration_seed(opt_level: u8) -> (Vm, Vec<u8>) {
    let src = r#"
module "m"
func public @work(%n0: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, body: %i2]
  %acc:i64 = phi i64 [entry: %n0, body: %acc3]
  %done:i1 = icmp uge %i, 40:i64
  condbr %done, out, body
body:
  %t:i64 = mul %acc, 3:i64
  %acc2:i64 = add %t, 5:i64
  %acc3:i64 = xor %acc2, 7:i64
  %i2:i64 = add %i, 1:i64
  br loop
out:
  ret %acc
}
"#;
    let cfg = |fuel| VmConfig {
        kind: KernelKind::SvaLlvm,
        opt_level,
        fuel,
        ..Default::default()
    };
    let mut vm = Vm::new(parse_module(src).unwrap(), cfg(120)).unwrap();
    match vm.call("work", &[9]) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("seed cut did not interrupt: {r:?}"),
    }
    let img = vm.snapshot();
    (
        Vm::new(parse_module(src).unwrap(), cfg(u64::MAX)).unwrap(),
        img,
    )
}

/// Feed damaged bytes through every migration entry point. Each call
/// must return a structured error (or, by luck, succeed) — never panic.
fn exercise_migration(target: &mut Vm, bytes: &[u8]) {
    let _ = plan(bytes);
    for to in [1u32, 2, 3] {
        let _ = reencode_at(bytes, to);
    }
    let _ = target.restore_migrated(bytes);
    let _ = migrate_bundle(target, bytes);
}

/// Mutates a well-formed artifact: bit flips, then optional truncation
/// (a distinct failure mode from corruption).
fn damage(bytes: &mut Vec<u8>, flips: &[usize], cut: bool, k: u64) {
    for &bit in flips {
        let pos = bit % (bytes.len() * 8);
        bytes[pos / 8] ^= 1 << (pos % 8);
    }
    if cut && bytes.len() > 8 {
        let keep = 8 + k as usize % (bytes.len() - 8);
        bytes.truncate(keep);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decoder_and_vm_survive_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        exercise(&bytes);
    }

    #[test]
    fn decoder_and_vm_survive_mutated_modules(
        k in any::<u64>(),
        flips in prop::collection::vec(0usize..4096, 1..12),
        cut in any::<bool>(),
    ) {
        let mut bytes = encode_module(&seed_module(k));
        for bit in flips {
            let pos = bit % (bytes.len() * 8);
            bytes[pos / 8] ^= 1 << (pos % 8);
        }
        if cut && bytes.len() > 8 {
            // Truncation is a distinct failure mode from corruption.
            let keep = 8 + k as usize % (bytes.len() - 8);
            bytes.truncate(keep);
        }
        exercise(&bytes);
    }
}

/// Body of `migration_survives_mutated_snapshots`: a damaged SVA1
/// machine image through the whole migration surface — plan, downcasts,
/// `restore_migrated` — at the given translation tier. Mutating the
/// version byte steers many cases into the legacy decoders, which walk
/// the payload structurally and must also fail closed.
fn check_mutated_snapshot(opt: u8, flips: &[usize], cut: bool, k: u64) {
    let (mut target, img) = migration_seed(opt);
    let mut bytes = img;
    damage(&mut bytes, flips, cut, k);
    exercise_migration(&mut target, &bytes);
}

/// Body of `migration_survives_mutated_bundles`: the same sweep over an
/// SVAB crash bundle wrapping a valid snapshot — the bundle walker, the
/// legacy bundle decoders and the embedded-snapshot migration must all
/// survive arbitrary damage.
fn check_mutated_bundle(opt: u8, flips: &[usize], cut: bool, k: u64) {
    let (mut target, img) = migration_seed(opt);
    let code_id = plan(&img).unwrap().code_id;
    let bundle = CrashBundle {
        reason: CrashReason::Halt,
        halt_code: 41,
        resume_code_raw: 0,
        detail: "fuzz seed".to_string(),
        cpu: 0,
        config_words: [0; 10],
        code_id,
        stats: Default::default(),
        console: b"fuzz".to_vec(),
        domains: Vec::new(),
        pools: Vec::new(),
        health: Vec::new(),
        flight: Vec::new(),
        snapshot: img,
    };
    let mut bytes = bundle.to_bytes();
    damage(&mut bytes, flips, cut, k);
    exercise_migration(&mut target, &bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn migration_survives_mutated_snapshots(
        opt in prop::sample::select(vec![0u8, 2]),
        flips in prop::collection::vec(0usize..320_000, 1..12),
        cut in any::<bool>(),
        k in any::<u64>(),
    ) {
        check_mutated_snapshot(opt, &flips, cut, k);
    }

    #[test]
    fn migration_survives_mutated_bundles(
        opt in prop::sample::select(vec![0u8, 2]),
        flips in prop::collection::vec(0usize..400_000, 1..12),
        cut in any::<bool>(),
        k in any::<u64>(),
    ) {
        check_mutated_bundle(opt, &flips, cut, k);
    }
}
