//! Fuzz smoke: the bytecode decoder, verifier and a fueled VM must never
//! panic the host, no matter what bytes they are fed. Structured errors
//! are fine — `unwrap`-style crashes are not (proptest turns any panic
//! into a test failure and shrinks the input).

use proptest::prelude::*;

use sva::ir::build::FunctionBuilder;
use sva::ir::bytecode::{decode_module, encode_module};
use sva::ir::{Linkage, Module, Operand};
use sva::vm::{KernelKind, Vm, VmConfig};

/// Decode → verify → load → run, swallowing every structured error. The
/// verifier gates execution exactly like the production loader does
/// (unverifiable bytecode is rejected, never run), but decoding and
/// verification themselves must survive arbitrary input.
fn exercise(bytes: &[u8]) {
    let Ok(m) = decode_module(bytes) else { return };
    if !sva::ir::verify::verify_module(&m).is_empty() {
        return;
    }
    let names: Vec<String> = m.funcs.iter().map(|f| f.name.clone()).take(4).collect();
    for kind in [KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let Ok(mut vm) = Vm::new(
            m.clone(),
            VmConfig {
                kind,
                fuel: 20_000,
                ..Default::default()
            },
        ) else {
            continue;
        };
        for name in &names {
            let _ = vm.call(name, &[1, 0x4000]);
        }
    }
}

/// A tiny but well-formed module whose encoding the mutation tests start
/// from — flipped bytes then explore the decoder's deep paths.
fn seed_module(k: u64) -> Module {
    let mut m = Module::new("fuzz_seed");
    let i64t = m.types.i64();
    let fnty = m.types.func(i64t, vec![i64t], false);
    let f = m.add_function("seed", fnty, Linkage::Public);
    m.intern_address_types();
    let mut b = FunctionBuilder::new(&mut m, f);
    let p = b.param(0);
    let c = Operand::ConstInt(k as i64, i64t);
    let t = b.add(p, c);
    let t2 = b.mul(t, p);
    b.ret(Some(t2));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decoder_and_vm_survive_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        exercise(&bytes);
    }

    #[test]
    fn decoder_and_vm_survive_mutated_modules(
        k in any::<u64>(),
        flips in prop::collection::vec(0usize..4096, 1..12),
        cut in any::<bool>(),
    ) {
        let mut bytes = encode_module(&seed_module(k));
        for bit in flips {
            let pos = bit % (bytes.len() * 8);
            bytes[pos / 8] ^= 1 << (pos % 8);
        }
        if cut && bytes.len() > 8 {
            // Truncation is a distinct failure mode from corruption.
            let keep = 8 + k as usize % (bytes.len() - 8);
            bytes.truncate(keep);
        }
        exercise(&bytes);
    }
}
