//! Property-based tests over the core substrates:
//!
//! * **engine equivalence** — random straight-line integer programs run
//!   identically on the tree-walking and translated engines, and match a
//!   Rust reference evaluator (the VM's width/signedness semantics);
//! * **codec round-trips** — printing/parsing and bytecode
//!   encoding/decoding are lossless for generated modules;
//! * **splay tree vs model** — the range tree agrees with a naive model
//!   under arbitrary operation sequences;
//! * **fast-path equivalence** — a metapool with the layered lookup cache
//!   (MRU + page index) answers every check exactly like the splay-only
//!   baseline under arbitrary register/check/drop sequences;
//! * **signature integrity** — any single-bit flip in signed bytecode is
//!   rejected.

use proptest::prelude::*;

use sva::ir::build::FunctionBuilder;
use sva::ir::bytecode::{decode_module, encode_module, sign, verify_signature};
use sva::ir::parse::parse_module;
use sva::ir::print::print_module;
use sva::ir::{BinOp, Linkage, Module, Operand};
use sva::rt::{MetaPool, SplayTree};
use sva::vm::{KernelKind, Vm, VmConfig, VmExit};

/// One generated operation: opcode, operand sources, immediate, width.
#[derive(Clone, Debug)]
struct GenOp {
    op: u8,
    src_a: usize,
    src_b: usize,
    imm: i64,
    use_imm: bool,
    width: u8,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    (
        0u8..13,
        0usize..64,
        0usize..64,
        any::<i64>(),
        any::<bool>(),
        0u8..4,
    )
        .prop_map(|(op, src_a, src_b, imm, use_imm, w)| GenOp {
            op,
            src_a,
            src_b,
            imm,
            use_imm,
            width: [8, 16, 32, 64][w as usize],
        })
}

fn binop_of(code: u8) -> BinOp {
    match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::And,
        4 => BinOp::Or,
        5 => BinOp::Xor,
        6 => BinOp::Shl,
        7 => BinOp::LShr,
        8 => BinOp::AShr,
        9 => BinOp::UDiv,
        10 => BinOp::SDiv,
        11 => BinOp::URem,
        12 => BinOp::SRem,
        _ => unreachable!(),
    }
}

fn mask_w(v: u64, w: u8) -> u64 {
    if w == 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

fn sext_w(v: u64, w: u8) -> i64 {
    if w == 64 {
        v as i64
    } else {
        let sh = 64 - w as u32;
        ((v << sh) as i64) >> sh
    }
}

/// Reference evaluation with the SVA width semantics.
fn reference_eval(ops: &[GenOp], seed: u64) -> u64 {
    let mut vals: Vec<(u64, u8)> = vec![(seed, 64), (seed ^ 0xABCD, 64)];
    for g in ops {
        let (a, _wa) = vals[g.src_a % vals.len()];
        let (braw, _wb) = vals[g.src_b % vals.len()];
        let b = if g.use_imm { g.imm as u64 } else { braw };
        let w = g.width;
        let (ua, ub) = (mask_w(a, w), mask_w(b, w));
        let (sa, sb) = (sext_w(a, w), sext_w(b, w));
        let op = binop_of(g.op);
        let r = match op {
            BinOp::Add => ua.wrapping_add(ub),
            BinOp::Sub => ua.wrapping_sub(ub),
            BinOp::Mul => ua.wrapping_mul(ub),
            BinOp::And => ua & ub,
            BinOp::Or => ua | ub,
            BinOp::Xor => ua ^ ub,
            BinOp::Shl => ua.wrapping_shl(ub as u32 % w as u32),
            BinOp::LShr => ua.wrapping_shr(ub as u32 % w as u32),
            BinOp::AShr => (sa >> (ub as u32 % w as u32)) as u64,
            BinOp::UDiv => {
                if ub == 0 {
                    continue_skip(&mut vals);
                    continue;
                }
                ua / ub
            }
            BinOp::SDiv => {
                if sb == 0 {
                    continue_skip(&mut vals);
                    continue;
                }
                sa.wrapping_div(sb) as u64
            }
            BinOp::URem => {
                if ub == 0 {
                    continue_skip(&mut vals);
                    continue;
                }
                ua % ub
            }
            BinOp::SRem => {
                if sb == 0 {
                    continue_skip(&mut vals);
                    continue;
                }
                sa.wrapping_rem(sb) as u64
            }
            _ => unreachable!(),
        };
        vals.push((mask_w(r, w), w));
    }
    // Fold everything so every op contributes.
    vals.iter()
        .fold(0u64, |acc, (v, _)| acc.wrapping_mul(31).wrapping_add(*v))
}

fn continue_skip(vals: &mut Vec<(u64, u8)>) {
    vals.push((0, 64));
}

/// Builds the same program in IR. Division ops are guarded exactly like
/// the reference (skipped when the divisor is zero — constants only).
fn build_program(ops: &[GenOp]) -> Module {
    let mut m = Module::new("prop");
    let i64t = m.types.i64();
    let fnty = m.types.func(i64t, vec![i64t, i64t], false);
    let f = m.add_function("prog", fnty, Linkage::Public);
    m.intern_address_types();
    let mut b = FunctionBuilder::new(&mut m, f);
    let mut vals: Vec<(Operand, u8)> = vec![(b.param(0), 64), (b.param(1), 64)];

    let width_ty = |b: &mut FunctionBuilder<'_>, w: u8| match w {
        8 => b.module.types.i8(),
        16 => b.module.types.i16(),
        32 => b.module.types.i32(),
        _ => b.module.types.i64(),
    };

    for g in ops {
        let (a64, _) = vals[g.src_a % vals.len()];
        let (braw, _) = vals[g.src_b % vals.len()];
        let w = g.width;
        let wt = width_ty(&mut b, w);
        let op = binop_of(g.op);
        // Narrow both operands to the op width.
        let a = if w == 64 { a64 } else { b.trunc(a64, wt) };
        let bb = if g.use_imm {
            Operand::ConstInt(sext_w(g.imm as u64, w), wt)
        } else if w == 64 {
            braw
        } else {
            b.trunc(braw, wt)
        };
        // Skip division by a (possibly) zero divisor like the reference.
        let divlike = matches!(op, BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem);
        if divlike {
            let zero_div = if g.use_imm {
                mask_w(g.imm as u64, w) == 0
            } else {
                true // dynamic divisor might be zero: skip
            };
            if zero_div {
                let i64z = b.module.types.i64();
                vals.push((Operand::ConstInt(0, i64z), 64));
                continue;
            }
        }
        let r = b.bin(op, a, bb);
        // Widen back to i64 (zero-extends, matching `mask_w`).
        let i64w = b.module.types.i64();
        let r64 = if w == 64 { r } else { b.zext(r, i64w) };
        vals.push((r64, w));
    }
    // acc = fold(31 * acc + v)
    let mut acc = Operand::ConstInt(0, b.module.types.i64());
    for (v, _) in &vals {
        let c31 = b.c64(31);
        let t = b.mul(acc, c31);
        acc = b.add(t, *v);
    }
    b.ret(Some(acc));
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_match_reference(ops in prop::collection::vec(gen_op(), 1..24), seed in any::<u64>()) {
        // The reference's dynamic-divisor skip means non-imm divisions are
        // replaced by 0 in BOTH evaluators; adjust reference accordingly.
        let mut ref_ops = ops.clone();
        for g in &mut ref_ops {
            let divlike = matches!(g.op, 9..=12);
            if divlike && !g.use_imm {
                // Force the reference down the same "skip" path.
                g.use_imm = true;
                g.imm = 0;
            }
        }
        let expect = reference_eval(&ref_ops, seed);

        let m = build_program(&ops);
        let errs = sva::ir::verify::verify_module(&m);
        prop_assert!(errs.is_empty(), "{errs:?}");
        let mut results = Vec::new();
        for kind in [KernelKind::Native, KernelKind::SvaGcc] {
            let mut vm = Vm::new(m.clone(), VmConfig { kind, ..Default::default() }).unwrap();
            let r = vm.call("prog", &[seed, seed ^ 0xABCD]).unwrap();
            results.push(r);
        }
        prop_assert_eq!(results[0], results[1], "tree and flat engines disagree");
        prop_assert_eq!(results[0], VmExit::Returned(expect), "engine vs reference");
    }

    #[test]
    fn text_round_trip(ops in prop::collection::vec(gen_op(), 1..16)) {
        let m1 = build_program(&ops);
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = print_module(&m2);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn bytecode_round_trip(ops in prop::collection::vec(gen_op(), 1..16)) {
        let m1 = build_program(&ops);
        let bytes = encode_module(&m1);
        let m2 = decode_module(&bytes).unwrap();
        prop_assert_eq!(print_module(&m1), print_module(&m2));
    }

    #[test]
    fn signature_rejects_bit_flips(ops in prop::collection::vec(gen_op(), 1..8),
                                   bit in 0usize..4096, key in any::<u64>()) {
        let m = build_program(&ops);
        let bytes = encode_module(&m);
        let tag = sign(key, &bytes);
        prop_assert!(verify_signature(key, &bytes, tag));
        let mut bad = bytes.clone();
        let pos = bit % (bad.len() * 8);
        bad[pos / 8] ^= 1 << (pos % 8);
        prop_assert!(!verify_signature(key, &bad, tag), "flip at bit {pos} undetected");
    }

    #[test]
    fn splay_matches_model(ops in prop::collection::vec((0u8..3, 0u64..512, 1u64..48), 1..200)) {
        let mut t = SplayTree::new();
        let mut model: Vec<(u64, u64)> = Vec::new();
        for (op, pos, len) in ops {
            let start = pos * 8;
            match op {
                0 => {
                    let overlaps = model.iter().any(|&(s, e)| s < start + len && start < e);
                    let ok = t.insert(start, len);
                    prop_assert_eq!(ok, !overlaps);
                    if ok {
                        model.push((start, start + len));
                    }
                }
                1 => {
                    let addr = start + len / 2;
                    let expect = model.iter().copied().find(|&(s, e)| s <= addr && addr < e);
                    prop_assert_eq!(t.lookup(addr), expect);
                }
                _ => {
                    let expect = model.iter().position(|&(s, _)| s == start);
                    let got = t.remove(start);
                    match expect {
                        Some(i) => {
                            prop_assert_eq!(got, Some(model[i]));
                            model.swap_remove(i);
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
    }

    #[test]
    fn fastpath_agrees_with_splay_baseline(
        ops in prop::collection::vec((0u8..5, 0u64..512, 1u64..48, 0u64..64), 1..200),
        complete in any::<bool>(),
        toggle_at in 0usize..200,
    ) {
        // The same operation sequence runs against a fast-path pool and a
        // splay-only pool; every observable result (check outcomes, bounds,
        // live counts) must be identical, including after toggling the
        // fast path mid-sequence (which forces an index rebuild).
        let mut fast = MetaPool::new("MPf", false, complete, None);
        let mut base = MetaPool::new("MPb", false, complete, None);
        base.set_fast_path(false);
        // This test pins down the *layered* fast path, so the singleton
        // elision (which answers ahead of every layer while the pool holds
        // one object) is disabled on both sides; it has its own test below.
        fast.set_singleton_path(false);
        base.set_singleton_path(false);
        for (i, (op, pos, len, off)) in ops.into_iter().enumerate() {
            if i == toggle_at {
                fast.set_fast_path(false);
                fast.set_fast_path(true);
            }
            let start = pos * 8;
            let addr = start + off;
            match op {
                0 => prop_assert_eq!(
                    fast.reg_obj(start, len).is_ok(),
                    base.reg_obj(start, len).is_ok()
                ),
                1 => prop_assert_eq!(
                    fast.drop_obj(start).is_ok(),
                    base.drop_obj(start).is_ok()
                ),
                2 => prop_assert_eq!(fast.get_bounds(addr), base.get_bounds(addr)),
                3 => prop_assert_eq!(
                    fast.ls_check(addr).is_ok(),
                    base.ls_check(addr).is_ok()
                ),
                _ => prop_assert_eq!(
                    fast.bounds_check(addr, addr + len).is_ok(),
                    base.bounds_check(addr, addr + len).is_ok()
                ),
            }
            prop_assert_eq!(fast.live_objects(), base.live_objects());
        }
        prop_assert_eq!(fast.live_ranges(), base.live_ranges());
        // Layer accounting: the two pools saw the same lookups, and the
        // baseline answered all of its own from the tree.
        prop_assert_eq!(fast.stats().lookups(), base.stats().lookups());
        prop_assert_eq!(base.stats().tree_walks, base.stats().lookups());
        prop_assert_eq!(base.stats().cache_hits, 0);
    }

    #[test]
    fn singleton_elision_agrees_with_layered_lookup(
        ops in prop::collection::vec((0u8..5, 0u64..64, 1u64..48, 0u64..64), 1..200),
        complete in any::<bool>(),
    ) {
        // The singleton two-compare test must be observationally identical
        // to the full layered lookup, across registrations and drops that
        // move the pool in and out of the one-object regime.
        let mut on = MetaPool::new("MPs", false, complete, None);
        let mut off = MetaPool::new("MPl", false, complete, None);
        off.set_singleton_path(false);
        for (op, pos, len, off_b) in ops.into_iter() {
            let start = pos * 8;
            let addr = start + off_b;
            match op {
                0 => prop_assert_eq!(
                    on.reg_obj(start, len).is_ok(),
                    off.reg_obj(start, len).is_ok()
                ),
                1 => prop_assert_eq!(
                    on.drop_obj(start).is_ok(),
                    off.drop_obj(start).is_ok()
                ),
                2 => prop_assert_eq!(on.get_bounds(addr), off.get_bounds(addr)),
                3 => prop_assert_eq!(
                    on.ls_check(addr).is_ok(),
                    off.ls_check(addr).is_ok()
                ),
                _ => prop_assert_eq!(
                    on.bounds_check(addr, addr + len).is_ok(),
                    off.bounds_check(addr, addr + len).is_ok()
                ),
            }
            prop_assert_eq!(on.live_objects(), off.live_objects());
        }
        prop_assert_eq!(on.live_ranges(), off.live_ranges());
        // Both sides saw the same lookups; the elided side just answered
        // some of them at the singleton layer instead.
        prop_assert_eq!(on.stats().lookups(), off.stats().lookups());
        prop_assert_eq!(off.stats().singleton_hits, 0);
        let s = on.stats();
        prop_assert_eq!(
            s.singleton_hits + s.cache_hits + s.page_hits + s.tree_walks,
            s.lookups()
        );
    }
}
