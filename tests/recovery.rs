//! Violation-recovery domains (DESIGN.md §4.3): kernel-mode safety
//! violations unwind to the boot-registered recovery context instead of
//! tearing the machine down, the offending metapool is quarantined, and
//! the recovery machinery costs nothing when unused.

use std::sync::Arc;

use sva::kernel::harness::{
    boot_user, make_vm, make_vm_nested, make_vm_recovering, pack_arg, safe_kernel_module,
    USER_HEAP_BASE,
};
use sva::kernel::{AS_TESTED_EXCLUSIONS, SYSCALLS};
use sva::rt::MetaPoolId;
use sva::vm::{
    check_kind_code, FaultAction, FaultHook, KernelKind, Mode, ResumeCode, TrapInfo, Vm, VmConfig,
    VmError, VmExit,
};

const EFAULT: i64 = -14;
const ENOSYS: i64 = -38;

/// Metapool ids with complete points-to info — the pools whose checks
/// reject unknown addresses, so probes against them trip violations.
fn complete_pools() -> Vec<u32> {
    let vm = make_vm_recovering(VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(MetaPoolId(i)).complete)
        .collect()
}

#[test]
fn recovery_config_is_zero_cost_when_unused() {
    // The opt-in contract, stated the strong way round: on the plain
    // checked kernel (no recovery context, no fault hook), changing the
    // violation budget must not perturb a single counter or output byte.
    let module = safe_kernel_module(AS_TESTED_EXCLUSIONS);
    let mut a = Vm::new(
        module.clone(),
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_a = boot_user(&mut a, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut b = Vm::new(
        module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            violation_budget: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_b = boot_user(&mut b, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_a, exit_b);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(
        a.stats(),
        b.stats(),
        "recovery config leaked into the machine"
    );
    let s = a.stats();
    assert_eq!(s.violations_recovered, 0);
    assert_eq!(s.pools_quarantined, 0);
    assert_eq!(s.pools_poisoned, 0);
}

#[test]
fn recovery_absorbs_kernel_safety_violations() {
    // The buffer-overflow exploit that the plain checked kernel can only
    // catch-and-halt is *survived* by the recovery kernel: the violation
    // unwinds to the boot handler, the pool is quarantined, the faulting
    // user thread gets -EFAULT, and the machine keeps running.
    let mut plain = make_vm(KernelKind::SvaSafe);
    let err = boot_user(&mut plain, "user_exploit_bt", 0).unwrap_err();
    assert!(matches!(err, VmError::Safety(_)));

    let mut vm = make_vm_recovering(VmConfig::default());
    let exit = boot_user(&mut vm, "user_exploit_bt", 0)
        .unwrap_or_else(|e| panic!("recovery kernel must absorb the violation: {e}"));
    // Any orderly exit is acceptable (the exploit may retry into its
    // violation budget and be poisoned-halted); escaping as Err is not.
    let s = vm.stats();
    assert!(
        s.violations_recovered >= 1,
        "no violation recovered: {exit:?}"
    );
    assert!(s.pools_quarantined >= 1);
    assert!(vm.read_global_u64("recov_count").unwrap() >= 1);
    let code = vm.read_global_u64("recov_last_code").unwrap();
    let rc = ResumeCode::decode(code).expect("recov_last_code must decode as a resume code");
    assert!(
        (1..=6).contains(&rc.kind),
        "resume code must carry a check kind: {rc}"
    );
    assert!(
        rc.pool.is_some(),
        "violation must be attributed to a pool: {rc}"
    );
}

/// Raises a burst of timer IRQs and probes a wild address through a
/// complete pool at the first user→kernel trap, and never again. With
/// `defer > 0` the probe fires that many kernel-mode instructions into
/// the handler — inside the per-syscall domain on a nested kernel.
struct IrqsThenViolation {
    pool: u32,
    defer: u64,
}

impl FaultHook for IrqsThenViolation {
    fn on_trap(&self, info: &TrapInfo<'_>) -> FaultAction {
        if info.trap_index != 0 {
            return FaultAction::default();
        }
        FaultAction {
            raise_irqs: 3,
            probe_stale: Some((self.pool, 0x11f0_8000)),
            probe_defer: self.defer,
            ..Default::default()
        }
    }
}

#[test]
fn pending_irqs_survive_a_violation_unwind_exactly_once() {
    // IRQs queued before the violation are *pending* when the unwind
    // happens; they must be delivered exactly once after the recovery
    // handler irets back to user mode — not dropped with the unwound
    // frames, not double-delivered.
    let pool = complete_pools()
        .first()
        .copied()
        .expect("kernel has a complete pool");
    let cfg = VmConfig {
        violation_budget: 100,
        fault_hook: Some(Arc::new(IrqsThenViolation { pool, defer: 0 })),
        ..Default::default()
    };
    let mut vm = make_vm_recovering(cfg);
    boot_user(&mut vm, "user_getpid_loop", pack_arg(10, 0, 0)).expect("workload survives");
    let s = vm.stats();
    assert_eq!(s.violations_recovered, 1);
    assert_eq!(
        s.interrupts, 3,
        "IRQs pending at the unwind were dropped or double-delivered"
    );
    assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 3);
    assert_eq!(
        vm.pools.quarantined_count(),
        0,
        "recovery handler must release the quarantine"
    );
}

#[test]
fn quarantined_pool_hit_from_kernel_mode_halts_cleanly() {
    // Once a pool is poisoned, any further check against it fails fast
    // with the Quarantined kind — including from a direct kernel-mode
    // call after boot. The recovery handler sees the poison bit in the
    // resume code and halts with abort(41) instead of resuming.
    let mut vm = make_vm_recovering(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let clean = vm.stats();
    assert_eq!(clean.violations_recovered, 0);

    // Host-side poisoning: with budget 1 the first noted violation
    // quarantines *and* poisons every pool.
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }

    // The recovery context registered at boot persists, so the check
    // failure inside the handler unwinds there.
    let r = vm.call("sys_getrusage", &[sva::kernel::harness::USER_HEAP_BASE]);
    assert_eq!(
        r.unwrap(),
        VmExit::Halted(41),
        "poisoned pool must halt the machine"
    );
    assert_eq!(vm.stats().violations_recovered, 1);
    let rc = ResumeCode::decode(vm.read_global_u64("recov_last_code").unwrap())
        .expect("recov_last_code must decode as a resume code");
    assert_eq!(
        rc.kind,
        check_kind_code(sva::rt::CheckKind::Quarantined),
        "resume code kind must be Quarantined: {rc}"
    );
    assert!(rc.poisoned, "resume code must carry the poison bit: {rc}");
}

#[test]
fn fault_plans_drive_the_recovery_kernel_deterministically() {
    // End-to-end slice of the faultcamp campaign: a seeded wild-pointer
    // plan injects real violations, every one is recovered, and the
    // whole run replays bit-identically.
    use sva::inject::{FaultClass, FaultPlan};

    let targets = complete_pools();
    let run = |targets: Vec<u32>| {
        let plan = Arc::new(FaultPlan::new(FaultClass::WildPtr, 7, 2, targets));
        let cfg = VmConfig {
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm_recovering(cfg);
        let r = boot_user(&mut vm, "user_getpid_loop", pack_arg(50, 0, 0));
        (format!("{r:?}"), vm.stats(), plan.injected())
    };
    let a = run(targets.clone());
    let b = run(targets);
    assert!(a.2 > 0, "plan never injected");
    assert!(
        a.1.violations_recovered > 0,
        "injected faults never recovered"
    );
    assert_eq!(a, b, "fault campaign run is not deterministic");
}

// ---- nested per-subsystem domains (DESIGN.md §4.5) ----

/// Subsystem ids recorded by the kernel's `dbg_*` probe functions, in
/// the order their register points caught an unwind.
fn dbg_order(vm: &mut Vm) -> Vec<u64> {
    let n = vm.read_global_u64("dbg_order_n").unwrap();
    let base = vm.global_address("dbg_order").unwrap();
    (0..n.min(4))
        .map(|i| vm.mem.read_uint(base + i * 8, 8, Mode::Kernel).unwrap())
        .collect()
}

/// Health-table entry for the syscall backed by `handler` (0 = live).
fn syscall_health(vm: &mut Vm, handler: &str) -> u64 {
    let idx = SYSCALLS
        .iter()
        .position(|(_, h, _)| *h == handler)
        .unwrap_or_else(|| panic!("{handler} not in SYSCALLS")) as u64;
    let base = vm.global_address("syscall_health").unwrap();
    vm.mem.read_uint(base + idx * 8, 8, Mode::Kernel).unwrap()
}

#[test]
fn nested_domains_unwind_lifo_three_deep() {
    // dbg_nest pushes domains 11, 12, 13 (13 innermost) and unwinds
    // once; the unwind must cascade LIFO through all three register
    // points — innermost first — and each hit path pops its own domain.
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let before = vm.stats();
    let r = vm.call("dbg_nest", &[]).unwrap();
    assert_eq!(r, VmExit::Returned(0), "cascade must terminate cleanly");
    assert_eq!(
        dbg_order(&mut vm),
        vec![13, 12, 11],
        "unwind must visit register points innermost-first"
    );
    let s = vm.stats();
    assert_eq!(s.domains_pushed - before.domains_pushed, 3);
    assert_eq!(s.domains_popped - before.domains_popped, 3);
}

#[test]
fn released_domain_never_catches_a_later_unwind() {
    // dbg_release_unwind registers 21 then 22, pops 22, then unwinds
    // with code 77: the unwind must land at 21's register point (and
    // return the code verbatim), never at the released inner domain.
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let r = vm.call("dbg_release_unwind", &[]).unwrap();
    assert_eq!(r, VmExit::Returned(77), "outer domain must see the code");
    assert_eq!(dbg_order(&mut vm), vec![21]);
}

#[test]
fn watchdog_force_unwinds_a_wedged_domain() {
    // dbg_wedge's inner domain (32) spins forever; once its fuel runs
    // out the watchdog force-pops it and unwinds to the outer domain
    // (31) with a kind-7 resume code. The healthy syscalls of the boot
    // workload must never trip it.
    let mut vm = make_vm_nested(VmConfig {
        domain_fuel: 50_000,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    assert_eq!(
        vm.stats().watchdog_unwinds,
        0,
        "healthy syscalls exhausted their fuel"
    );
    let r = vm.call("dbg_wedge", &[]).unwrap();
    let code = match r {
        VmExit::Returned(c) => c,
        other => panic!("wedge must return a resume code, got {other:?}"),
    };
    let rc = ResumeCode::decode(code).expect("wedge must return a resume code");
    assert!(rc.is_watchdog(), "resume kind: {rc}");
    assert!(!rc.poisoned, "watchdog unwind carries no poison: {rc}");
    assert_eq!(dbg_order(&mut vm), vec![31]);
    assert_eq!(vm.stats().watchdog_unwinds, 1);
}

#[test]
fn pending_irqs_survive_a_nested_unwind_exactly_once() {
    // The nested variant of the exact-once guarantee: the probe is
    // deferred into the handler body so the violation unwinds to the
    // *syscall's own* domain, and the IRQs queued before it must still
    // be delivered exactly once afterwards.
    let pool = complete_pools()
        .first()
        .copied()
        .expect("kernel has a complete pool");
    let cfg = VmConfig {
        violation_budget: 100,
        fault_hook: Some(Arc::new(IrqsThenViolation {
            pool,
            defer: sva::inject::PROBE_DEFER,
        })),
        ..Default::default()
    };
    let mut vm = make_vm_nested(cfg);
    boot_user(&mut vm, "user_getpid_loop", pack_arg(10, 0, 0)).expect("workload survives");
    let s = vm.stats();
    assert_eq!(s.violations_recovered, 1);
    assert_eq!(
        s.interrupts, 3,
        "IRQs pending at the unwind were dropped or double-delivered"
    );
    assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 3);
    assert_eq!(
        vm.read_global_u64("recov_sysd_count").unwrap(),
        1,
        "the syscall's own domain must catch the violation"
    );
    assert_eq!(
        vm.read_global_u64("recov_count").unwrap(),
        0,
        "a contained fault must never reach the boot domain"
    );
    assert_eq!(
        vm.pools.quarantined_count(),
        0,
        "popping the domain must end the pool's quarantine scope"
    );
}

#[test]
fn poisoned_pool_degrades_one_syscall_instead_of_halting() {
    // Same poisoned-pool hit that halts the flat recovery kernel with
    // abort(41): on the nested kernel the syscall's own domain catches
    // it, the syscall fails with -EFAULT, is marked degraded in the
    // health table, and answers -ENOSYS from then on — machine live.
    let mut vm = make_vm_nested(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }
    assert_eq!(syscall_health(&mut vm, "sys_getrusage"), 0);

    let r = vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap();
    assert_eq!(
        r,
        VmExit::Returned(EFAULT as u64),
        "first hit must fail the syscall, not the machine"
    );
    assert_eq!(
        syscall_health(&mut vm, "sys_getrusage"),
        1,
        "poison must degrade the syscall in the health table"
    );
    assert_eq!(vm.read_global_u64("recov_sysd_count").unwrap(), 1);

    // Degraded: subsequent calls fail fast without touching the pool.
    let r2 = vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap();
    assert_eq!(r2, VmExit::Returned(ENOSYS as u64));
    assert_eq!(
        vm.read_global_u64("recov_sysd_count").unwrap(),
        1,
        "a degraded syscall must not re-enter its domain"
    );
}

#[test]
fn nested_config_is_zero_cost_when_no_fault_fires() {
    // The nested-kernel analogue of the zero-cost gate: on a fault-free
    // workload, changing the watchdog fuel and the violation budget must
    // not perturb a single counter or output byte.
    let mut a = make_vm_nested(VmConfig::default());
    let exit_a = boot_user(&mut a, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut b = make_vm_nested(VmConfig {
        domain_fuel: 250_000,
        violation_budget: 500,
        ..Default::default()
    });
    let exit_b = boot_user(&mut b, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_a, exit_b);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(
        a.stats(),
        b.stats(),
        "domain config leaked into the machine"
    );
    let s = a.stats();
    assert_eq!(s.violations_recovered, 0);
    assert_eq!(s.watchdog_unwinds, 0);
    assert!(s.domains_pushed > 1, "syscalls must push domains");
    assert_eq!(
        s.domains_pushed,
        s.domains_popped + 1,
        "every syscall domain must pop; only the boot domain stays live"
    );
}

#[test]
fn unwind_without_live_context_is_privilege_from_user_mode() {
    // Satellite regression: `sva.recover.unwind` from user mode must be
    // rejected as a privilege violation *before* any context lookup —
    // the attacker must not learn whether a recovery context exists.
    let mut vm = make_vm(KernelKind::SvaSafe);
    let err = boot_user(&mut vm, "user_unwind_attack", 0).unwrap_err();
    assert!(
        matches!(err, VmError::Privilege { .. }),
        "user unwind must be a privilege fault, got {err}"
    );

    // From kernel mode with no live domain it is NoRecoveryContext —
    // proving the privilege gate, not the empty stack, fired above.
    let mut vm = make_vm(KernelKind::SvaSafe);
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let err = vm.call("dbg_unwind", &[]).unwrap_err();
    assert!(
        matches!(err, VmError::NoRecoveryContext),
        "kernel unwind with no domain, got {err}"
    );
}
