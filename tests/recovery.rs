//! Violation-recovery domains (DESIGN.md §4.3): kernel-mode safety
//! violations unwind to the boot-registered recovery context instead of
//! tearing the machine down, the offending metapool is quarantined, and
//! the recovery machinery costs nothing when unused.

use std::sync::Arc;

use sva::kernel::harness::{
    boot_user, make_vm, make_vm_nested, make_vm_recovering, pack_arg, safe_kernel_module,
    USER_HEAP_BASE,
};
use sva::kernel::{
    health_state, health_strikes, AS_TESTED_EXCLUSIONS, H_DEGRADED, H_LIVE, H_PROBATION, H_RETIRED,
    IRQ_SUBSYS, NSUBSYS, REPAIR_STRIKES, SYSCALLS,
};
use sva::rt::MetaPoolId;
use sva::vm::{
    check_kind_code, FaultAction, FaultHook, KernelKind, Mode, ResumeCode, TrapInfo, Vm, VmConfig,
    VmError, VmExit, VmStats,
};

const EFAULT: i64 = -14;
const ENOSYS: i64 = -38;

/// Metapool ids with complete points-to info — the pools whose checks
/// reject unknown addresses, so probes against them trip violations.
fn complete_pools() -> Vec<u32> {
    let vm = make_vm_recovering(VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(MetaPoolId(i)).complete)
        .collect()
}

#[test]
fn recovery_config_is_zero_cost_when_unused() {
    // The opt-in contract, stated the strong way round: on the plain
    // checked kernel (no recovery context, no fault hook), changing the
    // violation budget must not perturb a single counter or output byte.
    let module = safe_kernel_module(AS_TESTED_EXCLUSIONS);
    let mut a = Vm::new(
        module.clone(),
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_a = boot_user(&mut a, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut b = Vm::new(
        module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            violation_budget: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_b = boot_user(&mut b, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_a, exit_b);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(
        a.stats(),
        b.stats(),
        "recovery config leaked into the machine"
    );
    let s = a.stats();
    assert_eq!(s.violations_recovered, 0);
    assert_eq!(s.pools_quarantined, 0);
    assert_eq!(s.pools_poisoned, 0);
}

#[test]
fn recovery_absorbs_kernel_safety_violations() {
    // The buffer-overflow exploit that the plain checked kernel can only
    // catch-and-halt is *survived* by the recovery kernel: the violation
    // unwinds to the boot handler, the pool is quarantined, the faulting
    // user thread gets -EFAULT, and the machine keeps running.
    let mut plain = make_vm(KernelKind::SvaSafe);
    let err = boot_user(&mut plain, "user_exploit_bt", 0).unwrap_err();
    assert!(matches!(err, VmError::Safety(_)));

    let mut vm = make_vm_recovering(VmConfig::default());
    let exit = boot_user(&mut vm, "user_exploit_bt", 0)
        .unwrap_or_else(|e| panic!("recovery kernel must absorb the violation: {e}"));
    // Any orderly exit is acceptable (the exploit may retry into its
    // violation budget and be poisoned-halted); escaping as Err is not.
    let s = vm.stats();
    assert!(
        s.violations_recovered >= 1,
        "no violation recovered: {exit:?}"
    );
    assert!(s.pools_quarantined >= 1);
    assert!(vm.read_global_u64("recov_count").unwrap() >= 1);
    let code = vm.read_global_u64("recov_last_code").unwrap();
    let rc = ResumeCode::decode(code).expect("recov_last_code must decode as a resume code");
    assert!(
        (1..=6).contains(&rc.kind),
        "resume code must carry a check kind: {rc}"
    );
    assert!(
        rc.pool.is_some(),
        "violation must be attributed to a pool: {rc}"
    );
}

/// Raises a burst of timer IRQs and probes a wild address through a
/// complete pool at the first user→kernel trap, and never again. With
/// `defer > 0` the probe fires that many kernel-mode instructions into
/// the handler — inside the per-syscall domain on a nested kernel.
struct IrqsThenViolation {
    pool: u32,
    defer: u64,
}

impl FaultHook for IrqsThenViolation {
    fn on_trap(&self, info: &TrapInfo<'_>) -> FaultAction {
        if info.trap_index != 0 {
            return FaultAction::default();
        }
        FaultAction {
            raise_irqs: 3,
            probe_stale: Some((self.pool, 0x11f0_8000)),
            probe_defer: self.defer,
            ..Default::default()
        }
    }
}

#[test]
fn pending_irqs_survive_a_violation_unwind_exactly_once() {
    // IRQs queued before the violation are *pending* when the unwind
    // happens; they must be delivered exactly once after the recovery
    // handler irets back to user mode — not dropped with the unwound
    // frames, not double-delivered.
    let pool = complete_pools()
        .first()
        .copied()
        .expect("kernel has a complete pool");
    let cfg = VmConfig {
        violation_budget: 100,
        fault_hook: Some(Arc::new(IrqsThenViolation { pool, defer: 0 })),
        ..Default::default()
    };
    let mut vm = make_vm_recovering(cfg);
    boot_user(&mut vm, "user_getpid_loop", pack_arg(10, 0, 0)).expect("workload survives");
    let s = vm.stats();
    assert_eq!(s.violations_recovered, 1);
    assert_eq!(
        s.interrupts, 3,
        "IRQs pending at the unwind were dropped or double-delivered"
    );
    assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 3);
    assert_eq!(
        vm.pools.quarantined_count(),
        0,
        "recovery handler must release the quarantine"
    );
}

#[test]
fn quarantined_pool_hit_from_kernel_mode_halts_cleanly() {
    // Once a pool is poisoned, any further check against it fails fast
    // with the Quarantined kind — including from a direct kernel-mode
    // call after boot. The recovery handler sees the poison bit in the
    // resume code and halts with abort(41) instead of resuming.
    let mut vm = make_vm_recovering(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let clean = vm.stats();
    assert_eq!(clean.violations_recovered, 0);

    // Host-side poisoning: with budget 1 the first noted violation
    // quarantines *and* poisons every pool.
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }

    // The recovery context registered at boot persists, so the check
    // failure inside the handler unwinds there.
    let r = vm.call("sys_getrusage", &[sva::kernel::harness::USER_HEAP_BASE]);
    assert_eq!(
        r.unwrap(),
        VmExit::Halted(41),
        "poisoned pool must halt the machine"
    );
    assert_eq!(vm.stats().violations_recovered, 1);
    let rc = ResumeCode::decode(vm.read_global_u64("recov_last_code").unwrap())
        .expect("recov_last_code must decode as a resume code");
    assert_eq!(
        rc.kind,
        check_kind_code(sva::rt::CheckKind::Quarantined),
        "resume code kind must be Quarantined: {rc}"
    );
    assert!(rc.poisoned, "resume code must carry the poison bit: {rc}");
}

#[test]
fn fault_plans_drive_the_recovery_kernel_deterministically() {
    // End-to-end slice of the faultcamp campaign: a seeded wild-pointer
    // plan injects real violations, every one is recovered, and the
    // whole run replays bit-identically.
    use sva::inject::{FaultClass, FaultPlan};

    let targets = complete_pools();
    let run = |targets: Vec<u32>| {
        let plan = Arc::new(FaultPlan::new(FaultClass::WildPtr, 7, 2, targets));
        let cfg = VmConfig {
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm_recovering(cfg);
        let r = boot_user(&mut vm, "user_getpid_loop", pack_arg(50, 0, 0));
        (format!("{r:?}"), vm.stats(), plan.injected())
    };
    let a = run(targets.clone());
    let b = run(targets);
    assert!(a.2 > 0, "plan never injected");
    assert!(
        a.1.violations_recovered > 0,
        "injected faults never recovered"
    );
    assert_eq!(a, b, "fault campaign run is not deterministic");
}

// ---- nested per-subsystem domains (DESIGN.md §4.5) ----

/// Subsystem ids recorded by the kernel's `dbg_*` probe functions, in
/// the order their register points caught an unwind.
fn dbg_order(vm: &mut Vm) -> Vec<u64> {
    let n = vm.read_global_u64("dbg_order_n").unwrap();
    let base = vm.global_address("dbg_order").unwrap();
    (0..n.min(4))
        .map(|i| vm.mem.read_uint(base + i * 8, 8, Mode::Kernel).unwrap())
        .collect()
}

/// Recovery-domain subsystem id (1-based) of the syscall backed by
/// `handler`: its SYSCALLS index + 1.
fn syscall_subsys(handler: &str) -> u64 {
    SYSCALLS
        .iter()
        .position(|(_, h, _)| *h == handler)
        .unwrap_or_else(|| panic!("{handler} not in SYSCALLS")) as u64
        + 1
}

/// Packed health word for the subsystem backed by `handler` (DESIGN.md
/// §4.8 bit layout).
fn syscall_health_word(vm: &mut Vm, handler: &str) -> u64 {
    subsys_health_word(vm, syscall_subsys(handler))
}

/// Packed health word for an arbitrary subsystem id (1-based).
fn subsys_health_word(vm: &mut Vm, subsys: u64) -> u64 {
    let base = vm.global_address("subsys_health").unwrap();
    vm.mem
        .read_uint(base + (subsys - 1) * 8, 8, Mode::Kernel)
        .unwrap()
}

/// Health-machine state for the syscall backed by `handler` (0 = live).
fn syscall_health(vm: &mut Vm, handler: &str) -> u64 {
    health_state(syscall_health_word(vm, handler))
}

#[test]
fn nested_domains_unwind_lifo_three_deep() {
    // dbg_nest pushes domains 11, 12, 13 (13 innermost) and unwinds
    // once; the unwind must cascade LIFO through all three register
    // points — innermost first — and each hit path pops its own domain.
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let before = vm.stats();
    let r = vm.call("dbg_nest", &[]).unwrap();
    assert_eq!(r, VmExit::Returned(0), "cascade must terminate cleanly");
    assert_eq!(
        dbg_order(&mut vm),
        vec![13, 12, 11],
        "unwind must visit register points innermost-first"
    );
    let s = vm.stats();
    assert_eq!(s.domains_pushed - before.domains_pushed, 3);
    assert_eq!(s.domains_popped - before.domains_popped, 3);
}

#[test]
fn released_domain_never_catches_a_later_unwind() {
    // dbg_release_unwind registers 21 then 22, pops 22, then unwinds
    // with code 77: the unwind must land at 21's register point (and
    // return the code verbatim), never at the released inner domain.
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let r = vm.call("dbg_release_unwind", &[]).unwrap();
    assert_eq!(r, VmExit::Returned(77), "outer domain must see the code");
    assert_eq!(dbg_order(&mut vm), vec![21]);
}

#[test]
fn watchdog_force_unwinds_a_wedged_domain() {
    // dbg_wedge's inner domain (32) spins forever; once its fuel runs
    // out the watchdog force-pops it and unwinds to the outer domain
    // (31) with a kind-7 resume code. The healthy syscalls of the boot
    // workload must never trip it.
    let mut vm = make_vm_nested(VmConfig {
        domain_fuel: 50_000,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    assert_eq!(
        vm.stats().watchdog_unwinds,
        0,
        "healthy syscalls exhausted their fuel"
    );
    let r = vm.call("dbg_wedge", &[]).unwrap();
    let code = match r {
        VmExit::Returned(c) => c,
        other => panic!("wedge must return a resume code, got {other:?}"),
    };
    let rc = ResumeCode::decode(code).expect("wedge must return a resume code");
    assert!(rc.is_watchdog(), "resume kind: {rc}");
    assert!(!rc.poisoned, "watchdog unwind carries no poison: {rc}");
    assert_eq!(dbg_order(&mut vm), vec![31]);
    assert_eq!(vm.stats().watchdog_unwinds, 1);
}

#[test]
fn pending_irqs_survive_a_nested_unwind_exactly_once() {
    // The nested variant of the exact-once guarantee: the probe is
    // deferred into the handler body so the violation unwinds to the
    // *syscall's own* domain, and the IRQs queued before it must still
    // be delivered exactly once afterwards.
    let pool = complete_pools()
        .first()
        .copied()
        .expect("kernel has a complete pool");
    let cfg = VmConfig {
        violation_budget: 100,
        fault_hook: Some(Arc::new(IrqsThenViolation {
            pool,
            defer: sva::inject::PROBE_DEFER,
        })),
        ..Default::default()
    };
    let mut vm = make_vm_nested(cfg);
    boot_user(&mut vm, "user_getpid_loop", pack_arg(10, 0, 0)).expect("workload survives");
    let s = vm.stats();
    assert_eq!(s.violations_recovered, 1);
    assert_eq!(
        s.interrupts, 3,
        "IRQs pending at the unwind were dropped or double-delivered"
    );
    assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 3);
    assert_eq!(
        vm.read_global_u64("recov_sysd_count").unwrap(),
        1,
        "the syscall's own domain must catch the violation"
    );
    assert_eq!(
        vm.read_global_u64("recov_count").unwrap(),
        0,
        "a contained fault must never reach the boot domain"
    );
    assert_eq!(
        vm.pools.quarantined_count(),
        0,
        "popping the domain must end the pool's quarantine scope"
    );
}

#[test]
fn poisoned_pool_degrades_one_syscall_instead_of_halting() {
    // Same poisoned-pool hit that halts the flat recovery kernel with
    // abort(41): on the nested kernel the syscall's own domain catches
    // it, the syscall fails with -EFAULT, is marked degraded in the
    // health table, and answers -ENOSYS from then on — machine live.
    let mut vm = make_vm_nested(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }
    assert_eq!(syscall_health(&mut vm, "sys_getrusage"), 0);

    let r = vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap();
    assert_eq!(
        r,
        VmExit::Returned(EFAULT as u64),
        "first hit must fail the syscall, not the machine"
    );
    assert_eq!(
        syscall_health(&mut vm, "sys_getrusage"),
        1,
        "poison must degrade the syscall in the health table"
    );
    assert_eq!(vm.read_global_u64("recov_sysd_count").unwrap(), 1);

    // Degraded: subsequent calls fail fast without touching the pool.
    let r2 = vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap();
    assert_eq!(r2, VmExit::Returned(ENOSYS as u64));
    assert_eq!(
        vm.read_global_u64("recov_sysd_count").unwrap(),
        1,
        "a degraded syscall must not re-enter its domain"
    );
}

#[test]
fn nested_config_is_zero_cost_when_no_fault_fires() {
    // The nested-kernel analogue of the zero-cost gate: on a fault-free
    // workload, changing the watchdog fuel and the violation budget must
    // not perturb a single counter or output byte.
    let mut a = make_vm_nested(VmConfig::default());
    let exit_a = boot_user(&mut a, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut b = make_vm_nested(VmConfig {
        domain_fuel: 250_000,
        violation_budget: 500,
        ..Default::default()
    });
    let exit_b = boot_user(&mut b, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_a, exit_b);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(
        a.stats(),
        b.stats(),
        "domain config leaked into the machine"
    );
    let s = a.stats();
    assert_eq!(s.violations_recovered, 0);
    assert_eq!(s.watchdog_unwinds, 0);
    assert!(s.domains_pushed > 1, "syscalls must push domains");
    assert_eq!(
        s.domains_pushed,
        s.domains_popped + 1,
        "every syscall domain must pop; only the boot domain stays live"
    );
}

#[test]
fn unwind_without_live_context_is_privilege_from_user_mode() {
    // Satellite regression: `sva.recover.unwind` from user mode must be
    // rejected as a privilege violation *before* any context lookup —
    // the attacker must not learn whether a recovery context exists.
    let mut vm = make_vm(KernelKind::SvaSafe);
    let err = boot_user(&mut vm, "user_unwind_attack", 0).unwrap_err();
    assert!(
        matches!(err, VmError::Privilege { .. }),
        "user unwind must be a privilege fault, got {err}"
    );

    // From kernel mode with no live domain it is NoRecoveryContext —
    // proving the privilege gate, not the empty stack, fired above.
    let mut vm = make_vm(KernelKind::SvaSafe);
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let err = vm.call("dbg_unwind", &[]).unwrap_err();
    assert!(
        matches!(err, VmError::NoRecoveryContext),
        "kernel unwind with no domain, got {err}"
    );
}

// ---- health-table repair and probation (DESIGN.md §4.8) ----

/// Guest address of subsystem `subsys`'s packed health word.
fn health_slot(vm: &mut Vm, subsys: u64) -> u64 {
    vm.global_address("subsys_health").unwrap() + (subsys - 1) * 8
}

#[test]
fn degraded_then_repaired_irq_path_delivers_ticks_exactly_once() {
    // The IRQ dispatch path rides the same 3-state health machine as the
    // syscalls. Degrade it through the kernel's own transition function
    // (the caught path of `irqd_timer_tick` calls exactly this with
    // exactly these arguments) with its pools poisoned: degraded ticks
    // are dropped, the repair manager — whose clock runs *before* the
    // IRQ path's own gate — repairs it on schedule, and a repaired tick
    // is delivered exactly once per timer interrupt again.
    let mut vm = make_vm_nested(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    for i in 0..vm.pools.len() as u32 {
        vm.pools
            .pool_mut(MetaPoolId(i))
            .force_poison(IRQ_SUBSYS as u64);
    }
    let hp = health_slot(&mut vm, IRQ_SUBSYS as u64);
    vm.call("health_degrade", &[hp, IRQ_SUBSYS as u64]).unwrap();
    let w = subsys_health_word(&mut vm, IRQ_SUBSYS as u64);
    assert_eq!(health_state(w), H_DEGRADED as u64);
    assert_eq!(health_strikes(w), 1);

    // A degraded tick is dropped — the repair clock advances, time does
    // not.
    let t0 = vm.read_global_u64("time_ticks").unwrap();
    vm.call("irqd_timer_tick", &[0]).unwrap();
    assert_eq!(
        vm.read_global_u64("time_ticks").unwrap(),
        t0,
        "a degraded tick must be dropped, not delivered"
    );

    // Keep ticking until the machine heals itself: due repair into
    // probation, clean ticks spend the probation credits, live again.
    let mut spins = 0;
    while health_state(subsys_health_word(&mut vm, IRQ_SUBSYS as u64)) != H_LIVE as u64 {
        vm.call("irqd_timer_tick", &[0]).unwrap();
        spins += 1;
        assert!(spins < 32, "IRQ path never returned to live");
    }
    assert_eq!(
        subsys_health_word(&mut vm, IRQ_SUBSYS as u64),
        0,
        "the live word must clear strikes and backoff"
    );
    let s = vm.stats();
    assert!(s.repairs >= 1, "repair manager never fired");
    assert_eq!(
        s.pools_repaired,
        vm.pools.len() as u64,
        "every pool attributed to the IRQ path must be reinitialized"
    );
    assert!(s.probation_passed >= 1);
    assert_eq!(vm.pools.quarantined_count(), 0);

    // The regression proper: a repaired tick is delivered exactly once —
    // not dropped, not double-counted.
    let t1 = vm.read_global_u64("time_ticks").unwrap();
    for n in 1..=3 {
        vm.call("irqd_timer_tick", &[0]).unwrap();
        assert_eq!(
            vm.read_global_u64("time_ticks").unwrap(),
            t1 + n,
            "repaired tick not delivered exactly once"
        );
    }
    assert_eq!(
        vm.read_global_u64("recov_count").unwrap(),
        0,
        "IRQ-path health traffic must never reach the boot domain"
    );
}

#[test]
fn user_mode_repair_is_privilege_before_touching_health_state() {
    // Satellite regression (mirror of the unwind-attack test above):
    // `sva.recover.repair` from user mode must be rejected as a
    // privilege violation before any health or pool state is touched.
    let mut vm = make_vm_nested(VmConfig::default());
    let err = boot_user(&mut vm, "user_repair_attack", 0).unwrap_err();
    assert!(
        matches!(err, VmError::Privilege { .. }),
        "user repair must be a privilege fault, got {err}"
    );
    let s = vm.stats();
    assert_eq!(s.repairs, 0);
    assert_eq!(s.pools_repaired, 0);
    for subsys in 1..=NSUBSYS as u64 {
        assert_eq!(
            subsys_health_word(&mut vm, subsys),
            0,
            "health table touched by a user-mode repair"
        );
    }
    for i in 0..vm.pools.len() as u32 {
        assert_eq!(
            vm.pools.pool(MetaPoolId(i)).repairs(),
            0,
            "pool state touched by a user-mode repair"
        );
    }
}

#[test]
fn strike_budget_exhaustion_permanently_retires_a_subsystem() {
    // The strike budget is the machine's give-up point: REPAIR_STRIKES
    // poison strikes retire the subsystem permanently — -ENOSYS forever,
    // never rescheduled for repair — while the rest of the machine keeps
    // answering.
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let subsys = syscall_subsys("sys_getrusage");
    let hp = health_slot(&mut vm, subsys);
    for _ in 0..REPAIR_STRIKES {
        vm.call("health_degrade", &[hp, subsys]).unwrap();
    }
    let w = subsys_health_word(&mut vm, subsys);
    assert_eq!(health_state(w), H_RETIRED as u64);
    assert_eq!(health_strikes(w), REPAIR_STRIKES as u64);
    assert_eq!(vm.stats().subsys_retired, 1);

    // Retired is permanent: the repair manager never reschedules it.
    for _ in 0..8 {
        vm.call("irqd_timer_tick", &[0]).unwrap();
    }
    assert_eq!(
        health_state(subsys_health_word(&mut vm, subsys)),
        H_RETIRED as u64,
        "a tick resurrected a retired subsystem"
    );
    assert_eq!(
        vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap(),
        VmExit::Returned(ENOSYS as u64),
        "a retired syscall must answer -ENOSYS"
    );
    // ... without taking the machine down with it.
    assert!(matches!(
        vm.call("sysd_getpid", &[]).unwrap(),
        VmExit::Returned(_)
    ));
}

/// Field-wise `after - before` view of a measurement window.
fn stats_delta(before: &VmStats, after: &VmStats) -> VmStats {
    VmStats {
        instructions: after.instructions - before.instructions,
        cycles: after.cycles - before.cycles,
        traps: after.traps - before.traps,
        range_checks: after.range_checks - before.range_checks,
        context_switches: after.context_switches - before.context_switches,
        interrupts: after.interrupts - before.interrupts,
        cache_hits: after.cache_hits - before.cache_hits,
        page_hits: after.page_hits - before.page_hits,
        tree_walks: after.tree_walks - before.tree_walks,
        singleton_hits: after.singleton_hits - before.singleton_hits,
        violations_recovered: after.violations_recovered - before.violations_recovered,
        pools_quarantined: after.pools_quarantined - before.pools_quarantined,
        pools_poisoned: after.pools_poisoned - before.pools_poisoned,
        domains_pushed: after.domains_pushed - before.domains_pushed,
        domains_popped: after.domains_popped - before.domains_popped,
        watchdog_unwinds: after.watchdog_unwinds - before.watchdog_unwinds,
        fused_execs: after.fused_execs - before.fused_execs,
        repairs: after.repairs - before.repairs,
        pools_repaired: after.pools_repaired - before.pools_repaired,
        probation_passed: after.probation_passed - before.probation_passed,
        probation_failed: after.probation_failed - before.probation_failed,
        subsys_retired: after.subsys_retired - before.subsys_retired,
    }
}

/// The satellite-3 projection: the fusion-invariant equivalence key with
/// the repair-cycle counters ("minus repair counters") also zeroed.
fn repair_scrubbed(mut s: VmStats) -> VmStats {
    s.repairs = 0;
    s.pools_repaired = 0;
    s.probation_passed = 0;
    s.probation_failed = 0;
    s.subsys_retired = 0;
    s.equivalence_key()
}

/// One round of the fixed probe workload the equivalence property
/// measures.
fn probe_round(vm: &mut Vm) {
    assert_eq!(
        vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap(),
        VmExit::Returned(0)
    );
    vm.call("sysd_getpid", &[]).unwrap();
    vm.call("irqd_timer_tick", &[0]).unwrap();
}

/// Boots a nested kernel, optionally drives `sys_getrusage` through a
/// full degrade → repair → probation → live cycle, then measures the
/// stats delta of one probe round (after an identical warmup round, so
/// both machines enter the window with equally warm lookup layers).
fn cycle_then_probe(opt: u8, pre_ticks: u64, fault: bool) -> VmStats {
    let mut vm = make_vm_nested(VmConfig {
        opt_level: opt,
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    for _ in 0..pre_ticks {
        vm.call("irqd_timer_tick", &[0]).unwrap();
    }
    if fault {
        let subsys = syscall_subsys("sys_getrusage");
        for i in 0..vm.pools.len() as u32 {
            vm.pools.pool_mut(MetaPoolId(i)).force_poison(subsys);
        }
        assert_eq!(
            vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap(),
            VmExit::Returned(EFAULT as u64),
            "poisoned pool must fail the syscall"
        );
        assert_eq!(syscall_health(&mut vm, "sys_getrusage"), H_DEGRADED as u64);
        // The machine heals itself: ticks advance the repair manager
        // through the backoff, clean calls spend the probation credits.
        let mut spins = 0;
        loop {
            let st = syscall_health(&mut vm, "sys_getrusage");
            if st == H_LIVE as u64 {
                break;
            } else if st == H_DEGRADED as u64 {
                vm.call("irqd_timer_tick", &[0]).unwrap();
            } else if st == H_PROBATION as u64 {
                assert_eq!(
                    vm.call("sysd_getrusage", &[USER_HEAP_BASE]).unwrap(),
                    VmExit::Returned(0),
                    "a repaired pool must serve probation calls"
                );
            } else {
                panic!("unexpected health state {st}");
            }
            spins += 1;
            assert!(spins < 64, "repair cycle never converged");
        }
        assert_eq!(
            syscall_health_word(&mut vm, "sys_getrusage"),
            0,
            "the live word must clear strikes and backoff"
        );
        assert!(vm.stats().pools_repaired > 0);
        assert_eq!(vm.pools.quarantined_count(), 0);
    }
    probe_round(&mut vm); // warmup
    let before = vm.stats();
    probe_round(&mut vm);
    stats_delta(&before, &vm.stats())
}

#[test]
fn repair_cycle_leaves_machine_equivalent_to_never_faulted() {
    // Property (DESIGN.md §4.8): after a full degrade → repair →
    // probation → live cycle the machine is indistinguishable — on the
    // equivalence key, minus the repair counters themselves — from a
    // machine that never faulted, across random fault seeds (which vary
    // the repair-clock phase the fault lands in) and both opt levels.
    let mut rng: u64 = 0x9e37_79b9_7f4a_7c15;
    for opt in [0u8, 2] {
        for _ in 0..3 {
            // xorshift64 — deterministic, seeds printed on failure.
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let pre_ticks = (rng >> 33) % 5;
            let cycled = cycle_then_probe(opt, pre_ticks, true);
            let clean = cycle_then_probe(opt, pre_ticks, false);
            assert_eq!(
                repair_scrubbed(cycled),
                repair_scrubbed(clean),
                "opt {opt}, pre_ticks {pre_ticks}: a repaired machine must be \
                 equivalent to one that never faulted"
            );
        }
    }
}
