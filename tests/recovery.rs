//! Violation-recovery domains (DESIGN.md §4.3): kernel-mode safety
//! violations unwind to the boot-registered recovery context instead of
//! tearing the machine down, the offending metapool is quarantined, and
//! the recovery machinery costs nothing when unused.

use std::sync::Arc;

use sva::kernel::harness::{boot_user, make_vm, make_vm_recovering, pack_arg, safe_kernel_module};
use sva::kernel::AS_TESTED_EXCLUSIONS;
use sva::rt::MetaPoolId;
use sva::vm::{FaultAction, FaultHook, KernelKind, TrapInfo, Vm, VmConfig, VmError, VmExit};

/// Metapool ids with complete points-to info — the pools whose checks
/// reject unknown addresses, so probes against them trip violations.
fn complete_pools() -> Vec<u32> {
    let vm = make_vm_recovering(VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(MetaPoolId(i)).complete)
        .collect()
}

#[test]
fn recovery_config_is_zero_cost_when_unused() {
    // The opt-in contract, stated the strong way round: on the plain
    // checked kernel (no recovery context, no fault hook), changing the
    // violation budget must not perturb a single counter or output byte.
    let module = safe_kernel_module(AS_TESTED_EXCLUSIONS);
    let mut a = Vm::new(
        module.clone(),
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_a = boot_user(&mut a, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut b = Vm::new(
        module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            violation_budget: 1000,
            ..Default::default()
        },
    )
    .unwrap();
    let exit_b = boot_user(&mut b, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_a, exit_b);
    assert_eq!(a.console_string(), b.console_string());
    assert_eq!(
        a.stats(),
        b.stats(),
        "recovery config leaked into the machine"
    );
    let s = a.stats();
    assert_eq!(s.violations_recovered, 0);
    assert_eq!(s.pools_quarantined, 0);
    assert_eq!(s.pools_poisoned, 0);
}

#[test]
fn recovery_absorbs_kernel_safety_violations() {
    // The buffer-overflow exploit that the plain checked kernel can only
    // catch-and-halt is *survived* by the recovery kernel: the violation
    // unwinds to the boot handler, the pool is quarantined, the faulting
    // user thread gets -EFAULT, and the machine keeps running.
    let mut plain = make_vm(KernelKind::SvaSafe);
    let err = boot_user(&mut plain, "user_exploit_bt", 0).unwrap_err();
    assert!(matches!(err, VmError::Safety(_)));

    let mut vm = make_vm_recovering(VmConfig::default());
    let exit = boot_user(&mut vm, "user_exploit_bt", 0)
        .unwrap_or_else(|e| panic!("recovery kernel must absorb the violation: {e}"));
    // Any orderly exit is acceptable (the exploit may retry into its
    // violation budget and be poisoned-halted); escaping as Err is not.
    let s = vm.stats();
    assert!(
        s.violations_recovered >= 1,
        "no violation recovered: {exit:?}"
    );
    assert!(s.pools_quarantined >= 1);
    assert!(vm.read_global_u64("recov_count").unwrap() >= 1);
    let code = vm.read_global_u64("recov_last_code").unwrap();
    assert_ne!(code & 0xff, 0, "resume code must carry the violation kind");
}

/// Raises a burst of timer IRQs and probes a wild address through a
/// complete pool at the first user→kernel trap, and never again.
struct IrqsThenViolation {
    pool: u32,
}

impl FaultHook for IrqsThenViolation {
    fn on_trap(&self, info: &TrapInfo<'_>) -> FaultAction {
        if info.trap_index != 0 {
            return FaultAction::default();
        }
        FaultAction {
            raise_irqs: 3,
            probe_stale: Some((self.pool, 0x11f0_8000)),
            ..Default::default()
        }
    }
}

#[test]
fn pending_irqs_survive_a_violation_unwind_exactly_once() {
    // IRQs queued before the violation are *pending* when the unwind
    // happens; they must be delivered exactly once after the recovery
    // handler irets back to user mode — not dropped with the unwound
    // frames, not double-delivered.
    let pool = complete_pools()
        .first()
        .copied()
        .expect("kernel has a complete pool");
    let cfg = VmConfig {
        violation_budget: 100,
        fault_hook: Some(Arc::new(IrqsThenViolation { pool })),
        ..Default::default()
    };
    let mut vm = make_vm_recovering(cfg);
    boot_user(&mut vm, "user_getpid_loop", pack_arg(10, 0, 0)).expect("workload survives");
    let s = vm.stats();
    assert_eq!(s.violations_recovered, 1);
    assert_eq!(
        s.interrupts, 3,
        "IRQs pending at the unwind were dropped or double-delivered"
    );
    assert_eq!(vm.read_global_u64("time_ticks").unwrap(), 3);
    assert_eq!(
        vm.pools.quarantined_count(),
        0,
        "recovery handler must release the quarantine"
    );
}

#[test]
fn quarantined_pool_hit_from_kernel_mode_halts_cleanly() {
    // Once a pool is poisoned, any further check against it fails fast
    // with the Quarantined kind — including from a direct kernel-mode
    // call after boot. The recovery handler sees the poison bit in the
    // resume code and halts with abort(41) instead of resuming.
    let mut vm = make_vm_recovering(VmConfig {
        violation_budget: 1,
        ..Default::default()
    });
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    let clean = vm.stats();
    assert_eq!(clean.violations_recovered, 0);

    // Host-side poisoning: with budget 1 the first noted violation
    // quarantines *and* poisons every pool.
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }

    // The recovery context registered at boot persists, so the check
    // failure inside the handler unwinds there.
    let r = vm.call("sys_getrusage", &[sva::kernel::harness::USER_HEAP_BASE]);
    assert_eq!(
        r.unwrap(),
        VmExit::Halted(41),
        "poisoned pool must halt the machine"
    );
    assert_eq!(vm.stats().violations_recovered, 1);
    let code = vm.read_global_u64("recov_last_code").unwrap();
    assert_eq!(code & 0xff, 6, "resume code kind must be Quarantined");
    assert_ne!(code & 0x100, 0, "resume code must carry the poison bit");
}

#[test]
fn fault_plans_drive_the_recovery_kernel_deterministically() {
    // End-to-end slice of the faultcamp campaign: a seeded wild-pointer
    // plan injects real violations, every one is recovered, and the
    // whole run replays bit-identically.
    use sva::inject::{FaultClass, FaultPlan};

    let targets = complete_pools();
    let run = |targets: Vec<u32>| {
        let plan = Arc::new(FaultPlan::new(FaultClass::WildPtr, 7, 2, targets));
        let cfg = VmConfig {
            fault_hook: Some(plan.clone()),
            ..Default::default()
        };
        let mut vm = make_vm_recovering(cfg);
        let r = boot_user(&mut vm, "user_getpid_loop", pack_arg(50, 0, 0));
        (format!("{r:?}"), vm.stats(), plan.injected())
    };
    let a = run(targets.clone());
    let b = run(targets);
    assert!(a.2 > 0, "plan never injected");
    assert!(
        a.1.violations_recovered > 0,
        "injected faults never recovered"
    );
    assert_eq!(a, b, "fault campaign run is not deterministic");
}
