//! SMP machine gates (DESIGN.md §4.9).
//!
//! 1. **N=1 equivalence**: a 1-vCPU [`SmpMachine`] creates no shared
//!    plane and spawns no threads, so its stats must be *byte-identical*
//!    (full `VmStats`, not just the equivalence key) to the classic
//!    single machine across the opt-equivalence kernel corpus.
//! 2. **Shared-plane coherence**: concurrent register/drop racing
//!    checked loads on 2–4 vCPU pool clones must never answer from a
//!    stale epoch (a missed use-after-free) and never miss a violation
//!    — verified both by seeded deterministic schedules against a model
//!    registry and by a free-running multithreaded race.
//! 3. **4-vCPU kernel runs**: merged totals are deterministic, the
//!    virtual-time syscall throughput scales, and IRQ affinity routes
//!    vectors where the policy says.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sva::kernel::harness::{boot_user, make_vm_cfg, pack_arg};
use sva::rt::{CheckKind, MetaPool, SharedMetaPlane};
use sva::vm::{decode_quiesce, IrqAffinity, KernelKind, SmpJob, SmpMachine, VmConfig, VmStats};

fn cfg(kind: KernelKind, opt: u8, vcpus: u32) -> VmConfig {
    VmConfig {
        kind,
        opt_level: opt,
        vcpus,
        ..Default::default()
    }
}

/// The kernel workload corpus the opt-equivalence gates run (program,
/// packed arg).
fn corpus() -> Vec<(&'static str, u64)> {
    vec![
        ("user_getpid_loop", pack_arg(50, 0, 0)),
        ("user_write_loop", pack_arg(20, 64, 0)),
        ("user_openclose_loop", pack_arg(25, 0, 0)),
    ]
}

// ---- 1. N=1 byte-identity -------------------------------------------------

#[test]
fn single_vcpu_machine_is_byte_identical_to_the_classic_machine() {
    for kind in [KernelKind::Native, KernelKind::SvaSafe] {
        for opt in [0u8, 2] {
            for (prog, arg) in corpus() {
                // Classic machine.
                let mut vm = make_vm_cfg(cfg(kind, opt, 1));
                let exit = boot_user(&mut vm, prog, arg).expect("classic boot");
                let classic = vm.stats();

                // 1-vCPU SMP machine, same config.
                let template = make_vm_cfg(cfg(kind, opt, 1));
                let addr = template.func_address(prog).expect("prog exists");
                let mut smp = SmpMachine::new(template);
                assert!(smp.plane().is_none(), "N=1 must not create a plane");
                let report = smp.run(vec![SmpJob::boot_user(prog, addr, arg)]);

                let jr = &report.jobs[0];
                assert_eq!(jr.exit.as_ref().unwrap(), &exit, "{kind:?} {prog}");
                // Full stats — cycles and fused_execs included — must
                // match, which subsumes the equivalence_key gate.
                assert_eq!(jr.stats, classic, "{kind:?} opt{opt} {prog}");
                assert_eq!(
                    jr.stats.equivalence_key(),
                    classic.equivalence_key(),
                    "{kind:?} opt{opt} {prog}"
                );
                assert_eq!(report.merged, classic);
                assert_eq!(report.cpus.len(), 1);
                assert_eq!(report.cpus[0].steals, 0);
            }
        }
    }
}

// ---- 2. shared-plane coherence -------------------------------------------

/// Builds `n` pool clones bound to one plane slot, with `boot` objects
/// adopted as the shared baseline.
fn shared_pools(n: usize, boot: &[(u64, u64)]) -> (Arc<SharedMetaPlane>, Vec<MetaPool>) {
    let plane = Arc::new(SharedMetaPlane::new());
    let slot = plane.add_pool();
    plane.adopt(slot, boot).expect("boot ranges disjoint");
    let pools = (0..n)
        .map(|i| {
            let mut p = MetaPool::new(&format!("smp{i}"), false, true, None);
            p.bind_shared(plane.clone(), slot);
            p
        })
        .collect();
    (plane, pools)
}

/// Deterministic seeded schedules: `k` logical vCPUs interleave
/// register / drop / checked-load steps chosen by an LCG, and every
/// checked load is compared against a model registry. A hit the model
/// says is dead is a stale-epoch answer (missed use-after-free); a miss
/// the model says is live is a lost registration. Both are fatal.
#[test]
fn seeded_schedules_never_see_stale_epochs_or_miss_violations() {
    const STABLE: (u64, u64) = (0x1000, 0x1040);
    for vcpus in 2..=4usize {
        for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
            let (_plane, mut pools) = shared_pools(vcpus, &[STABLE]);
            let mut live: HashSet<u64> = HashSet::new();
            let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut step = || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng >> 33
            };
            for _ in 0..400 {
                let cpu = (step() as usize) % vcpus;
                let obj = 0x10_000 + (step() % 8) * 0x100; // 8 slots, 64B objects
                match step() % 4 {
                    // Register: succeeds iff the model says dead.
                    0 => {
                        let r = pools[cpu].reg_obj(obj, 64);
                        if live.insert(obj) {
                            r.unwrap_or_else(|e| panic!("seed {seed}: lost registration: {e}"));
                        } else {
                            let e = r.expect_err("double registration must fail");
                            assert_eq!(e.kind, CheckKind::BadRegistration);
                        }
                    }
                    // Drop: succeeds iff the model says live.
                    1 => {
                        let r = pools[cpu].drop_obj(obj);
                        if live.remove(&obj) {
                            r.unwrap_or_else(|e| panic!("seed {seed}: lost drop: {e}"));
                        } else {
                            let e = r.expect_err("freeing a dead object must fail");
                            assert_eq!(e.kind, CheckKind::IllegalFree);
                        }
                    }
                    // Checked load on a churn object: pass iff live.
                    2 => {
                        let r = pools[cpu].ls_check(obj + 8);
                        if live.contains(&obj) {
                            r.unwrap_or_else(|e| {
                                panic!("seed {seed}: checked load lost a live object: {e}")
                            });
                        } else {
                            assert!(
                                r.is_err(),
                                "seed {seed}: stale hit on dead {obj:#x} (missed violation)"
                            );
                        }
                    }
                    // Checked load on the stable boot object: always live,
                    // from every vCPU, at every epoch.
                    _ => {
                        pools[cpu]
                            .ls_check(STABLE.0 + 0x10)
                            .expect("stable object must stay visible");
                    }
                }
            }
            // Every vCPU sees the final model state.
            for (i, p) in pools.iter_mut().enumerate() {
                for slot in 0..8u64 {
                    let obj = 0x10_000 + slot * 0x100;
                    let r = p.ls_check(obj + 8);
                    assert_eq!(
                        r.is_ok(),
                        live.contains(&obj),
                        "seed {seed}: vCPU {i} disagrees with model on {obj:#x}"
                    );
                }
            }
        }
    }
}

/// Free-running race: one writer vCPU churns register/drop while reader
/// vCPUs hammer checked loads through their own `MetaPool` clones. The
/// stable object must never miss; after the writer quiesces with the
/// churn object dropped, a hit on it would be a stale-epoch answer.
#[test]
fn racing_checked_loads_never_use_stale_metadata() {
    const STABLE: (u64, u64) = (0x1000, 0x1040);
    const CHURN: u64 = 0x8000;
    for readers in [1usize, 3] {
        let (plane, mut pools) = shared_pools(readers + 1, &[STABLE]);
        let mut writer_pool = pools.pop().unwrap();
        let quiesced = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            let q = quiesced.clone();
            let p = plane.clone();
            s.spawn(move || {
                for _ in 0..300 {
                    writer_pool.reg_obj(CHURN, 32).expect("churn register");
                    writer_pool.drop_obj(CHURN).expect("churn drop");
                }
                let _ = p; // plane outlives the writer's bindings
                q.store(1, Ordering::Release);
            });
            for mut pool in pools {
                let q = quiesced.clone();
                s.spawn(move || {
                    while q.load(Ordering::Acquire) == 0 {
                        pool.ls_check(STABLE.0 + 8)
                            .expect("stable object must never miss");
                    }
                    // Writer done, churn object dead: a passing check
                    // here means a reader used retired metadata.
                    assert!(
                        pool.ls_check(CHURN + 8).is_err(),
                        "stale hit on dropped churn object"
                    );
                    assert!(pool.ls_check(STABLE.0 + 8).is_ok());
                });
            }
        });
        // All snapshots pinned by exited vCPUs have been reclaimed.
        assert_eq!(plane.retired_live(), 0);
    }
}

// ---- 3. multi-vCPU kernel runs -------------------------------------------

fn smp_jobs(template: &sva::vm::Vm, reps: usize) -> Vec<SmpJob> {
    let mut jobs = Vec::new();
    for _ in 0..reps {
        for (prog, arg) in corpus() {
            let addr = template.func_address(prog).expect("prog exists");
            jobs.push(SmpJob::boot_user(prog, addr, arg));
        }
    }
    jobs
}

#[test]
fn four_vcpu_kernel_batch_is_clean_and_deterministic() {
    let run = || {
        let template = make_vm_cfg(cfg(KernelKind::SvaSafe, 2, 4));
        let jobs = smp_jobs(&template, 2);
        let mut smp = SmpMachine::new(template);
        assert!(smp.plane().is_some());
        smp.run(jobs)
    };
    let a = run();
    let b = run();
    assert!(a.failures().is_empty(), "failures: {:?}", a.failures());
    assert_eq!(a.jobs.len(), 6);
    assert!(a.final_epoch > 0, "shared plane saw no publishes");
    assert_eq!(a.retired_snapshots, 0, "snapshots leaked past quiescence");
    // Work-conserving: every job ran exactly once, whatever the steal
    // schedule did.
    assert_eq!(a.cpus.iter().map(|c| u64::from(c.jobs)).sum::<u64>(), 6);
    // The merged machine totals are schedule-independent. (The split
    // between MRU hits and snapshot layers is not: a sibling's publish
    // can kill an MRU line, so only the lookup *sum* is stable.)
    assert_eq!(a.merged.instructions, b.merged.instructions);
    assert_eq!(a.merged.traps, b.merged.traps);
    assert_eq!(a.merged.cycles, b.merged.cycles);
    assert_eq!(
        a.merged.cache_hits + a.merged.page_hits + a.merged.tree_walks + a.merged.singleton_hits,
        b.merged.cache_hits + b.merged.page_hits + b.merged.tree_walks + b.merged.singleton_hits,
    );
    // Jobs land in submission order with their labels intact.
    assert_eq!(a.jobs[0].label, "user_getpid_loop");
    for (i, j) in a.jobs.iter().enumerate() {
        assert_eq!(j.job, i);
    }
}

#[test]
fn virtual_time_syscall_throughput_scales_with_vcpus() {
    let throughput = |vcpus: u32| {
        let template = make_vm_cfg(cfg(KernelKind::SvaSafe, 2, vcpus));
        let jobs = smp_jobs(&template, vcpus as usize);
        let mut smp = SmpMachine::new(template);
        let r = smp.run(jobs);
        assert!(r.failures().is_empty());
        r.syscalls_per_mcycle()
    };
    let t1 = throughput(1);
    let t4 = throughput(4);
    assert!(
        t4 > 2.5 * t1,
        "4-vCPU throughput {t4:.1} syscalls/Mcycle is not >2.5x the 1-vCPU {t1:.1}"
    );
}

#[test]
fn irq_affinity_routes_vectors_where_the_policy_says() {
    let build = |aff: IrqAffinity| {
        let mut c = cfg(KernelKind::SvaSafe, 2, 4);
        c.irq_affinity = aff;
        let template = make_vm_cfg(c);
        let jobs = smp_jobs(&template, 4);
        let mut smp = SmpMachine::new(template);
        for _ in 0..3 {
            smp.queue_irq(0); // the timer vector
        }
        smp.run(jobs)
    };

    // Pin(2): only vCPU 2 may see vectors, and if it ran any job its
    // first one drained all three.
    let r = build(IrqAffinity::Pin(2));
    for c in &r.cpus {
        if c.cpu != 2 {
            assert_eq!(c.irqs_routed, 0, "vector leaked off the pinned vCPU");
        }
    }
    if r.cpus[2].jobs > 0 {
        assert_eq!(r.cpus[2].irqs_routed, 3);
    }

    // Spread: the three vectors land on round-robin vCPUs 0, 1, 2 —
    // vCPU 3 must stay clean; each target that ran a job routed one.
    let r = build(IrqAffinity::Spread);
    assert_eq!(r.cpus[3].irqs_routed, 0);
    for c in &r.cpus[..3] {
        if c.jobs > 0 {
            assert_eq!(c.irqs_routed, 1, "vCPU {} routed wrong count", c.cpu);
        }
    }

    // Broadcast: every vCPU that ran a job saw all three vectors.
    let r = build(IrqAffinity::Broadcast);
    for c in &r.cpus {
        if c.jobs > 0 {
            assert_eq!(c.irqs_routed, 3, "vCPU {} missed the broadcast", c.cpu);
        }
    }
    assert!(r.failures().is_empty());
}

// ---- 4. coordinated quiesce snapshots (DESIGN.md §4.10) -------------------

/// Fuel each corpus workload consumes booting clean on this config —
/// `min/2` is a boundary every quiesce member still hits mid-flight.
fn midflight_boundary(c: &VmConfig) -> u64 {
    let mut min = u64::MAX;
    for (prog, arg) in corpus() {
        let mut vm = make_vm_cfg(c.clone());
        let start = vm.fuel();
        boot_user(&mut vm, prog, arg).expect("clean boot");
        min = min.min(start - vm.fuel());
    }
    assert!(min > 4, "corpus boots too short to cut mid-flight");
    min / 2
}

/// The merged-machine equivalence key for SMP resume probes: a sibling's
/// epoch publish can kill an MRU cache line at a schedule-dependent
/// instruction, so only the `cache_hits + page_hits` *sum* is stable
/// between a threaded run and its serially resumed twin.
fn smp_key(s: &VmStats) -> VmStats {
    let mut k = (*s).equivalence_key();
    k.cache_hits += k.page_hits;
    k.page_hits = 0;
    k
}

/// The §4.10 acceptance gate: a 4-vCPU `quiesce()` yields one
/// coordinated image whose members a fresh machine restores
/// (`resume_quiesced`), and the resumed run finishes exactly like the
/// uninterrupted one — same exits, consoles and equivalence keys.
#[test]
fn four_vcpu_quiesce_image_resumes_to_the_same_terminal_state() {
    let c = cfg(KernelKind::SvaSafe, 2, 4);
    let boundary = midflight_boundary(&c);

    let template = make_vm_cfg(c.clone());
    let jobs: Vec<SmpJob> = corpus()
        .iter()
        .cycle()
        .take(4)
        .map(|(prog, arg)| {
            let addr = template.func_address(prog).expect("prog exists");
            SmpJob::boot_user(*prog, addr, *arg)
        })
        .collect();
    let mut smp = SmpMachine::new(template);
    let out = smp.quiesce(jobs, boundary);
    assert!(
        out.report.failures().is_empty(),
        "quiesce run failed: {:?}",
        out.report.failures()
    );
    let members = decode_quiesce(&out.image).expect("SVAQ container decodes");
    assert_eq!(members.len(), 4, "one member image per vCPU");

    let mut fresh = SmpMachine::new(make_vm_cfg(c));
    let resumed = fresh
        .resume_quiesced(&out.image)
        .expect("coordinated image restores");
    assert_eq!(resumed.jobs.len(), 4);
    for (a, b) in out.report.jobs.iter().zip(&resumed.jobs) {
        assert_eq!(
            format!("{:?}", a.exit),
            format!("{:?}", b.exit),
            "vCPU {} exit diverged after resume",
            a.cpu
        );
        assert_eq!(a.console, b.console, "vCPU {} console diverged", a.cpu);
        assert_eq!(
            smp_key(&a.stats),
            smp_key(&b.stats),
            "vCPU {} stats diverged after resume",
            a.cpu
        );
    }
}

/// At N=1 the quiesce member takes exactly the classic machine's
/// snapshot-latch path, so its bytes must equal a solo mid-flight
/// snapshot of the same fork at the same boundary — the coordinated
/// container adds framing, never reinterpretation.
#[test]
fn single_vcpu_quiesce_member_is_byte_identical_to_a_solo_midflight_snapshot() {
    let c = cfg(KernelKind::SvaSafe, 2, 1);
    let boundary = midflight_boundary(&c);
    let (prog, arg) = corpus()[0];

    let template = make_vm_cfg(c);
    let addr = template.func_address(prog).expect("prog exists");
    let mut smp = SmpMachine::new(template);
    let out = smp.quiesce(vec![SmpJob::boot_user(prog, addr, arg)], boundary);
    assert!(out.report.failures().is_empty());
    let members = decode_quiesce(&out.image).expect("SVAQ container decodes");
    assert_eq!(members.len(), 1);

    // The classic path: same fork, same latch, solo sink.
    let mut solo = smp.template().fork_for_cpu(0);
    solo.write_global_u64("boot_user_prog", addr).unwrap();
    solo.write_global_u64("boot_user_arg", arg).unwrap();
    solo.request_snapshot_at(boundary);
    let captured = Arc::new(std::sync::Mutex::new(None));
    let slot = captured.clone();
    solo.set_snapshot_sink(Arc::new(move |img: Vec<u8>| {
        *slot.lock().unwrap() = Some(img);
    }));
    let exit = solo.boot().expect("solo boot");
    assert_eq!(
        format!("{exit:?}"),
        format!("{:?}", out.report.jobs[0].exit.as_ref().unwrap())
    );
    let solo_img = captured
        .lock()
        .unwrap()
        .take()
        .expect("solo latch fired before terminal state");
    assert_eq!(
        members[0], solo_img,
        "N=1 quiesce member is not byte-identical to the classic mid-flight snapshot"
    );
}

// ---- 5. Exploit detection under SMP ---------------------------------------

/// The §7.2 exploit suite run as SMP jobs: the detection rate must be
/// exactly 4/5 (the paper's as-tested result) at every vCPU count —
/// sharding the check path behind the epoch-published plane can neither
/// open nor close a detection gap.
#[test]
fn exploit_detection_is_vcpu_invariant() {
    use sva::exploits::{EXPLOITS, EXPLOIT_FUEL};
    use sva::kernel::harness::safe_kernel_module;
    use sva::kernel::AS_TESTED_EXCLUSIONS;
    use sva::vm::{Vm, VmError};

    for vcpus in [1u32, 2, 4] {
        let template = Vm::new(
            safe_kernel_module(AS_TESTED_EXCLUSIONS),
            VmConfig {
                kind: KernelKind::SvaSafe,
                fuel: EXPLOIT_FUEL,
                vcpus,
                ..Default::default()
            },
        )
        .expect("kernel loads");
        let jobs: Vec<SmpJob> = EXPLOITS
            .iter()
            .map(|e| {
                let addr = template.func_address(e.program).expect("exploit program");
                SmpJob::boot_user(e.name, addr, 0)
            })
            .collect();
        let mut smp = SmpMachine::new(template);
        let report = smp.run(jobs);
        let caught: Vec<&str> = report
            .jobs
            .iter()
            .filter(|j| matches!(j.exit, Err(VmError::Safety(_))))
            .map(|j| j.label.as_str())
            .collect();
        assert_eq!(
            caught.len(),
            4,
            "{vcpus} vCPUs: expected 4/5 exploits caught, got {caught:?}"
        );
    }
}
