//! Crash-bundle round trips (DESIGN.md §4.7): a machine death captured
//! into a bundle must (a) survive the wire format losslessly, (b) replay
//! to the identical halt code, resume code and console at every
//! optimization tier, and (c) be rejected fail-closed when truncated or
//! corrupted — a forensic artifact that parses is trustworthy, full stop.

use sva::kernel::harness::{boot_user, make_vm_recovering_traced, USER_HEAP_BASE};
use sva::kernel::postmortem::{check_reproduction, replay, ReplayExit};
use sva::rt::{CheckKind, MetaPoolId};
use sva::trace::FlightRecorder;
use sva::vm::{check_kind_code, BundleError, CrashBundle, CrashReason, VmConfig, VmExit};

/// Drives a recovering machine into the poisoned-pool abort(41) death
/// with crash capture on, and returns the captured bundle.
fn halt_bundle(opt_level: u8) -> CrashBundle {
    let mut vm = make_vm_recovering_traced(
        VmConfig {
            violation_budget: 1,
            opt_level,
            ..Default::default()
        },
        FlightRecorder::default(),
    );
    vm.enable_crash_capture(None, "test");
    boot_user(&mut vm, "user_hello", 0).expect("clean boot");
    for i in 0..vm.pools.len() as u32 {
        vm.pools.pool_mut(MetaPoolId(i)).note_violation(1);
    }
    let r = vm.call("sys_getrusage", &[USER_HEAP_BASE]).unwrap();
    assert_eq!(r, VmExit::Halted(41), "poisoned pool must halt");
    vm.take_crash_bundle().expect("halt must capture a bundle")
}

#[test]
fn halt_bundle_round_trips_and_replays_exactly() {
    for opt_level in [0u8, 2] {
        let bundle = halt_bundle(opt_level);
        assert_eq!(bundle.reason, CrashReason::Halt);
        assert_eq!(bundle.halt_code, 41);
        let rc = bundle.resume_code().expect("resume code recorded");
        assert_eq!(
            rc.kind,
            check_kind_code(CheckKind::Quarantined),
            "opt {opt_level}: {rc}"
        );
        assert!(rc.poisoned, "opt {opt_level}: {rc}");
        assert_eq!(bundle.vm_config().unwrap().opt_level, opt_level);
        assert!(
            !bundle.flight.is_empty(),
            "flight tail must ride in the bundle"
        );

        // Lossless wire round trip.
        let back = CrashBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(back, bundle, "opt {opt_level}: wire round trip lossy");

        // The deserialized bundle replays to the identical death.
        let r = replay(&back).unwrap_or_else(|e| panic!("opt {opt_level}: replay: {e}"));
        assert_eq!(r.flavor, "recovering");
        assert!(
            matches!(r.exit, ReplayExit::Halted(41)),
            "opt {opt_level}: {}",
            r.exit
        );
        assert_eq!(r.resume_code_raw, bundle.resume_code_raw);
        assert_eq!(r.console, bundle.console);
        check_reproduction(&back, &r)
            .unwrap_or_else(|e| panic!("opt {opt_level}: not reproduced: {e}"));
    }
}

#[test]
fn bundle_parsing_is_fail_closed() {
    let bytes = halt_bundle(0).to_bytes();

    // Truncation anywhere — inside the header, inside the payload, one
    // byte short — is rejected as Truncated, never partially parsed.
    for cut in [0, 3, 12, 23, 24, bytes.len() / 2, bytes.len() - 1] {
        match CrashBundle::from_bytes(&bytes[..cut]) {
            Err(BundleError::Truncated { .. }) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }

    // A wrong magic is not a bundle at all.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        CrashBundle::from_bytes(&bad),
        Err(BundleError::BadMagic(_))
    ));

    // An unknown format version is refused outright.
    let mut bad = bytes.clone();
    bad[4] = 0x7f;
    assert!(matches!(
        CrashBundle::from_bytes(&bad),
        Err(BundleError::BadVersion { .. })
    ));

    // Any flipped payload bit trips the checksum.
    for pos in [24, 40, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        assert!(
            matches!(
                CrashBundle::from_bytes(&bad),
                Err(BundleError::Corrupt { .. })
            ),
            "flip at {pos} must fail the checksum"
        );
    }

    // Trailing garbage after the advertised payload is rejected too: a
    // bundle is one artifact, not a container.
    let mut bad = bytes.clone();
    bad.push(0);
    assert!(CrashBundle::from_bytes(&bad).is_err());

    // And the untampered bytes still parse (the fixture is valid).
    CrashBundle::from_bytes(&bytes).unwrap();
}
