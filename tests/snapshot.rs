//! Integration gates for machine snapshots (DESIGN.md §4.6).
//!
//! The contract under test: `snapshot → restore → run ≡ run`. An image
//! taken at *any* instruction boundary, restored into a freshly
//! constructed machine, must finish with a byte-identical exit, stats
//! block, console and check counters — the property the snapshot-forked
//! faultcamp and the nightly golden-image cross-check both stand on.
//! Four angles:
//!
//! * **generated programs** — random counted loops and op chains cut at
//!   a random boundary, at `opt_level` 0 and 2;
//! * **the real kernel** — syscall workloads interrupted mid-boot and
//!   resumed in a fresh machine, with and without a tracer attached;
//! * **rejection paths** — cross-kind, cross-opt-level and cross-module
//!   restores must fail with the *named* structured error, and a
//!   rejected restore must leave the machine runnable;
//! * **fork ≡ reboot** — a miniature faultcamp grid run both ways
//!   (restore-from-boot-image vs fresh re-boot) must agree byte-for-byte.

use std::sync::Arc;

use proptest::prelude::*;

use sva::inject::{DropRecorder, FaultClass, FaultPlan};
use sva::ir::parse::parse_module;
use sva::kernel::harness::{
    boot_user, boot_user_paused, make_vm, make_vm_cfg, make_vm_nested, make_vm_recovering_traced,
    pack_arg,
};
use sva::rt::MetaPoolId;
use sva::vm::{KernelKind, RingTracer, SnapshotError, Vm, VmConfig, VmError, VmExit, VmStats};

// --- generated programs --------------------------------------------------

/// A counted loop with a dependent multiply-add-xor body (the same shape
/// `tests/opt_equiv.rs` uses, so fusion sites exist at `opt_level` 2).
fn loop_prog(trip: u64, mul: u64, add: u64, xor: u64) -> String {
    format!(
        r#"
module "m"
func public @work(%n0: i64) : i64 {{
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, body: %i2]
  %acc:i64 = phi i64 [entry: %n0, body: %acc3]
  %done:i1 = icmp uge %i, {trip}:i64
  condbr %done, out, body
body:
  %t:i64 = mul %acc, {mul}:i64
  %acc2:i64 = add %t, {add}:i64
  %acc3:i64 = xor %acc2, {xor}:i64
  %i2:i64 = add %i, 1:i64
  br loop
out:
  ret %acc
}}
"#
    )
}

/// A straight-line chain `%v{k+1} = op %v{k}, c`.
fn chain_prog(ops: &[(u8, u64)]) -> String {
    let mut body = String::new();
    for (k, (op, c)) in ops.iter().enumerate() {
        let name = ["add", "sub", "mul", "and", "or", "xor", "shl"][*op as usize % 7];
        body.push_str(&format!("  %v{}:i64 = {name} %v{k}, {c}:i64\n", k + 1));
    }
    format!(
        "module \"m\"\nfunc public @work(%v0: i64) : i64 {{\nentry:\n{body}  ret %v{}\n}}\n",
        ops.len()
    )
}

fn toy_vm(src: &str, opt_level: u8, fuel: u64) -> Vm {
    Vm::new(
        parse_module(src).unwrap(),
        VmConfig {
            kind: KernelKind::SvaLlvm,
            opt_level,
            fuel,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Runs `@work(arg)` uninterrupted, then again cut at instruction
/// boundary `cut` (modulo the run's length), snapshotted, restored into a
/// fresh machine and resumed — and asserts the two runs are
/// indistinguishable.
fn assert_cut_invisible(src: &str, opt_level: u8, arg: u64, cut: u64) {
    let mut base = toy_vm(src, opt_level, u64::MAX);
    let exit = base.call("work", &[arg]).unwrap();
    let base_stats = base.stats();

    // Land the cut strictly inside the run. Fuel is charged per dispatch
    // (a fused pair costs one unit), so measure the run's length in fuel
    // actually consumed, not in guest instructions.
    let consumed = u64::MAX - base.fuel();
    let cut = cut % consumed.max(1);
    let mut vm = toy_vm(src, opt_level, cut);
    match vm.call("work", &[arg]) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("cut {cut} did not interrupt: {r:?}"),
    }
    let img = vm.snapshot();

    let mut fresh = toy_vm(src, opt_level, cut);
    fresh.restore(&img).unwrap();
    assert_eq!(
        fresh.fuel(),
        0,
        "restored fuel must equal the cut remainder"
    );
    fresh.set_fuel(u64::MAX);
    let r = fresh.run().unwrap();
    assert_eq!(r, exit, "opt {opt_level} cut {cut}: exit diverged");
    assert_eq!(
        fresh.stats(),
        base_stats,
        "opt {opt_level} cut {cut}: stats diverged"
    );

    // Restoring the same image a second time into the same machine must
    // replay identically (restore is a full overwrite, not a delta).
    fresh.restore(&img).unwrap();
    fresh.set_fuel(u64::MAX);
    assert_eq!(fresh.run().unwrap(), exit);
    assert_eq!(fresh.stats(), base_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loop_programs_round_trip_at_any_boundary(
        trip in 1u64..64,
        mul in 1u64..1_000_000,
        add in any::<u32>(),
        xor in any::<u32>(),
        arg in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let src = loop_prog(trip, mul, add as u64, xor as u64);
        assert_cut_invisible(&src, 0, arg, cut);
        assert_cut_invisible(&src, 2, arg, cut);
    }

    #[test]
    fn chain_programs_round_trip_at_any_boundary(
        ops in prop::collection::vec((0u8..7, 0u64..1_000_000), 2..24),
        arg in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let src = chain_prog(&ops);
        assert_cut_invisible(&src, 0, arg, cut);
        assert_cut_invisible(&src, 2, arg, cut);
    }
}

// --- the real kernel -----------------------------------------------------

/// Everything observable about a finished kernel run.
fn observe(vm: &Vm, exit: &Result<VmExit, VmError>) -> (String, VmStats, Vec<u8>, String) {
    (
        format!("{exit:?}"),
        vm.stats(),
        vm.console.clone(),
        format!("{:?}", vm.pools.total_stats()),
    )
}

/// Boots `prog` uninterrupted, then boots it again under a fuel tank
/// narrowed to half the run's instruction count, snapshots at the
/// out-of-fuel boundary, restores into a fresh machine and resumes.
#[test]
fn kernel_workloads_round_trip_mid_boot() {
    for (prog, iters, size) in [
        ("user_getpid_loop", 50, 0),
        ("user_write_loop", 20, 64),
        ("user_openclose_loop", 30, 0),
    ] {
        let arg = pack_arg(iters, size, 0);
        let mut base = make_vm(KernelKind::SvaSafe);
        let r = boot_user(&mut base, prog, arg);
        let want = observe(&base, &r);
        let cut = (u64::MAX - base.fuel()) / 2;

        let mut vm = make_vm_cfg(VmConfig {
            kind: KernelKind::SvaSafe,
            fuel: cut,
            ..Default::default()
        });
        match boot_user(&mut vm, prog, arg) {
            Err(VmError::OutOfFuel) => {}
            r => panic!("{prog}: cut at {cut} did not interrupt: {r:?}"),
        }
        let img = vm.snapshot();

        let mut fresh = make_vm(KernelKind::SvaSafe);
        fresh.restore(&img).unwrap();
        fresh.set_fuel(u64::MAX);
        let r = fresh.run();
        assert_eq!(observe(&fresh, &r), want, "{prog}: resumed run diverged");
    }
}

/// The post-boot pause point (`boot_user_paused`) is the snapshot point
/// svaprof and faultcamp use: resuming the *paused* machine and running a
/// *restored* machine must both match an uninterrupted boot.
#[test]
fn paused_boot_image_resumes_identically() {
    let arg = pack_arg(60, 0, 0);
    let mut base = make_vm(KernelKind::SvaSafe);
    let r = boot_user(&mut base, "user_getpid_loop", arg);
    let want = observe(&base, &r);

    let mut vm = make_vm(KernelKind::SvaSafe);
    assert!(matches!(
        boot_user_paused(&mut vm, "user_getpid_loop", arg),
        Ok(None)
    ));
    let img = vm.snapshot();

    // The paused machine itself resumes to the same end state.
    let r = vm.run();
    assert_eq!(observe(&vm, &r), want, "paused machine diverged on resume");

    // A fresh machine restored from the pause-point image does too.
    let mut fresh = make_vm(KernelKind::SvaSafe);
    fresh.restore(&img).unwrap();
    let r = fresh.run();
    assert_eq!(observe(&fresh, &r), want, "restored machine diverged");

    // And the image itself is deterministic — two identically configured
    // boots produce byte-identical images (what lets the nightly golden
    // artifact be diffed across runs at all).
    let mut vm2 = make_vm(KernelKind::SvaSafe);
    assert!(matches!(
        boot_user_paused(&mut vm2, "user_getpid_loop", arg),
        Ok(None)
    ));
    assert_eq!(
        img,
        vm2.snapshot(),
        "pause-point image is not deterministic"
    );
}

/// An attached tracer must not perturb the snapshot contract: a traced
/// machine cut mid-boot restores into a fresh traced machine and finishes
/// with identical guest-visible state. (The tracer's own ring is scratch
/// diagnostics and is deliberately not serialized.)
#[test]
fn traced_machines_round_trip() {
    let arg = pack_arg(25, 0, 0);
    let cfg = || VmConfig {
        kind: KernelKind::SvaSafe,
        ..Default::default()
    };
    let mut base = make_vm_recovering_traced(cfg(), RingTracer::default());
    let r = boot_user(&mut base, "user_openclose_loop", arg);
    let want = observe_traced(&base, &r);
    let cut = (u64::MAX - base.fuel()) / 3;

    let mut vm = make_vm_recovering_traced(VmConfig { fuel: cut, ..cfg() }, RingTracer::default());
    match boot_user(&mut vm, "user_openclose_loop", arg) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("cut at {cut} did not interrupt: {r:?}"),
    }
    let img = vm.snapshot();

    let mut fresh = make_vm_recovering_traced(cfg(), RingTracer::default());
    fresh.restore(&img).unwrap();
    fresh.set_fuel(u64::MAX);
    let r = fresh.run();
    assert_eq!(observe_traced(&fresh, &r), want, "traced resume diverged");
}

fn observe_traced(
    vm: &Vm<RingTracer>,
    exit: &Result<VmExit, VmError>,
) -> (String, VmStats, Vec<u8>, String) {
    (
        format!("{exit:?}"),
        vm.stats(),
        vm.console.clone(),
        format!("{:?}", vm.pools.total_stats()),
    )
}

// --- rejection paths -----------------------------------------------------

/// Cross-configuration restores must fail with a `ConfigMismatch` naming
/// the exact field, cross-module restores with `CodeMismatch` — and the
/// rejected machine must stay fully runnable.
#[test]
fn kernel_restore_rejects_mismatched_machines() {
    let arg = pack_arg(10, 0, 0);
    let mut vm = make_vm(KernelKind::SvaSafe);
    assert!(matches!(
        boot_user_paused(&mut vm, "user_getpid_loop", arg),
        Ok(None)
    ));
    let img = vm.snapshot();

    // Wrong kernel kind. The config fingerprint is checked before code
    // identity, so the error names the field even though the module also
    // differs.
    let mut other = make_vm(KernelKind::SvaLlvm);
    match other.restore(&img) {
        Err(SnapshotError::ConfigMismatch { field: "kind", .. }) => {}
        r => panic!("expected kind mismatch, got {r:?}"),
    }

    // Wrong opt level, same kernel.
    let mut other = make_vm_cfg(VmConfig {
        kind: KernelKind::SvaSafe,
        opt_level: 2,
        ..Default::default()
    });
    match other.restore(&img) {
        Err(SnapshotError::ConfigMismatch {
            field: "opt_level",
            image: 0,
            machine: 2,
        }) => {}
        r => panic!("expected opt_level mismatch, got {r:?}"),
    }

    // Wrong violation budget, same kernel.
    let mut other = make_vm_cfg(VmConfig {
        kind: KernelKind::SvaSafe,
        violation_budget: 9,
        ..Default::default()
    });
    assert!(matches!(
        other.restore(&img),
        Err(SnapshotError::ConfigMismatch {
            field: "violation_budget",
            ..
        })
    ));

    // Same config fingerprint, different code: the recovery kernel is a
    // different module build at the same `SvaSafe` kind.
    let mut other = make_vm_nested(VmConfig::default());
    assert!(matches!(
        other.restore(&img),
        Err(SnapshotError::CodeMismatch { .. })
    ));

    // Every rejection above left `other` untouched — it still boots.
    assert!(boot_user(&mut other, "user_getpid_loop", arg).is_ok());

    // Header damage on the kernel-sized image fails closed the same way
    // the toy-program unit tests prove, and the target machine survives.
    let mut target = make_vm(KernelKind::SvaSafe);
    let mut bad = img.clone();
    bad[0] ^= 0x40;
    assert!(matches!(
        target.restore(&bad),
        Err(SnapshotError::BadMagic(_))
    ));
    let mut bad = img.clone();
    bad[4] = bad[4].wrapping_add(3);
    assert!(matches!(
        target.restore(&bad),
        Err(SnapshotError::BadVersion { .. })
    ));
    let mut bad = img.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x10;
    assert!(matches!(
        target.restore(&bad),
        Err(SnapshotError::Corrupt { .. })
    ));
    assert!(matches!(
        target.restore(&img[..img.len() / 3]),
        Err(SnapshotError::Truncated { .. })
    ));
    let r = boot_user(&mut target, "user_getpid_loop", arg);
    let mut base = make_vm(KernelKind::SvaSafe);
    let want = boot_user(&mut base, "user_getpid_loop", arg);
    assert_eq!(format!("{r:?}"), format!("{want:?}"));
    assert_eq!(target.stats(), base.stats());
}

// --- fork ≡ reboot -------------------------------------------------------

/// Metapool ids with complete points-to info in the nested kernel (the
/// probe targets faultcamp uses).
fn complete_pools(vm: &Vm) -> Vec<u32> {
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(MetaPoolId(i)).complete)
        .collect()
}

/// A miniature faultcamp grid run both ways: fork mode (one boot image
/// per column, restore + re-arm per cell) versus reboot mode (fresh
/// translate + boot per cell). Every cell must agree byte-for-byte —
/// the invariant the full campaign's `--verify-reboot` sweep checks at
/// scale, gated here on every `cargo test`.
#[test]
fn forked_faultcamp_cells_match_fresh_reboots() {
    const FUEL: u64 = 3_000_000;
    const BUDGET: u32 = 3;
    let arg = pack_arg(40, 0, 0);
    let cfg = |hook| VmConfig {
        fuel: FUEL,
        violation_budget: BUDGET,
        fault_hook: hook,
        ..Default::default()
    };

    // Boot the column image once, recording boot-time pool drops so the
    // per-cell plans can learn the same state a boot-armed plan would.
    let rec = Arc::new(DropRecorder::new());
    let mut boot_vm = make_vm_nested(cfg(Some(rec.clone())));
    let targets = complete_pools(&boot_vm);
    assert!(matches!(
        boot_user_paused(&mut boot_vm, "user_openclose_loop", arg),
        Ok(None)
    ));
    let image = boot_vm.snapshot();
    let boot_drops = rec.drops();

    // One translated scratch machine serves every forked cell.
    let mut scratch = make_vm_nested(cfg(None));

    for class in [FaultClass::WildPtr, FaultClass::StaleUse] {
        for seed in [1u64, 5] {
            // Fork: restore the boot image, arm a fresh plan, run.
            let plan = Arc::new(FaultPlan::new(class, seed, 2, targets.clone()));
            scratch.restore(&image).unwrap();
            scratch.arm_faults(plan.clone());
            plan.replay_drops(&boot_drops);
            let r = scratch.run();
            let forked = (
                format!("{r:?}"),
                plan.injected(),
                scratch.stats().equivalence_key(),
            );

            // Reboot: fresh machine, plan armed from the very start.
            let plan = Arc::new(FaultPlan::new(class, seed, 2, targets.clone()));
            let mut vm = make_vm_nested(cfg(Some(plan.clone())));
            let r = boot_user(&mut vm, "user_openclose_loop", arg);
            let rebooted = (
                format!("{r:?}"),
                plan.injected(),
                vm.stats().equivalence_key(),
            );

            assert_eq!(
                forked, rebooted,
                "{class:?} seed {seed}: fork diverged from reboot"
            );
        }
    }
}
