//! End-to-end pipeline tests across crates: textual bytecode → safety
//! compiler → verifier → SVM, plus the trust-boundary behaviors the paper
//! specifies (signed bytecode, rejected tampering, check semantics).

use sva::analysis::AnalysisConfig;
use sva::core::compile::{compile, CompileOptions};
use sva::core::verifier::{typecheck_module, verify_and_insert_checks};
use sva::ir::bytecode::{decode_module, encode_module, SignedModule};
use sva::ir::parse::parse_module;
use sva::vm::{KernelKind, Vm, VmConfig, VmError, VmExit};

const ALLOC_PRELUDE: &str = r#"
global @brk : i64 = bytes x0000201000000000
func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
func public @kfree(%p: i8*) : void {
entry:
  ret
}
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0
"#;

fn build(src: &str) -> sva::ir::Module {
    let full = format!("module \"t\"\n{ALLOC_PRELUDE}\n{src}");
    let m = parse_module(&full).expect("parse");
    let errs = sva::ir::verify::verify_module(&m);
    assert!(errs.is_empty(), "{errs:?}");
    m
}

fn safe_vm(src: &str) -> Vm {
    let m = build(src);
    let compiled = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
    let verified = verify_and_insert_checks(compiled.module).expect("verifies");
    Vm::new(
        verified.module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .expect("load")
}

#[test]
fn overflow_caught_exactly_at_boundary() {
    let mut vm = safe_vm(
        r#"
func public @poke(%idx: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(32:i64)
  %slot:i8* = gep %buf [%idx]
  store 1:i8, %slot
  ret 0:i64
}
"#,
    );
    // Indices 0..31 are fine.
    for idx in [0u64, 15, 31] {
        assert_eq!(
            vm.call("poke", &[idx]).unwrap(),
            VmExit::Returned(0),
            "idx {idx}"
        );
    }
    // 32 (one past the end) is a *store*, so the bounds check must fire.
    let err = vm.call("poke", &[32]).unwrap_err();
    assert!(matches!(err, VmError::Safety(_)), "{err}");
}

#[test]
fn double_free_detected_t5() {
    let mut vm = safe_vm(
        r#"
func public @df() : i64 {
entry:
  %buf:i8* = call @kmalloc(32:i64)
  call @kfree(%buf)
  call @kfree(%buf)
  ret 0:i64
}
"#,
    );
    let err = vm.call("df", &[]).unwrap_err();
    match err {
        VmError::Safety(e) => assert_eq!(e.kind, sva::rt::CheckKind::IllegalFree),
        other => panic!("expected illegal free, got {other}"),
    }
}

#[test]
fn interior_free_detected_t5() {
    let mut vm = safe_vm(
        r#"
func public @intfree() : i64 {
entry:
  %buf:i8* = call @kmalloc(32:i64)
  %mid:i8* = gep %buf [8:i64]
  call @kfree(%mid)
  ret 0:i64
}
"#,
    );
    let err = vm.call("intfree", &[]).unwrap_err();
    match err {
        VmError::Safety(e) => assert_eq!(e.kind, sva::rt::CheckKind::IllegalFree),
        other => panic!("expected illegal free, got {other}"),
    }
}

#[test]
fn dangling_pointer_is_harmless_within_pool() {
    // The paper's compromise: dangling pointers are not *detected*, but the
    // pool discipline keeps them harmless — the reallocated memory belongs
    // to the same metapool, so the stale pointer still lands on a legal
    // object of the same partition.
    let mut vm = safe_vm(
        r#"
func public @dangle() : i64 {
entry:
  %a:i8* = call @kmalloc(32:i64)
  store 7:i8, %a
  call @kfree(%a)
  %b:i8* = call @kmalloc(32:i64)
  ; `%a` is now dangling; the bump allocator reused fresh space, but the
  ; load must be *contained* — not a wild access.
  %v:i8 = load %b
  %r:i64 = cast zext %v to i64
  ret %r
}
"#,
    );
    let r = vm.call("dangle", &[]).unwrap();
    assert!(matches!(r, VmExit::Returned(_)));
}

#[test]
fn indirect_call_check_enforces_call_graph() {
    let mut vm = safe_vm(
        r#"
func internal @good1(%x: i64) : i64 {
entry:
  %r:i64 = add %x, 1:i64
  ret %r
}
func internal @good2(%x: i64) : i64 {
entry:
  %r:i64 = add %x, 2:i64
  ret %r
}
global @table : [2 x ((i64) -> i64)*] = bytes x00000000000000000000000000000000 relocs [0: @good1, 8: @good2]
func public @dispatch(%i: i64, %x: i64) : i64 {
entry:
  %slot:((i64) -> i64)** = gep @table [0:i32, %i]
  %fp:((i64) -> i64)* = load %slot
  %r:i64 = callind %fp(%x)
  ret %r
}
"#,
    );
    assert_eq!(vm.call("dispatch", &[0, 10]).unwrap(), VmExit::Returned(11));
    assert_eq!(vm.call("dispatch", &[1, 10]).unwrap(), VmExit::Returned(12));
    let stats = vm.pools.total_stats();
    assert!(stats.func_checks >= 2, "{stats:?}");
}

#[test]
fn signed_bytecode_round_trip_and_tamper() {
    let m = build(
        r#"
func public @f() : i64 {
entry:
  ret 11:i64
}
"#,
    );
    let sealed = SignedModule::seal(&m, 0xABCD);
    let reopened = sealed.open(0xABCD).expect("signature verifies");
    assert_eq!(reopened.funcs.len(), m.funcs.len());
    let mut bad = sealed.clone();
    let n = bad.bytecode.len();
    bad.bytecode[n / 3] ^= 0x40;
    assert!(
        bad.open(0xABCD).is_err(),
        "tampered bytecode must be rejected"
    );
}

#[test]
fn annotations_survive_bytecode_and_still_verify() {
    let m = build(
        r#"
func public @touch(%idx: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(64:i64)
  %slot:i8* = gep %buf [%idx]
  store 1:i8, %slot
  ret 0:i64
}
"#,
    );
    let compiled = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
    // Ship over the wire as bytecode, then verify on the "end-user system".
    let bytes = encode_module(&compiled.module);
    let received = decode_module(&bytes).expect("decode");
    assert!(typecheck_module(&received).is_empty());
    let verified = verify_and_insert_checks(received).expect("verifies after transport");
    let mut vm = Vm::new(
        verified.module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(matches!(vm.call("touch", &[63]), Ok(VmExit::Returned(0))));
    assert!(matches!(vm.call("touch", &[65]), Err(VmError::Safety(_))));
}

#[test]
fn tampered_annotations_rejected_by_verifier() {
    let m = build(
        r#"
func public @touch(%idx: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(64:i64)
  %slot:i8* = gep %buf [%idx]
  store 1:i8, %slot
  ret 0:i64
}
"#,
    );
    let compiled = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
    for kind in sva::core::inject::FaultKind::ALL {
        let mut bad = compiled.module.clone();
        if sva::core::inject::inject_fault(&mut bad, kind, 0).is_some() {
            assert!(
                verify_and_insert_checks(bad).is_err(),
                "verifier must reject {kind:?}"
            );
        }
    }
}

#[test]
fn all_four_configs_agree_on_results() {
    // Differential test: the two code generators (and the checked build)
    // must compute identical values on a compute-heavy function.
    let src = r#"
func public @mix(%n: i64) : i64 {
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, loop: %i1]
  %acc:i64 = phi i64 [entry: 7:i64, loop: %acc2]
  %t:i64 = mul %acc, 1099511628211:i64
  %t8:i8 = cast trunc %i to i8
  %t64:i64 = cast zext %t8 to i64
  %acc2:i64 = xor %t, %t64
  %i1:i64 = add %i, 1:i64
  %done:i1 = icmp uge %i1, %n
  condbr %done, out, loop
out:
  ret %acc2
}
"#;
    let mut results = Vec::new();
    for kind in [KernelKind::Native, KernelKind::SvaGcc, KernelKind::SvaLlvm] {
        let m = build(src);
        let mut vm = Vm::new(
            m,
            VmConfig {
                kind,
                ..Default::default()
            },
        )
        .unwrap();
        results.push(vm.call("mix", &[1000]).unwrap());
    }
    // And the checked build.
    let mut vm = safe_vm(src);
    results.push(vm.call("mix", &[1000]).unwrap());
    assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
}
