//! Kernel-level integration: the four configurations must be
//! *behaviourally identical* on legitimate workloads (same console output,
//! same exit codes) and differ only in cost and in what happens to attacks.

use sva::kernel::harness::{
    boot_user, make_vm, make_vm_recovering, make_vm_recovering_traced, make_vm_traced, pack_arg,
};
use sva::trace::RingTracer;
use sva::vm::{KernelKind, VmConfig, VmError, VmExit};

fn run(kind: KernelKind, prog: &str, arg: u64) -> (VmExit, String, u64) {
    let mut vm = make_vm(kind);
    let exit = boot_user(&mut vm, prog, arg)
        .unwrap_or_else(|e| panic!("{kind:?} {prog}: {e}\nbt: {:?}", vm.backtrace()));
    (exit, vm.console_string(), vm.stats().cycles)
}

#[test]
fn configs_behave_identically_on_legit_workloads() {
    let workloads: [(&str, u64); 6] = [
        ("user_hello", 0),
        ("user_getpid_loop", pack_arg(25, 0, 0)),
        ("user_openclose_loop", pack_arg(10, 0, 0)),
        ("user_pipe_loop", pack_arg(5, 0, 0)),
        ("user_fork_loop", pack_arg(2, 0, 0)),
        ("user_signal_demo", 0),
    ];
    for (prog, arg) in workloads {
        let base = run(KernelKind::Native, prog, arg);
        for kind in [KernelKind::SvaGcc, KernelKind::SvaLlvm, KernelKind::SvaSafe] {
            let got = run(kind, prog, arg);
            assert_eq!(got.0, base.0, "{kind:?} {prog}: exit differs");
            assert_eq!(got.1, base.1, "{kind:?} {prog}: console differs");
        }
    }
}

#[test]
fn tracing_is_invisible_to_the_machine() {
    // The zero-overhead-when-off discipline, stated the strong way round:
    // attaching a RingTracer must not change a single counter. Boot the
    // checked kernel with and without a tracer and demand byte-identical
    // VmStats, check counters and console output — the tracer only *reads*
    // the cycle clock, it never feeds back into execution.
    for (prog, arg) in [
        ("user_hello", 0),
        ("user_pipe_loop", pack_arg(5, 0, 0)),
        ("user_forkexec_loop", pack_arg(2, 0, 0)),
    ] {
        let mut plain = make_vm(KernelKind::SvaSafe);
        let exit_p = boot_user(&mut plain, prog, arg).expect("plain boot");

        let mut traced = make_vm_traced(KernelKind::SvaSafe, RingTracer::default());
        let exit_t = boot_user(&mut traced, prog, arg).expect("traced boot");

        assert_eq!(exit_p, exit_t, "{prog}: exit differs under tracing");
        assert_eq!(
            plain.console_string(),
            traced.console_string(),
            "{prog}: console differs under tracing"
        );
        assert_eq!(
            plain.stats(),
            traced.stats(),
            "{prog}: VmStats differ under tracing"
        );
        assert_eq!(
            plain.pools.total_stats(),
            traced.pools.total_stats(),
            "{prog}: check counters differ under tracing"
        );

        // And the trace itself must be worth having: every virtual cycle
        // accounted for, with a live event stream behind it.
        let stats = traced.stats();
        let tracer = traced.into_tracer();
        assert!(tracer.ring().total_recorded() > 0, "{prog}: empty ring");
        let coverage = tracer.profile().coverage(stats.cycles);
        assert!(
            coverage >= 0.95,
            "{prog}: profile attributes only {:.2}% of cycles",
            100.0 * coverage
        );
    }

    // The same discipline must hold across a violation-recovery unwind
    // (DESIGN.md §4.3): the unwind is machine state, the tracer is not,
    // and the recovery events must actually land in the trace.
    let mut plain = make_vm_recovering(VmConfig::default());
    let exit_p = boot_user(&mut plain, "user_exploit_bt", 0).expect("recovering boot");
    let mut traced = make_vm_recovering_traced(VmConfig::default(), RingTracer::default());
    let exit_t = boot_user(&mut traced, "user_exploit_bt", 0).expect("recovering traced boot");
    assert_eq!(exit_p, exit_t, "recovery: exit differs under tracing");
    assert_eq!(
        plain.console_string(),
        traced.console_string(),
        "recovery: console differs under tracing"
    );
    let stats_t = traced.stats();
    assert_eq!(
        plain.stats(),
        stats_t,
        "recovery: VmStats differ under tracing"
    );
    assert!(
        stats_t.violations_recovered >= 1,
        "workload never recovered"
    );
    let tracer = traced.into_tracer();
    assert!(
        tracer.profile().recoveries >= stats_t.violations_recovered,
        "recovery unwinds missing from the trace"
    );
    assert!(
        tracer.profile().quarantines >= stats_t.pools_quarantined,
        "quarantine events missing from the trace"
    );
}

#[test]
fn safety_configuration_costs_more_cycles() {
    let (_, _, native) = run(KernelKind::Native, "user_pipe_loop", pack_arg(20, 0, 0));
    let (_, _, safe) = run(KernelKind::SvaSafe, "user_pipe_loop", pack_arg(20, 0, 0));
    assert!(
        safe > native + native / 10,
        "checked pipe workload must cost visibly more: {native} vs {safe}"
    );
}

#[test]
fn file_io_round_trips_data() {
    // write then read back through the VFS — on the checked kernel.
    let mut vm = make_vm(KernelKind::SvaSafe);
    let exit = boot_user(&mut vm, "user_fileread_bw", pack_arg(2, 4096, 0)).unwrap();
    assert_eq!(exit, VmExit::Halted(0));
}

#[test]
fn scp_and_thttpd_workloads_run_checked() {
    for (prog, arg) in [
        ("user_scp", pack_arg(4, 8192, 0)),
        ("user_thttpd", pack_arg(6, 311, 0)),
        ("user_thttpd", pack_arg(3, 8192, 1)), // cgi mode forks workers
    ] {
        let mut vm = make_vm(KernelKind::SvaSafe);
        let exit = boot_user(&mut vm, prog, arg)
            .unwrap_or_else(|e| panic!("{prog}: {e}\nbt: {:?}", vm.backtrace()));
        assert_eq!(exit, VmExit::Halted(0), "{prog}");
    }
}

#[test]
fn check_volume_scales_with_work() {
    let mut small = make_vm(KernelKind::SvaSafe);
    boot_user(&mut small, "user_pipe_loop", pack_arg(5, 0, 0)).unwrap();
    let s = small.pools.total_stats().total_checks();
    let mut big = make_vm(KernelKind::SvaSafe);
    boot_user(&mut big, "user_pipe_loop", pack_arg(50, 0, 0)).unwrap();
    let b = big.pools.total_stats().total_checks();
    assert!(b > s * 5, "checks must scale with iterations: {s} vs {b}");
}

#[test]
fn userspace_cannot_reach_kernel_through_syscall_buffers() {
    // §4.6: "if an attacker tries to pass a buffer that starts in userspace
    // but ends in kernel space ... this will be detected as a bounds
    // violation". getrusage writes through a user pointer; aim it at the
    // very end of userspace so the second u64 lands outside.
    let mut vm = make_vm(KernelKind::SvaSafe);
    let user_end = sva::vm::USER_END;
    let addr = vm.func_address("user_getrusage_loop").unwrap();
    vm.write_global_u64("boot_user_prog", addr).unwrap();
    // Hand-drive: one iteration with a poisoned pointer is easiest through
    // a dedicated program; instead poke the scratch pointer by running the
    // loop normally, then issue the boundary write directly.
    vm.write_global_u64("boot_user_arg", pack_arg(1, 0, 0))
        .unwrap();
    vm.boot().unwrap();
    // Direct kernel-mode reproduction of the boundary case:
    let r = vm.call("sys_getrusage", &[user_end - 4]);
    match r {
        Err(VmError::Safety(_)) | Err(VmError::Fault { .. }) => {}
        other => panic!("cross-boundary buffer must not succeed: {other:?}"),
    }
}

#[test]
fn exploit_side_effects_absent_after_catch() {
    // After a caught exploit the VM halts; the corrupting writes must not
    // have happened (checks run *before* the store). Snapshot the 64 bytes
    // after the attacked buffer and confirm they are bit-identical after
    // the catch.
    let mut vm = make_vm(KernelKind::SvaSafe);
    let base = {
        // Address resolution requires a loaded VM; snapshot pre-attack.
        vm.global_address("net_bt_scratch").unwrap()
    };
    let before = vm
        .mem
        .read_bytes(base + 64, 64, sva::vm::Mode::Kernel)
        .unwrap();
    let err = boot_user(&mut vm, "user_exploit_bt", 0).unwrap_err();
    assert!(matches!(err, VmError::Safety(_)));
    let after = vm
        .mem
        .read_bytes(base + 64, 64, sva::vm::Mode::Kernel)
        .unwrap();
    // Reduced-checks subtlety (paper §4.5/§4.9 I2): the buffer's partition
    // is *incomplete* in the as-tested kernel, so stores carry no
    // load-store check, and C's legal one-past-the-end pointer lets the
    // single boundary byte through before the next iteration's bounds
    // check stops the loop. Exactly one byte may leak; nothing beyond.
    assert_eq!(
        &before[1..24],
        &after[1..24],
        "overflow went past the boundary byte"
    );
    // Offsets 24..40 are the boot parameters `boot_user` itself writes.
    assert_eq!(
        &before[40..],
        &after[40..],
        "overflow went past the boundary byte"
    );
}
