//! The flight recorder's contract (DESIGN.md §4.7): an always-on tail
//! tracer that never perturbs the machine it observes. A flight-recorded
//! kernel must execute byte-identically to an untraced one — same exit,
//! same console, same `VmStats::equivalence_key` — while still holding
//! the high-signal tail a postmortem needs.

use sva::kernel::harness::{
    boot_user, make_vm_nested, make_vm_nested_traced, make_vm_recovering,
    make_vm_recovering_traced, pack_arg,
};
use sva::trace::{EventClass, FlightRecorder, TraceEvent, Tracer};
use sva::vm::VmConfig;

#[test]
fn flight_recorded_machine_is_byte_identical_on_clean_boot() {
    // Fault-free nested-kernel workload: syscalls, pipes, scheduling.
    let mut plain = make_vm_nested(VmConfig::default());
    let exit_plain = boot_user(&mut plain, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    let mut flown = make_vm_nested_traced(VmConfig::default(), FlightRecorder::default());
    let exit_flown = boot_user(&mut flown, "user_pipe_loop", pack_arg(5, 64, 0)).unwrap();

    assert_eq!(exit_plain, exit_flown);
    assert_eq!(plain.console_string(), flown.console_string());
    assert_eq!(
        plain.stats().equivalence_key(),
        flown.stats().equivalence_key(),
        "flight recording perturbed the machine"
    );

    // And the black box actually flew: the tail holds the syscall spans
    // the workload executed.
    let f = flown.tracer();
    assert!(f.syscalls() > 0, "no syscalls recorded");
    assert!(f
        .recent_events()
        .iter()
        .any(|e| matches!(e.event, TraceEvent::SyscallExit { .. })));
}

#[test]
fn flight_recorded_machine_is_byte_identical_through_recovery() {
    // The adversarial variant: a violation storm with unwinds, quarantine
    // and poisoning — the very traffic the recorder pins — must still
    // leave the machine bit-exact with its untraced twin.
    let mut plain = make_vm_recovering(VmConfig::default());
    let exit_plain = boot_user(&mut plain, "user_exploit_bt", 0).unwrap();

    let mut flown = make_vm_recovering_traced(VmConfig::default(), FlightRecorder::default());
    let exit_flown = boot_user(&mut flown, "user_exploit_bt", 0).unwrap();

    assert_eq!(exit_plain, exit_flown);
    assert_eq!(plain.console_string(), flown.console_string());
    assert_eq!(
        plain.stats().equivalence_key(),
        flown.stats().equivalence_key(),
        "flight recording perturbed the recovery path"
    );

    let s = plain.stats();
    assert!(s.violations_recovered >= 1, "workload never tripped");

    // The recorder saw what the stats counted.
    let f = flown.tracer();
    assert!(f.violations() >= 1);
    assert!(f.unwinds() as u64 >= 1);
    let tail = f.recent_events();
    assert!(tail
        .iter()
        .any(|e| e.event.class() == EventClass::Violation));
    assert!(tail
        .iter()
        .any(|e| matches!(e.event, TraceEvent::RecoverUnwind { .. })));
}
