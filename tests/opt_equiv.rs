//! End-to-end equivalence gates for the optimizing translation tier
//! (DESIGN.md §4.4) and the singleton-pool check elision.
//!
//! The contract under test: turning the optimizations on must be
//! *observationally invisible* — same results, same instruction counts,
//! same check outcomes — and only the documented cycle fields may move
//! (`VmStats::equivalence_key` zeroes exactly those). Three angles:
//!
//! * **generated programs** — random dependent-arithmetic chains and
//!   counted loops (the shapes the fusion pass targets) run at
//!   `opt_level` 0 vs 2 on both flat-translating kernel kinds;
//! * **the real kernel** — a syscall workload on the safety-checked
//!   kernel, opt 0 vs 2 and singleton on vs off;
//! * **fault-injection replays** — the faultcamp seed grid re-run at both
//!   opt levels must produce byte-identical outcomes and stats, so fusion
//!   cannot perturb violation recovery.

use std::sync::Arc;

use proptest::prelude::*;

use sva::inject::{FaultClass, FaultPlan};
use sva::ir::parse::parse_module;
use sva::kernel::harness::{boot_user, make_vm_cfg, make_vm_recovering, pack_arg};
use sva::vm::{KernelKind, Vm, VmConfig, VmExit};

/// A counted loop with a dependent multiply-add-xor body: the `%t` and
/// `%done` temporaries are single-use, so the optimizing tier rewrites the
/// body into `FusedBin2` + `FusedCmpBr` superinstructions.
fn loop_prog(trip: u64, mul: u64, add: u64, xor: u64) -> String {
    format!(
        r#"
module "m"
func public @work(%n0: i64) : i64 {{
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, body: %i2]
  %acc:i64 = phi i64 [entry: %n0, body: %acc3]
  %done:i1 = icmp uge %i, {trip}:i64
  condbr %done, out, body
body:
  %t:i64 = mul %acc, {mul}:i64
  %acc2:i64 = add %t, {add}:i64
  %acc3:i64 = xor %acc2, {xor}:i64
  %i2:i64 = add %i, 1:i64
  br loop
out:
  ret %acc
}}
"#
    )
}

/// A straight-line chain `%v{k+1} = op %v{k}, c` — every intermediate has
/// exactly one use, so adjacent pairs fuse into `FusedBin2`.
fn chain_prog(ops: &[(u8, u64)]) -> String {
    let mut body = String::new();
    for (k, (op, c)) in ops.iter().enumerate() {
        let name = ["add", "sub", "mul", "and", "or", "xor", "shl"][*op as usize % 7];
        body.push_str(&format!("  %v{}:i64 = {name} %v{k}, {c}:i64\n", k + 1));
    }
    format!(
        "module \"m\"\nfunc public @work(%v0: i64) : i64 {{\nentry:\n{body}  ret %v{}\n}}\n",
        ops.len()
    )
}

/// Runs `@work(arg)` from `src` at the given opt level and returns the
/// exit, the stats block and how many superinstruction sites were
/// installed.
fn run_at(src: &str, kind: KernelKind, opt_level: u8, arg: u64) -> (VmExit, sva::vm::VmStats, u32) {
    let m = parse_module(src).unwrap();
    let mut vm = Vm::new(
        m,
        VmConfig {
            kind,
            opt_level,
            ..Default::default()
        },
    )
    .unwrap();
    let exit = vm.call("work", &[arg]).unwrap();
    (exit, vm.stats(), vm.fused_sites())
}

fn assert_opt_invisible(src: &str, arg: u64, expect_fusion: bool) {
    for kind in [KernelKind::Native, KernelKind::SvaLlvm] {
        let (r0, s0, f0) = run_at(src, kind, 0, arg);
        let (r2, s2, f2) = run_at(src, kind, 2, arg);
        assert_eq!(f0, 0, "{kind:?}: opt 0 must not fuse");
        assert_eq!(r0, r2, "{kind:?}: fusion changed the result");
        assert_eq!(
            s0.equivalence_key(),
            s2.equivalence_key(),
            "{kind:?}: fusion changed an observable stat"
        );
        // Exactly one dispatch cycle saved per fused dispatch — no more,
        // no less.
        assert_eq!(
            s0.cycles - s2.cycles,
            s2.fused_execs,
            "{kind:?}: cycle accounting drifted"
        );
        if expect_fusion {
            assert!(f2 > 0, "{kind:?}: expected superinstruction sites");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loop_programs_agree_across_opt_levels(
        trip in 0u64..96,
        mul in 1u64..1_000_000,
        add in any::<u32>(),
        xor in any::<u32>(),
        seed in any::<u64>(),
    ) {
        let src = loop_prog(trip, mul, add as u64, xor as u64);
        assert_opt_invisible(&src, seed, true);
    }

    #[test]
    fn chain_programs_agree_across_opt_levels(
        ops in prop::collection::vec((0u8..7, 0u64..1_000_000), 2..24),
        seed in any::<u64>(),
    ) {
        let src = chain_prog(&ops);
        assert_opt_invisible(&src, seed, true);
    }
}

/// Syscall workloads on the real safety-checked kernel: fusion must not
/// change the exit code, the instruction count, or any check counter.
#[test]
fn kernel_workloads_agree_across_opt_levels() {
    for (prog, iters, size) in [("user_getpid_loop", 50, 0), ("user_write_loop", 20, 64)] {
        let run = |opt_level: u8| {
            let mut vm = make_vm_cfg(VmConfig {
                kind: KernelKind::SvaSafe,
                opt_level,
                ..Default::default()
            });
            let exit = boot_user(&mut vm, prog, pack_arg(iters, size, 0)).unwrap();
            (exit, vm.stats(), vm.fused_sites())
        };
        let (r0, s0, _) = run(0);
        let (r2, s2, f2) = run(2);
        assert_eq!(r0, r2, "{prog}: fusion changed the exit");
        assert_eq!(
            s0.equivalence_key(),
            s2.equivalence_key(),
            "{prog}: fusion changed an observable stat"
        );
        assert_eq!(s0.cycles - s2.cycles, s2.fused_execs, "{prog}");
        assert!(f2 > 0, "{prog}: kernel should have fusible sites");
    }
}

/// The checked-kernel triple rewrite (DESIGN.md §4.4): on the sva-safe
/// kernel the fusion pass swallows a metapool check *between* address
/// formation and the load (`Gep + pchk + Load → FusedGepChkLoad`).
/// Pointer-heavy syscall workloads must install triple sites, and the
/// fused check must be the standalone intrinsic hit-for-hit: same exit,
/// same equivalence key, and the identical split across every lookup
/// layer (singleton / MRU / page index / splay tree).
#[test]
fn kernel_gep_chk_load_triples_fuse_and_agree() {
    for (prog, iters, size) in [("user_openclose_loop", 30, 0), ("user_write_loop", 20, 64)] {
        let run = |opt_level: u8| {
            let mut vm = make_vm_cfg(VmConfig {
                kind: KernelKind::SvaSafe,
                opt_level,
                ..Default::default()
            });
            let exit = boot_user(&mut vm, prog, pack_arg(iters, size, 0)).unwrap();
            (exit, vm.stats(), vm.fused_chk_sites())
        };
        let (r0, s0, t0) = run(0);
        let (r2, s2, t2) = run(2);
        assert_eq!(t0, 0, "{prog}: opt 0 must not install triples");
        assert!(t2 > 0, "{prog}: sva-safe should fuse gep+pchk+load triples");
        assert_eq!(r0, r2, "{prog}: triple fusion changed the exit");
        assert_eq!(
            s0.equivalence_key(),
            s2.equivalence_key(),
            "{prog}: triple fusion changed an observable stat"
        );
        assert_eq!(
            (
                s0.singleton_hits,
                s0.cache_hits,
                s0.page_hits,
                s0.tree_walks
            ),
            (
                s2.singleton_hits,
                s2.cache_hits,
                s2.page_hits,
                s2.tree_walks
            ),
            "{prog}: the fused check moved a lookup between layers"
        );
        assert_eq!(s0.cycles - s2.cycles, s2.fused_execs, "{prog}");
    }
}

/// The singleton elision answers some lookups at a different *layer*, so
/// the layer split moves — but the total lookup count, every check
/// outcome, the cycle count and the exit must be identical.
#[test]
fn kernel_workloads_agree_across_singleton_toggle() {
    let run = |singleton_path: bool| {
        let mut vm = make_vm_cfg(VmConfig {
            kind: KernelKind::SvaSafe,
            singleton_path,
            ..Default::default()
        });
        let exit = boot_user(&mut vm, "user_openclose_loop", pack_arg(30, 0, 0)).unwrap();
        (exit, vm.stats())
    };
    let (r_on, s_on) = run(true);
    let (r_off, s_off) = run(false);
    assert_eq!(r_on, r_off);
    assert_eq!(s_on.cycles, s_off.cycles);
    assert_eq!(s_on.instructions, s_off.instructions);
    assert_eq!(s_off.singleton_hits, 0);
    let total_on = s_on.singleton_hits + s_on.cache_hits + s_on.page_hits + s_on.tree_walks;
    let total_off = s_off.cache_hits + s_off.page_hits + s_off.tree_walks;
    assert_eq!(total_on, total_off, "elision changed the lookup count");
}

/// Metapool ids with complete points-to info in the recovery kernel (the
/// probe targets faultcamp uses).
fn complete_pools() -> Vec<u32> {
    let vm = make_vm_recovering(VmConfig::default());
    (0..vm.pools.len() as u32)
        .filter(|&i| vm.pools.pool(sva::rt::MetaPoolId(i)).complete)
        .collect()
}

/// The faultcamp seed grid replayed at both opt levels: deterministic
/// injection plus behavior-preserving fusion means byte-identical
/// outcomes, injected-fault counts and (cycle-projected) stats.
/// `IrqStorm` is excluded: interrupt delivery may land one op later inside
/// a fused pair, which is a documented, accepted boundary shift.
#[test]
fn faultcamp_seeds_agree_across_opt_levels() {
    let targets = complete_pools();
    let classes = [
        FaultClass::WildPtr,
        FaultClass::GepSkew,
        FaultClass::StaleUse,
        FaultClass::PoolMetaCorrupt,
        FaultClass::AllocFail,
    ];
    for class in classes {
        for seed in [1u64, 2, 3, 5, 8, 13] {
            let run = |opt_level: u8| {
                let plan = Arc::new(FaultPlan::new(class, seed, 2, targets.clone()));
                let cfg = VmConfig {
                    fuel: 10_000_000,
                    violation_budget: 3,
                    fault_hook: Some(plan.clone()),
                    opt_level,
                    ..Default::default()
                };
                let mut vm = make_vm_recovering(cfg);
                let r = boot_user(&mut vm, "user_openclose_loop", pack_arg(40, 0, 0));
                (
                    format!("{r:?}"),
                    plan.injected(),
                    vm.stats().equivalence_key(),
                )
            };
            let base = run(0);
            let opt = run(2);
            assert_eq!(base, opt, "{class:?} seed {seed} diverged under fusion");
        }
    }
}
