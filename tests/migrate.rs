//! Integration gates for live-upgrade snapshot migration (DESIGN.md
//! §4.10).
//!
//! The contract under test: a machine image written by any supported
//! format version restores into the current build **through the upcaster
//! chain** and then behaves as if the machine had never been serialized
//! at all — and every image migration cannot carry forward fails closed
//! with a structured error naming the first lost field. Five angles:
//!
//! * **composition** — proptest over generated programs: downcasting
//!   stepwise equals downcasting directly, migrating any downgraded
//!   image reproduces the original v4 bytes, and migrating a
//!   current-format image is the byte-exact identity;
//! * **legacy kernel images** — real kernel snapshots re-encoded at
//!   v1/v2/v3 restore via migration and finish bit-identically to an
//!   uninterrupted boot;
//! * **compatible rebuilds** — a kernel rebuilt with an appended
//!   never-called function (different `code_id`, identical surface
//!   prefix) adopts a mid-boot image across the code change;
//! * **fail-closed** — a changed *live* function body, a poisoned pool's
//!   attribution, and an unknown future version are each refused with
//!   the named field, never a panic or a silent drop;
//! * **bundles** — a crash bundle embedding a previous-format snapshot
//!   migrates as a unit and the migrated bundle is a fixed point.

use proptest::prelude::*;

use sva::ir::parse::parse_module;
use sva::kernel::harness::{
    boot_user, make_vm, make_vm_cfg, make_vm_nested, make_vm_nested_patched, pack_arg,
};
use sva::rt::MetaPoolId;
use sva::vm::{
    migrate, migrate_bundle, plan, reencode_at, CrashBundle, CrashReason, KernelKind, MigrateError,
    SnapshotError, Vm, VmConfig, VmError, UPCASTERS,
};

// --- toy machines ---------------------------------------------------------

/// The counted-loop shape `tests/snapshot.rs` uses, so the cut lands
/// inside a live frame of `@work`.
fn loop_prog(trip: u64, mul: u64, add: u64, xor: u64) -> String {
    format!(
        r#"
module "m"
func public @work(%n0: i64) : i64 {{
entry:
  br loop
loop:
  %i:i64 = phi i64 [entry: 0:i64, body: %i2]
  %acc:i64 = phi i64 [entry: %n0, body: %acc3]
  %done:i1 = icmp uge %i, {trip}:i64
  condbr %done, out, body
body:
  %t:i64 = mul %acc, {mul}:i64
  %acc2:i64 = add %t, {add}:i64
  %acc3:i64 = xor %acc2, {xor}:i64
  %i2:i64 = add %i, 1:i64
  br loop
out:
  ret %acc
}}
"#
    )
}

fn toy_vm(src: &str, opt_level: u8, fuel: u64) -> Vm {
    Vm::new(
        parse_module(src).unwrap(),
        VmConfig {
            kind: KernelKind::SvaLlvm,
            opt_level,
            fuel,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Runs `@work(arg)` to completion for the reference result, then again
/// cut mid-run by a narrowed fuel tank, and returns the cut machine's
/// image plus the reference `(exit, stats)`.
fn cut_image(src: &str, opt_level: u8, arg: u64, cut: u64) -> (Vec<u8>, String, sva::vm::VmStats) {
    let mut base = toy_vm(src, opt_level, u64::MAX);
    let exit = format!("{:?}", base.call("work", &[arg]));
    let consumed = u64::MAX - base.fuel();
    let cut = cut % consumed.max(1);
    let mut vm = toy_vm(src, opt_level, cut);
    match vm.call("work", &[arg]) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("cut {cut} did not interrupt: {r:?}"),
    }
    (vm.snapshot(), exit, base.stats())
}

// --- composition ----------------------------------------------------------

/// Downcast chains compose, every upcast chain is a right inverse of
/// its downcast chain, and migration at the current version is the
/// byte-exact identity. (Body of [`upcaster_chain_composes`]; plain
/// asserts keep the proptest macro expansion shallow.)
fn check_chain_composition(trip: u64, mul: u64, add: u64, arg: u64, cut: u64, opt: u8) {
    let src = loop_prog(trip, mul, add, 0xf00d);
    let (img, exit, stats) = cut_image(&src, opt, arg, cut);
    let target = toy_vm(&src, opt, u64::MAX);

    // Idempotence: already-current images pass through byte-exact.
    let (out, rep) = migrate(&target, &img).unwrap();
    assert_eq!(out, img);
    assert!(rep.steps.is_empty() && !rep.code_migrated);

    // Stepwise downcast equals direct downcast.
    let v3 = reencode_at(&img, 3).unwrap();
    let v2 = reencode_at(&img, 2).unwrap();
    let v1 = reencode_at(&img, 1).unwrap();
    assert_eq!(reencode_at(&v3, 2).unwrap(), v2);
    assert_eq!(reencode_at(&v2, 1).unwrap(), v1);
    assert_eq!(reencode_at(&v3, 1).unwrap(), v1);

    // Migrating any downgraded image reproduces the original bytes —
    // the upcaster chain from v(k) is exactly the inverse of the
    // downcast chain to v(k).
    for (old, steps) in [(&v3, 1usize), (&v2, 2), (&v1, 3)] {
        let (out, rep) = migrate(&target, old).unwrap();
        assert_eq!(out, img);
        assert_eq!(rep.steps.len(), steps);
        assert!(!rep.code_migrated);
    }

    // And a migrated legacy image resumes to the reference result.
    let mut vm = toy_vm(&src, opt, 1);
    vm.restore_migrated(&v1).unwrap();
    vm.set_fuel(u64::MAX);
    assert_eq!(format!("{:?}", vm.run()), exit);
    assert_eq!(vm.stats(), stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn upcaster_chain_composes(
        trip in 1u64..48,
        mul in 1u64..1_000_000,
        add in any::<u32>(),
        arg in any::<u64>(),
        cut in any::<u64>(),
        opt in prop::sample::select(vec![0u8, 2]),
    ) {
        check_chain_composition(trip, mul, add as u64, arg, cut, opt);
    }
}

/// The registry itself is a contiguous chain ending at the current
/// version — the invariant `migrate` walks by.
#[test]
fn upcaster_registry_is_contiguous() {
    for (i, u) in UPCASTERS.iter().enumerate() {
        assert_eq!(u.from, 1 + i as u32, "registry out of order at {}", u.name);
        assert_eq!(u.to, u.from + 1, "upcaster {} skips a version", u.name);
    }
    assert_eq!(
        UPCASTERS.last().unwrap().to,
        plan(&cut_image(&loop_prog(4, 3, 5, 7), 0, 9, 10).0)
            .unwrap()
            .target,
        "registry does not reach the current snapshot version"
    );
}

// --- fail-closed ----------------------------------------------------------

/// A rebuild that *changes the body of a live function* must be refused
/// by name — the suspended frame would resume into different code.
#[test]
fn changed_live_function_fails_closed() {
    let src_a = loop_prog(40, 3, 5, 7);
    let src_b = loop_prog(40, 3, 6, 7); // same surface, different body
    let (img, _, _) = cut_image(&src_a, 0, 9, 50);
    let target = toy_vm(&src_b, 0, u64::MAX);
    match migrate(&target, &img) {
        Err(MigrateError::Incompatible {
            field: "live_function",
            ..
        }) => {}
        r => panic!("expected live_function refusal, got {r:?}"),
    }
}

/// A future format version is refused with `UnsupportedVersion`, and
/// upcasting to the current version without a target machine is refused
/// with the field that needs one (the code manifest).
#[test]
fn unknown_versions_fail_closed() {
    let (img, _, _) = cut_image(&loop_prog(8, 3, 5, 7), 0, 9, 20);
    let mut future = img.clone();
    future[4] = 99; // header version word (little-endian u32)
    let target = toy_vm(&loop_prog(8, 3, 5, 7), 0, u64::MAX);
    match migrate(&target, &future) {
        Err(MigrateError::UnsupportedVersion { found: 99, .. }) => {}
        r => panic!("expected UnsupportedVersion, got {r:?}"),
    }
    let v3 = reencode_at(&img, 3).unwrap();
    match reencode_at(&v3, 4) {
        Err(MigrateError::Incompatible {
            field: "code_manifest",
            ..
        }) => {}
        r => panic!(
            "expected code_manifest refusal, got {:?}",
            r.map(|v| v.len())
        ),
    }
}

// --- compatible rebuilds --------------------------------------------------

/// A module extended with an appended never-called function is a
/// different `code_id` with an identical surface prefix: migration must
/// adopt the image and the resumed run must match the original build's.
#[test]
fn appended_function_rebuild_adopts_toy_image() {
    let src_a = loop_prog(40, 3, 5, 7);
    let src_b = format!(
        "{}\nfunc public @live_patch_pad() : i64 {{\nentry:\n  ret 7:i64\n}}\n",
        src_a.trim_end()
    );
    let (img, exit, stats) = cut_image(&src_a, 0, 9, 50);
    let mut patched = toy_vm(&src_b, 0, 1);
    let report = patched.restore_migrated(&img).unwrap();
    assert!(report.code_migrated, "adoption not reported");
    patched.set_fuel(u64::MAX);
    assert_eq!(format!("{:?}", patched.run()), exit);
    assert_eq!(patched.stats(), stats);

    // The reverse direction fails closed: an image from the *extended*
    // build names a function the original build does not have.
    let (img_b, _, _) = cut_image(&src_b, 0, 9, 50);
    let original = toy_vm(&src_a, 0, u64::MAX);
    match migrate(&original, &img_b) {
        Err(MigrateError::Incompatible {
            field: "function_count",
            ..
        }) => {}
        r => panic!("expected function_count refusal, got {r:?}"),
    }
}

/// The same adoption on the real kernel: `make_vm_nested_patched` is the
/// nested recovery kernel plus one pad function (a modelled compatible
/// rebuild), and it must resume a mid-boot image of the stock build to
/// the same end state.
#[test]
fn patched_kernel_adopts_mid_boot_image() {
    let arg = pack_arg(40, 0, 0);
    let mut base = make_vm_nested(VmConfig::default());
    let r = boot_user(&mut base, "user_getpid_loop", arg);
    let want = (
        format!("{r:?}"),
        base.stats().equivalence_key(),
        base.console.clone(),
    );
    let cut = (u64::MAX - base.fuel()) / 2;

    let mut vm = make_vm_nested(VmConfig {
        fuel: cut,
        ..Default::default()
    });
    match boot_user(&mut vm, "user_getpid_loop", arg) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("cut at {cut} did not interrupt: {r:?}"),
    }
    let img = vm.snapshot();

    // The stock build refuses the patched build's identity outright...
    let mut patched = make_vm_nested_patched(VmConfig::default(), 0x5eed);
    assert!(matches!(
        patched.restore(&img),
        Err(SnapshotError::CodeMismatch { .. })
    ));
    // ...but migration recognises the compatible surface and adopts.
    let report = patched.restore_migrated(&img).unwrap();
    assert!(report.code_migrated, "kernel adoption not reported");
    assert!(report.steps.is_empty(), "same-format image took upcasters");
    patched.set_fuel(u64::MAX);
    let r = patched.run();
    let got = (
        format!("{r:?}"),
        patched.stats().equivalence_key(),
        patched.console.clone(),
    );
    assert_eq!(got, want, "adopted image diverged from the stock build");
}

// --- legacy kernel images -------------------------------------------------

/// Real kernel snapshots re-encoded at every supported previous version
/// restore through the chain and finish identically to an uninterrupted
/// boot — the nightly `--resume` cross-check in miniature.
#[test]
fn legacy_kernel_images_restore_via_migration() {
    let arg = pack_arg(30, 0, 0);
    let mut base = make_vm(KernelKind::SvaSafe);
    let r = boot_user(&mut base, "user_getpid_loop", arg);
    let want = (
        format!("{r:?}"),
        base.stats().equivalence_key(),
        base.console.clone(),
    );
    let cut = (u64::MAX - base.fuel()) / 2;

    let mut vm = make_vm_cfg(VmConfig {
        kind: KernelKind::SvaSafe,
        fuel: cut,
        ..Default::default()
    });
    match boot_user(&mut vm, "user_getpid_loop", arg) {
        Err(VmError::OutOfFuel) => {}
        r => panic!("cut at {cut} did not interrupt: {r:?}"),
    }
    let img = vm.snapshot();

    for old_version in 1..=3u32 {
        let old = reencode_at(&img, old_version).unwrap();
        let mut fresh = make_vm(KernelKind::SvaSafe);
        // The strict path must refuse the old format by version...
        assert!(matches!(
            fresh.restore(&old),
            Err(SnapshotError::BadVersion { .. })
        ));
        // ...and the migration path must walk the remaining chain.
        let report = fresh.restore_migrated(&old).unwrap();
        assert_eq!(report.from_version, old_version);
        assert_eq!(report.steps.len(), (4 - old_version) as usize);
        fresh.set_fuel(u64::MAX);
        let r = fresh.run();
        let got = (
            format!("{r:?}"),
            fresh.stats().equivalence_key(),
            fresh.console.clone(),
        );
        assert_eq!(got, want, "v{old_version} image diverged after migration");
    }
}

/// A poisoned pool carries attribution (`poisoned_by`) that the v1
/// format cannot express: downcasting such an image must fail closed
/// naming that field, not silently drop the forensics.
#[test]
fn poisoned_pool_refuses_v1_downcast() {
    let mut vm = make_vm_nested(VmConfig::default());
    boot_user(&mut vm, "user_getpid_loop", pack_arg(5, 0, 0)).expect("clean boot");
    // Poison one pool the way the recovery path does: budget crossed,
    // poison attributed to a recovery-domain subsystem.
    let pool = vm.pools.pool_mut(MetaPoolId(0));
    assert!(
        pool.note_violation(1),
        "budget 1 must poison on first strike"
    );
    pool.attribute_poison(3);
    let img = vm.snapshot();
    match reencode_at(&img, 1) {
        Err(MigrateError::Incompatible {
            field: "poisoned_by",
            ..
        }) => {}
        r => panic!("expected poisoned_by refusal, got {:?}", r.map(|v| v.len())),
    }
    // v2 can express attribution — the same image downcasts fine there.
    assert!(reencode_at(&img, 2).is_ok());
}

// --- bundles --------------------------------------------------------------

/// A crash bundle embedding a previous-format snapshot migrates as one
/// unit: the embedded image is upcast, the bundle re-encoded, and the
/// result is a fixed point of `migrate_bundle`.
#[test]
fn bundle_with_legacy_snapshot_migrates_and_is_fixed_point() {
    let src = loop_prog(24, 3, 5, 7);
    let (img, _, _) = cut_image(&src, 0, 9, 40);
    let target = toy_vm(&src, 0, u64::MAX);
    let v3 = reencode_at(&img, 3).unwrap();
    let code_id = plan(&img).unwrap().code_id;

    let bundle = CrashBundle {
        reason: CrashReason::Halt,
        halt_code: 41,
        resume_code_raw: 0,
        detail: "synthetic".to_string(),
        cpu: 0,
        config_words: [0; 10],
        code_id,
        stats: Default::default(),
        console: b"hello".to_vec(),
        domains: Vec::new(),
        pools: Vec::new(),
        health: Vec::new(),
        flight: Vec::new(),
        snapshot: v3,
    };
    let bytes = bundle.to_bytes();

    let p = plan(&bytes).unwrap();
    assert_eq!(p.kind, "bundle");
    assert_eq!(p.steps.len(), 1, "expected exactly the v3→v4 step");

    let (migrated, report) = migrate_bundle(&target, &bytes).unwrap();
    assert_eq!(report.steps, vec!["v3→v4"]);
    let out = CrashBundle::from_bytes(&migrated).unwrap();
    assert_eq!(out.console, b"hello");
    assert_eq!(out.halt_code, 41);
    // The migrated embedded snapshot is the original current-format one.
    assert_eq!(out.snapshot, img);

    // Fixed point: migrating the migrated bundle is the identity.
    let (again, report) = migrate_bundle(&target, &migrated).unwrap();
    assert_eq!(again, migrated);
    assert!(report.steps.is_empty() && !report.code_migrated);
}
