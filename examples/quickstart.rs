//! Quickstart: compile a tiny "kernel module" through the full SVA
//! pipeline and watch a buffer overflow get caught.
//!
//! Pipeline (paper §2): source → bytecode → safety-checking compiler →
//! bytecode verifier (type-check + run-time check insertion) → SVM.
//!
//! Run with: `cargo run --example quickstart`

use sva::analysis::AnalysisConfig;
use sva::core::compile::{compile, CompileOptions};
use sva::core::verifier::verify_and_insert_checks;
use sva::ir::parse::parse_module;
use sva::vm::{KernelKind, Vm, VmConfig, VmError};

/// A miniature "kernel module": a bump allocator (declared to the safety
/// compiler) and a function that indexes a heap buffer with an untrusted
/// index.
const SRC: &str = r#"
module "quickstart"

global @brk : i64 = bytes x0000201000000000

func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
func public @kfree(%p: i8*) : void {
entry:
  ret
}
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0

func public @store_at(%idx: i64) : i64 {
entry:
  %buf:i8* = call @kmalloc(64:i64)
  %slot:i8* = gep %buf [%idx]
  store 65:i8, %slot
  %v:i8 = load %slot
  %r:i64 = cast zext %v to i64
  ret %r
}
"#;

fn main() {
    // 1. Front end: parse the bytecode.
    let module = parse_module(SRC).expect("parse");
    println!(
        "parsed module `{}` with {} functions",
        module.name,
        module.funcs.len()
    );

    // 2. Safety-checking compiler: pointer analysis, metapool assignment,
    //    object registrations, annotation encoding.
    let compiled = compile(
        module,
        &AnalysisConfig::kernel(),
        &CompileOptions::default(),
    );
    println!(
        "safety compiler: {} metapools ({} type-homogeneous), {} heap registrations",
        compiled.report.metapools, compiled.report.th_metapools, compiled.report.heap_regs
    );

    // 3. Bytecode verifier: check the metapool "proof", insert run-time
    //    checks. Only this step is in the trusted computing base.
    let verified = verify_and_insert_checks(compiled.module).expect("verifies");
    println!(
        "verifier: {} bounds checks inserted, {} statically safe",
        verified.report.bounds_checks, verified.report.bounds_static_safe
    );

    // 4. Execute on the Secure Virtual Machine with checks live.
    let mut vm = Vm::new(
        verified.module,
        VmConfig {
            kind: KernelKind::SvaSafe,
            ..Default::default()
        },
    )
    .expect("load");

    // In-bounds access works.
    let ok = vm.call("store_at", &[10]).expect("in-bounds store");
    println!("store_at(10) -> {ok:?}");

    // Out-of-bounds access is stopped by the metapool bounds check.
    match vm.call("store_at", &[1000]) {
        Err(VmError::Safety(e)) => println!("store_at(1000) -> SVA caught it: {e}"),
        other => panic!("expected a safety violation, got {other:?}"),
    }
    println!("check stats: {:?}", vm.pools.total_stats());
}
