//! The paper's Figure 2: a kernel code fragment (modeled on Linux's
//! `fib_create_info`) and the points-to graph the safety-checking compiler
//! computes for it — metapools, flags, type homogeneity and the inserted
//! run-time operations.
//!
//! Run with: `cargo run --example pointsto_graph`

use sva::analysis::{analyze, AnalysisConfig};
use sva::core::compile::{compile, CompileOptions};
use sva::ir::parse::parse_module;
use sva::ir::print::print_module;

/// The Fig. 2 fragment: a global `fib_props` table indexed by an untrusted
/// message type, a `kmalloc`ed `fib_info` object, and a pointer chase
/// through the incoming `rta` argument.
const SRC: &str = r#"
module "fig2"

struct %fib_prop = { i64, i64 }
struct %fib_info = { i64, i64, [10 x i64] }
struct %kern_rta = { i64*, i64 }

global @fib_props : [12 x %fib_prop] = zero
global @brk : i64 = bytes x0000201000000000

func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
allocator ordinary "kmalloc" alloc=@kmalloc size=arg0

func public @fib_create_info(%rtm_type: i64, %nhs: i64, %rta: %kern_rta*) : %fib_info* {
entry:
  ; fib_props[r->rtm_type].scope  -- the bounds-checked global access
  %prop:i64* = gep @fib_props [0:i32, %rtm_type, 0:i32]
  %scope:i64 = load %prop
  ; fi = kmalloc(sizeof(*fi) + nhs * sizeof(fib_nh))
  %raw:i8* = call @kmalloc(96:i64)
  %fi:%fib_info* = cast bitcast %raw to %fib_info*
  ; per-nexthop initialization: checked against the *known* kmalloc bounds
  ; (the paper's "check bounds for memset without lookup" at line 19)
  %nh:i64* = gep %fi [0:i32, 2:i32, %nhs]
  store 0:i64, %nh
  %sp:i64* = gep %fi [0:i32, 0:i32]
  store %scope, %sp
  ; rta->rta_priority chase (the lscheck sites in the paper's figure)
  %prio_pp:i64** = gep %rta [0:i32, 0:i32]
  %prio_p:i64* = load %prio_pp
  %prio:i64 = load %prio_p
  %pp:i64* = gep %fi [0:i32, 1:i32]
  store %prio, %pp
  ret %fi
}
"#;

fn main() {
    let module = parse_module(SRC).expect("parse");
    let cfg = AnalysisConfig::kernel();
    let analysis = analyze(&module, &cfg);

    println!("== points-to graph (paper Fig. 2) ==\n");
    for rep in analysis.graph.reps() {
        let flags = analysis.graph.flags(rep);
        let letters = flags.letters();
        let ty = analysis
            .graph
            .elem_type(rep)
            .map(|t| module.types.display(t).to_string())
            .unwrap_or_else(|| "<collapsed/unknown>".into());
        let th = if analysis.graph.is_th(rep) {
            "TH"
        } else {
            "non-TH"
        };
        let complete = if analysis.graph.is_complete(rep) {
            "complete"
        } else {
            "INCOMPLETE"
        };
        let pointee = analysis
            .graph
            .pointee(rep)
            .map(|p| format!(" -> node{}", p.0))
            .unwrap_or_default();
        println!(
            "node{:<3} [{letters:<5}] {th:<7} {complete:<10} elem={ty}{pointee}",
            rep.0
        );
    }

    println!("\n== after the safety-checking compiler ==\n");
    let compiled = compile(module, &cfg, &CompileOptions::default());
    let verified =
        sva::core::verifier::verify_and_insert_checks(compiled.module).expect("verifies");
    let text = print_module(&verified.module);
    // Show only the instrumented fib_create_info (the Fig. 2 body).
    let start = text.find("func public @fib_create_info").unwrap();
    let end = text[start..].find("\n}").unwrap() + start + 2;
    println!("{}", &text[start..end]);
    println!(
        "\ninserted: {} bounds checks, {} load/store checks",
        verified.report.bounds_checks, verified.report.ls_checks
    );
}
