//! The trusted/untrusted split (paper §5): the safety-checking compiler is
//! *untrusted* — its metapool annotations travel with the bytecode as an
//! encoded proof, and only the small bytecode verifier is in the TCB.
//!
//! This demo reproduces the paper's §5 experiment end to end: compile a
//! module, corrupt the shipped annotations in all four ways the paper
//! injects (5 instances each), and watch the verifier reject every one.
//! Finally it shows the transport layer doing its part: a signed image
//! with a single flipped byte is refused before verification even starts.
//!
//! Run with: `cargo run --example verifier_tcb`

use sva::analysis::AnalysisConfig;
use sva::core::compile::{compile, CompileOptions};
use sva::core::inject::{inject_fault, FaultKind};
use sva::core::verifier::{typecheck_module, verify_and_insert_checks};
use sva::ir::bytecode::SignedModule;
use sva::ir::parse::parse_module;

/// A module with enough pointer structure (geps, pointer loads, a phi
/// merge, an indirect store helper) that every fault kind has several
/// injection points.
const SRC: &str = r#"
module "tcb-demo"

global @brk : i64 = bytes x0000201000000000
global @gslot : i64* = zero

func public @kmalloc(%sz: i64) : i8* {
entry:
  %cur:i64 = load @brk
  %new:i64 = add %cur, %sz
  store %new, @brk
  %p:i8* = cast inttoptr %cur to i8*
  ret %p
}
func public @kfree(%p: i8*) : void {
entry:
  ret
}
allocator ordinary "kmalloc" alloc=@kmalloc dealloc=@kfree size=arg0

func internal @poke(%p: i64*) : void {
entry:
  store 1:i64, %p
  ret
}

func public @main3(%pp: i64**, %idx: i64, %sel: i64) : void {
entry:
  %p:i64* = load %pp
  %q:i64* = gep %p [%idx]
  %z:i1 = icmp ne %sel, 0:i64
  condbr %z, t, e
t:
  br j
e:
  br j
j:
  %m:i64* = phi i64* [t: %p, e: %q]
  call @poke(%m)
  %g:i64* = load @gslot
  %g2:i64* = gep %g [%idx]
  call @poke(%g2)
  ret
}
"#;

fn main() {
    let m = parse_module(SRC).expect("parse");
    let compiled = compile(m, &AnalysisConfig::kernel(), &CompileOptions::default());
    let clean_errors = typecheck_module(&compiled.module);
    println!(
        "untrusted compiler produced {} metapools; verifier finds {} errors in the clean proof",
        compiled.report.metapools,
        clean_errors.len()
    );
    verify_and_insert_checks(compiled.module.clone()).expect("clean module verifies");

    println!("\ninjecting the paper's four bug kinds (5 instances each):");
    let mut total = (0, 0);
    for kind in FaultKind::ALL {
        let mut injected = 0;
        let mut detected = 0;
        for seed in 0..5 {
            let mut bad = compiled.module.clone();
            if let Some(desc) = inject_fault(&mut bad, kind, seed) {
                injected += 1;
                match verify_and_insert_checks(bad) {
                    Err(e) => {
                        detected += 1;
                        if seed == 0 {
                            let first = e.first().map(|x| x.to_string()).unwrap_or_default();
                            println!("    e.g. {desc}\n         -> {first}");
                        }
                    }
                    Ok(_) => println!("    UNDETECTED: {desc}"),
                }
            }
        }
        println!("  {:<46} {detected}/{injected} detected", kind.describe());
        total.0 += detected;
        total.1 += injected;
    }
    println!("total: {}/{} — paper: 20/20", total.0, total.1);

    // The transport layer: annotations ship inside a signed image, so they
    // cannot be swapped after verification either.
    let sealed = SignedModule::seal(&compiled.module, 0xBEEF);
    assert!(sealed.open(0xBEEF).is_ok());
    let mut bad = sealed.clone();
    let n = bad.bytecode.len();
    bad.bytecode[n / 2] ^= 1;
    println!(
        "\nsigned image with one flipped byte rejected before verification: {}",
        bad.open(0xBEEF).is_err()
    );
}
