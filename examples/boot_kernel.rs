//! Boot the mini commodity kernel on all four configurations of the
//! paper's evaluation, run a userspace program, and compare the costs.
//!
//! Run with: `cargo run --release --example boot_kernel`

use sva::kernel::harness::{boot_user, make_vm, pack_arg};
use sva::vm::KernelKind;

fn main() {
    println!("booting the SVA mini-kernel under the four §7.1 configurations\n");
    for kind in KernelKind::ALL {
        let mut vm = make_vm(kind);
        let start = std::time::Instant::now();
        let exit = boot_user(&mut vm, "user_hello", 0).expect("boot");
        let wall = start.elapsed();
        let stats = vm.stats();
        println!("[{:<8}] exit={exit:?}", kind.label());
        println!("           console: {:?}", vm.console_string());
        println!(
            "           {} instructions, {} cycles, {} traps, {:?} wall",
            stats.instructions, stats.cycles, stats.traps, wall
        );
        if kind.checks() {
            let c = vm.pools.total_stats();
            println!(
                "           checks: {} bounds, {} load/store, {} registrations",
                c.bounds_checks, c.ls_checks, c.registrations
            );
        }
    }

    // Something more substantial: a fork/exec workload.
    println!("\nfork/exec workload (8 children) under sva-safe:");
    let mut vm = make_vm(KernelKind::SvaSafe);
    let exit = boot_user(&mut vm, "user_forkexec_loop", pack_arg(8, 0, 0)).expect("boot");
    let stats = vm.stats();
    println!(
        "exit={exit:?}; {} context switches, {} traps, {} cycles",
        stats.context_switches, stats.traps, stats.cycles
    );
}
